"""Case study: why is MTTR so long — and does anyone care?

Section VI's surprise is behavioural: operators of fault-tolerant
product lines are *slower*, because resilient software makes hardware
failures non-urgent.  This example reproduces that finding:

1. Figure 9: RT distribution for repairs vs. false alarms;
2. Figure 10: RT by component class (SSDs in hours, memory in weeks);
3. Figure 11: per-line median RT vs. failure volume — busy Hadoop lines
   take ~weeks, some small lines take months, strict online lines take
   hours;
4. the fault-tolerance correlation, computed directly from the fleet's
   line metadata.

Run:
    python examples/operator_response_study.py
"""

import numpy as np

from repro import FOTCategory, generate_paper_trace
from repro.analysis import report, response


def main() -> None:
    trace = generate_paper_trace(scale=0.15, seed=101)
    dataset = trace.dataset

    # 1. Figure 9.
    fixing = response.rt_distribution(dataset, FOTCategory.FIXING)
    false_alarm = response.rt_distribution(dataset, FOTCategory.FALSE_ALARM)
    print(report.format_table(
        ["category", "median (d)", "mean (d)", ">140 d"],
        [
            ("d_fixing", f"{fixing.median_days:.1f}", f"{fixing.mean_days:.1f}",
             report.format_percent(fixing.tail_140d)),
            ("d_falsealarm", f"{false_alarm.median_days:.1f}",
             f"{false_alarm.mean_days:.1f}",
             report.format_percent(false_alarm.tail_140d)),
        ],
        title="Figure 9 — operator response times",
    ))
    print()

    # 2. Figure 10.
    by_class = response.rt_by_component(dataset, min_tickets=40)
    rows = [
        (cls.value, f"{stats.median_days:.2f}", f"{stats.mean_days:.1f}")
        for cls, stats in sorted(
            by_class.items(), key=lambda kv: kv[1].median_days
        )
    ]
    print(report.format_table(
        ["component", "median (d)", "mean (d)"],
        rows,
        title="Figure 10 — RT by component class",
    ))
    print()

    # 3. Figure 11.
    summary = response.product_line_rt_summary(dataset)
    print(
        f"Figure 11 — {summary.n_lines} product lines with HDD tickets:\n"
        f"  top 1% busiest lines: median RT "
        f"{summary.top_percent_median_days:.1f} days\n"
        f"  small lines (<100 failures) with median > 100 days: "
        f"{report.format_percent(summary.small_line_slow_fraction)}\n"
        f"  std of per-line medians: {summary.rt_std_days:.1f} days"
    )
    print()

    # 4. Fault tolerance vs. response speed, straight from metadata.
    points = {p.product_line: p for p in summary.points}
    ft, med = [], []
    for name, point in points.items():
        line = trace.fleet.product_lines.get(name)
        if line is None or point.n_failures < 30:
            continue
        ft.append(line.fault_tolerance)
        med.append(point.median_rt_days)
    if len(ft) >= 3:
        corr = float(np.corrcoef(ft, med)[0, 1])
        print(
            f"correlation between a line's software fault tolerance and its "
            f"median HDD RT: {corr:+.2f}\n"
            "  (positive = resilient software breeds slow operators — the "
            "paper's inversion of the MTTR doctrine)"
        )


if __name__ == "__main__":
    main()
