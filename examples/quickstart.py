"""Quickstart: generate a synthetic four-year FOT trace and run the
paper's headline analyses.

Run:
    python examples/quickstart.py [scale]

``scale`` defaults to 0.05 (a few thousand servers, ~15k tickets, a few
seconds).  Use 1.0 to reproduce the full ~290k-ticket study.
"""

import sys

from repro import ComponentClass, FOTCategory, generate_paper_trace
from repro.analysis import overview, report, response, tbf, temporal
from repro.core import io as core_io


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"generating trace at scale {scale} ...")
    trace = generate_paper_trace(scale=scale, seed=7)
    dataset = trace.dataset
    print(f"  {len(dataset)} tickets from {len(trace.fleet)} servers "
          f"in {len(trace.fleet.datacenters)} data centers\n")

    # --- Table I: what happens to a ticket --------------------------------
    cats = overview.category_breakdown(dataset)
    print(report.format_table(
        ["category", "share"],
        [(c.value, report.format_percent(cats.fraction(c))) for c in FOTCategory],
        title="Table I — FOT categories",
    ))
    print()

    # --- Table II: which components fail ----------------------------------
    shares = overview.component_breakdown(dataset)
    print(report.format_table(
        ["component", "share"],
        [(cls.value, report.format_percent(s)) for cls, s in shares.items()],
        title="Table II — failures by component class",
    ))
    print()

    # --- Figure 3: when failures get detected ------------------------------
    profile = temporal.day_of_week_profile(dataset, ComponentClass.HDD)
    print(report.format_profile(
        profile.labels, profile.fractions,
        title=f"Figure 3 — HDD failures by day of week ({profile.test})",
    ))
    print()

    # --- Figure 5: no classic distribution fits the TBF --------------------
    analysis = tbf.analyze_tbf(dataset)
    print(f"MTBF: {analysis.mtbf_minutes:.1f} minutes")
    for name, test in analysis.tests.items():
        verdict = "rejected" if test.reject_at(0.05) else "not rejected"
        print(f"  TBF ~ {name:<12} {verdict} (p = {test.p_value:.2g})")
    print()

    # --- Figure 9: how long operators take ---------------------------------
    fixing = response.rt_distribution(dataset, FOTCategory.FIXING)
    print(
        f"operator response (D_fixing): median {fixing.median_days:.1f} days, "
        f"mean {fixing.mean_days:.1f} days, "
        f"{report.format_percent(fixing.tail_140d)} wait > 140 days"
    )

    # --- Persist for later sessions ----------------------------------------
    core_io.save(dataset, "quickstart_trace.jsonl")
    trace.inventory.save_csv("quickstart_inventory.csv")
    print("\nsaved quickstart_trace.jsonl / quickstart_inventory.csv — "
          "reload with repro.core.io.load(...)")


if __name__ == "__main__":
    main()
