"""Quickstart: the :mod:`repro.api` facade in four verbs.

Run:
    python examples/quickstart.py [scale] [jobs]

``scale`` defaults to 0.05 (a few thousand servers, ~15k tickets, a few
seconds); use 1.0 to reproduce the full ~290k-ticket study.  ``jobs``
shards trace generation over processes — the output is bit-identical
to serial, so crank it up on a big machine.
"""

import sys

import repro


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    # --- simulate: generate the synthetic four-year trace ------------------
    print(f"generating trace at scale {scale} (jobs={jobs}) ...")
    trace = repro.simulate(scale=scale, seed=7, jobs=jobs)
    dataset = trace.dataset
    print(f"  {len(dataset)} tickets from {len(trace.fleet)} servers "
          f"in {len(trace.fleet.datacenters)} data centers\n")

    # --- full_report: every paper table/figure the data sustains -----------
    # An AnalysisCache makes the re-run free: results are memoized on the
    # dataset's content fingerprint, so only changed views recompute.
    cache = repro.AnalysisCache()
    print(repro.full_report(dataset, cache=cache).text())
    print()

    # --- analyze: individual named analyses, same cache ---------------------
    repro.analyze(dataset, "categories", "mtbf", cache=cache)
    results = repro.analyze(dataset, "categories", "mtbf", cache=cache)
    cats = results["categories"]
    print(repro.api.format_table(["category", "share"], cats.rows(),
                                 title="Table I again (warm cache)"))
    print(f"MTBF: {results['mtbf'].mtbf_minutes:.1f} minutes")
    print(f"cache: {cache.stats.hits} hits / {cache.stats.misses} misses\n")

    # --- load: round-trip through a ticket dump -----------------------------
    from repro.core import io as core_io

    core_io.save(dataset, "quickstart_trace.jsonl")
    trace.inventory.save_csv("quickstart_inventory.csv")
    reloaded = repro.load("quickstart_trace.jsonl")
    comparison = repro.compare(dataset, reloaded)
    verdict = "identical" if comparison.within(0.01) else "DIFFERENT"
    print(f"saved + reloaded quickstart_trace.jsonl: {verdict} "
          f"({len(reloaded)} tickets)")
    print("reload later with repro.load('quickstart_trace.jsonl')")


if __name__ == "__main__":
    main()
