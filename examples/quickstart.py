"""Quickstart: the :mod:`repro.api` facade in four verbs.

Run:
    python examples/quickstart.py [scale] [jobs]

``scale`` defaults to 0.05 (a few thousand servers, ~15k tickets, a few
seconds); use 1.0 to reproduce the full ~290k-ticket study.  ``jobs``
defaults to ``auto``: the adaptive planner probes the machine and picks
serial or a worker pool on its own — the output is bit-identical either
way, so ``auto``, ``serial`` and any explicit worker count all produce
the same trace.
"""

import sys

import repro


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    jobs = repro.engine.coerce_jobs(sys.argv[2]) if len(sys.argv) > 2 else "auto"

    # --- one ExecutionPolicy carries every execution knob -------------------
    # jobs (worker plan), cache (analysis memoization) and telemetry_sink
    # (structured run documents) thread through all the facade verbs.
    sink = repro.engine.InMemoryTelemetrySink()
    policy = repro.ExecutionPolicy(
        jobs=jobs, cache=repro.AnalysisCache(), telemetry_sink=sink
    )

    # --- simulate: generate the synthetic four-year trace ------------------
    print(f"generating trace at scale {scale} (jobs={jobs}) ...")
    trace = repro.simulate(scale=scale, seed=7, policy=policy)
    dataset = trace.dataset
    plan = trace.telemetry.plan
    print(f"  {len(dataset)} tickets from {len(trace.fleet)} servers "
          f"in {len(trace.fleet.datacenters)} data centers")
    print(f"  plan: {plan.mode} (jobs={plan.jobs}) — {plan.reason}\n")

    # --- full_report: every paper table/figure the data sustains -----------
    # The policy's AnalysisCache makes the re-run free: results are
    # memoized on the dataset's content fingerprint.
    print(repro.full_report(dataset, policy=policy).text())
    print()

    # --- analyze: individual named analyses, same policy --------------------
    repro.analyze(dataset, "categories", "mtbf", policy=policy)
    results = repro.analyze(dataset, "categories", "mtbf", policy=policy)
    cats = results["categories"]
    print(repro.api.format_table(["category", "share"], cats.rows(),
                                 title="Table I again (warm cache)"))
    print(f"MTBF: {results['mtbf'].mtbf_minutes:.1f} minutes")
    stats = policy.cache.stats
    print(f"cache: {stats.hits} hits / {stats.misses} misses")
    analyze_run = sink.last
    print("analyze stages:", ", ".join(
        f"{s.name} {s.wall_seconds * 1000:.0f}ms" for s in analyze_run.stages
    ))
    print()

    # --- load: round-trip through a ticket dump -----------------------------
    from repro.core import io as core_io

    core_io.save(dataset, "quickstart_trace.jsonl")
    trace.inventory.save_csv("quickstart_inventory.csv")
    reloaded = repro.load("quickstart_trace.jsonl")
    comparison = repro.compare(dataset, reloaded)
    verdict = "identical" if comparison.within(0.01) else "DIFFERENT"
    print(f"saved + reloaded quickstart_trace.jsonl: {verdict} "
          f"({len(reloaded)} tickets)")
    print("reload later with repro.load('quickstart_trace.jsonl')")


if __name__ == "__main__":
    main()
