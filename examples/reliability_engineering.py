"""Case study: from failure tickets to reliability engineering numbers.

The paper's analyses describe *what happened*; a reliability engineer
then needs the classic derived quantities:

1. Kaplan-Meier survival curves per component class (with censoring —
   most components never fail in the window);
2. annualized failure rates (AFR) per service year, the industry
   headline (cf. the disk studies the paper cites);
3. bootstrap confidence intervals on the headline statistics, so a
   different fleet can be compared against the paper's numbers honestly;
4. a detection-latency what-if: the active prober the FMS team was
   building vs. today's log-based detection.

Run:
    python examples/reliability_engineering.py
"""

import numpy as np

from repro import ComponentClass, FOTCategory, generate_paper_trace
from repro.analysis import report, survival
from repro.core.timeutil import DAY
from repro.fms import probing
from repro.stats import bootstrap


def main() -> None:
    trace = generate_paper_trace(scale=0.1, seed=1999)
    dataset = trace.dataset
    print(f"trace: {len(dataset)} tickets, {len(trace.fleet)} servers\n")

    # --- 1. Survival curves -------------------------------------------------
    rows = []
    for cls in (ComponentClass.HDD, ComponentClass.MEMORY, ComponentClass.POWER):
        try:
            curve = survival.kaplan_meier(dataset, trace.inventory, cls)
        except ValueError:
            continue
        rows.append((
            cls.value,
            curve.n_components,
            curve.n_failures,
            f"{curve.probability_beyond(12):.4f}",
            f"{curve.probability_beyond(36):.4f}",
        ))
    print(report.format_table(
        ["component", "population", "first failures", "S(1 y)", "S(3 y)"],
        rows,
        title="Kaplan-Meier survival (right-censored at window end)",
    ))
    print()

    # --- 2. AFR per service year -------------------------------------------
    table = survival.annualized_failure_rates(
        dataset, trace.inventory, ComponentClass.HDD
    )
    print(report.format_table(
        ["service year", "failures", "component-years", "AFR"],
        [
            (int(y), int(f), f"{e:.0f}", report.format_percent(a))
            for y, f, e, a in zip(
                table.years, table.failures, table.exposure_years, table.afr
            )
        ],
        title="HDD annualized failure rate by service year "
              "(wear-out makes it climb, as in Figure 6a)",
    ))
    print(f"overall HDD AFR: {report.format_percent(table.overall())}\n")

    # --- 3. Bootstrap CIs on the paper's headline numbers --------------------
    rng = np.random.default_rng(0)
    fixing = dataset.of_category(FOTCategory.FIXING)
    rts = fixing.response_times
    rts = rts[~np.isnan(rts)] / DAY
    median_ci = bootstrap.median_ci(rts, rng=rng)
    n_fixing = len(fixing)
    share_ci = bootstrap.fraction_ci(n_fixing, len(dataset), rng=rng)
    print("bootstrap 95 % intervals vs. the paper:")
    print(f"  median RT (days):  {median_ci}   (paper: 6.1)")
    print(f"  D_fixing share:    {share_ci}   (paper: 0.703)")
    print()

    # --- 4. Detection what-if ------------------------------------------------
    cold = probing.compare_detection(
        1500, uses_per_day=2.0, probe_period_hours=4.0,
        rng=np.random.default_rng(4),
    )
    print(
        "detection what-if for a cold (2 uses/day) component:\n"
        f"  log-based:  mean {cold.log_mean_latency_hours:.1f} h, "
        f"p99 {cold.log_p99_latency_hours:.1f} h\n"
        f"  4 h prober: mean {cold.probe_mean_latency_hours:.1f} h, "
        f"p99 {cold.probe_p99_latency_hours:.1f} h\n"
        "  -> the prober bounds the tail; log-based detection waits for "
        "the workload that the failure is about to hurt"
    )


if __name__ == "__main__":
    main()
