"""Case study: the paper's TCO question, as a what-if sweep.

Section VII-A asks whether hardware reliability is "still relevant" and
frames dependability as a joint cost optimization across hardware,
software and operations.  Two of its levers are directly expressible as
scenario parameters:

* **warranty policy** — out-of-warranty failures become unhandled
  D_error tickets: partially failed servers stay in production (lost
  capacity) and totally broken ones get decommissioned early;
* **operator laziness** — slow response leaves broken redundancy in the
  fleet longer (the paper: delayed repair "reduces the overall capacity
  of the system" and lets failures accumulate into batch/synchronous
  patterns).

This example sweeps both and reports the dependability-relevant
outcomes: category mix, failure-days of un-repaired capacity, and
repeat pressure.

Run:
    python examples/tco_what_if.py
"""

from dataclasses import replace

import numpy as np

from repro.analysis import overview, repeating, report, response
from repro.config import paper_scenario
from repro.core.timeutil import DAY
from repro.core.types import FOTCategory
from repro.simulation import calibration
from repro.simulation.trace import generate_trace

SCALE = 0.05
SEED = 77


def run_warranty_sweep() -> None:
    print("warranty-policy sweep (everything else fixed):")
    rows = []
    for warranty in (2.5, 3.3, 4.0, 5.0):
        cfg = paper_scenario(scale=SCALE, seed=SEED)
        cfg = replace(cfg, fleet=replace(cfg.fleet, warranty_years=warranty))
        trace = generate_trace(cfg)
        cats = overview.categories(trace.dataset)
        unhandled = cats.fraction(FOTCategory.ERROR)
        rows.append((
            f"{warranty:.1f} y",
            report.format_percent(cats.fraction(FOTCategory.FIXING)),
            report.format_percent(unhandled),
            f"{len(trace.dataset)}",
        ))
    print(report.format_table(
        ["warranty", "repaired (D_fixing)", "unhandled (D_error)", "tickets"],
        rows,
    ))
    print("  -> longer warranties shift tickets from 'decommission and "
          "forget' to actual repairs\n")


def run_laziness_sweep() -> None:
    print("operator-laziness sweep (review batching scaled):")
    rows = []
    base = calibration.RT_BATCHING_BASE
    gain = calibration.RT_BATCHING_FT_GAIN
    try:
        for label, b, g in (("prompt", 0.0, 0.0),
                            ("paper-like", base, gain),
                            ("extra lazy", min(0.6, base * 2), gain)):
            calibration.RT_BATCHING_BASE = b
            calibration.RT_BATCHING_FT_GAIN = g
            trace = generate_trace(paper_scenario(scale=SCALE, seed=SEED))
            stats = response.rt_distribution(trace.dataset, FOTCategory.FIXING)
            # "Failure-days": accumulated days of broken-but-unrepaired
            # components, the capacity cost of laziness.
            rts = trace.dataset.of_category(FOTCategory.FIXING).response_times
            failure_days = float(np.nansum(rts)) / DAY
            reps = repeating.repeating_stats(trace.dataset)
            rows.append((
                label,
                f"{stats.median_days:.1f} d",
                f"{stats.mean_days:.1f} d",
                f"{failure_days:,.0f}",
                report.format_percent(reps.repeating_server_fraction),
            ))
    finally:
        calibration.RT_BATCHING_BASE = base
        calibration.RT_BATCHING_FT_GAIN = gain
    print(report.format_table(
        ["operators", "median RT", "MTTR", "failure-days pending",
         "repeating servers"],
        rows,
    ))
    print("  -> the paper's 'downward slope': lazy response multiplies "
          "the broken-capacity integral even when the ticket volume "
          "barely changes")


def main() -> None:
    run_warranty_sweep()
    run_laziness_sweep()


if __name__ == "__main__":
    main()
