"""Case study: batch failures on a Hadoop-style product line.

Section V-A of the paper describes a large batch-processing product
line whose homogeneous drive cohorts fail in storms — thousands of
SMART alerts in a few hours (Case 1), motherboards with shared SAS
flaws (Case 2), and whole PDUs going dark (Case 3).

This example plays an SRE investigating one such line:

1. find the line with the most HDD failures;
2. chart its daily failure counts and the r_N batch frequencies;
3. detect the individual batch events and characterize each (window,
   dominant failure type, affected servers);
4. cross-check detections against the simulator's ground truth.

Run:
    python examples/hadoop_batch_failures.py
"""


from repro import ComponentClass, generate_paper_trace
from repro.analysis import batch, report


def main() -> None:
    trace = generate_paper_trace(scale=0.15, seed=42)
    dataset = trace.dataset

    # 1. The busiest line by HDD failures — in the paper these are the
    #    big batch-processing (Hadoop) fleets with storage-heavy servers.
    hdd = dataset.failures().of_component(ComponentClass.HDD)
    by_line = {name: len(sub) for name, sub in hdd.by_product_line().items()}
    line_name = max(by_line, key=by_line.get)
    line = trace.fleet.product_line(line_name)
    subset = dataset.of_product_line(line_name)
    print(
        f"busiest line: {line_name} ({line.workload} workload, "
        f"fault tolerance {line.fault_tolerance:.2f}, "
        f"{by_line[line_name]} HDD failures)\n"
    )

    # 2. Daily counts + batch frequency for the line.
    counts = batch.daily_counts(subset, ComponentClass.HDD)
    print("daily HDD failures (whole trace):")
    print("  |" + report.sparkline(counts, width=80) + "|")
    mean = counts.mean()
    for n in (int(3 * mean) or 3, int(6 * mean) or 6):
        freq = batch.batch_frequency(counts, n)
        print(f"  days with >= {n} failures: {report.format_percent(freq)}")
    print()

    # 3. Detect batch events from the tickets alone.
    events = batch.detect_batches(subset, ComponentClass.HDD, min_failures=15)
    rows = [
        (f"{e.start / 86400.0:.1f}", f"{e.duration_hours:.1f} h",
         e.n_failures, e.n_servers, e.dominant_type,
         report.format_percent(e.dominant_type_share))
        for e in events[:8]
    ]
    print(report.format_table(
        ["day", "window", "failures", "servers", "dominant type", "purity"],
        rows,
        title=f"detected HDD batch events on {line_name}",
    ))
    print()

    # 4. Ground truth: which injected storms hit this line?
    line_rows = {
        i for i, s in enumerate(trace.fleet.servers)
        if s.product_line == line_name
    }
    storm_tags = set()
    for ticket in subset:
        tag = ticket.detail.get("tag", "")
        if tag.startswith(("smart_storm", "sas_batch", "pdu_outage")):
            storm_tags.add(tag)
    print(f"ground truth: {len(storm_tags)} injected storm(s) touched this "
          f"line -> {sorted(storm_tags)[:6]}")

    matched = 0
    for record in trace.storms:
        if record.tag not in storm_tags:
            continue
        hit = any(
            e.start <= record.end and e.end >= record.start for e in events
        )
        matched += int(hit)
    if storm_tags:
        print(f"detector recovered {matched}/{len(storm_tags)} of them "
              f"without looking at the tags")


if __name__ == "__main__":
    main()
