"""Case study: fixing the "stateless FMS" problem (Section VII).

The paper closes with two tooling proposals:

* a data-mining tool that reconnects related FOTs, so operators stop
  re-diagnosing the same flapping BBU four hundred times
  (Section VII-B) — implemented in :mod:`repro.analysis.mining`;
* the failure predictor the hardware team already built — warnings "a
  couple of days early" that operators then ignore (Section VII-A) —
  implemented in :mod:`repro.analysis.prediction`.

This example runs both on a synthetic trace.

Run:
    python examples/fms_tooling.py
"""

from collections import Counter

from repro import generate_paper_trace
from repro.analysis import mining, prediction, report


def main() -> None:
    trace = generate_paper_trace(scale=0.08, seed=2017)
    dataset = trace.dataset
    print(f"trace: {len(dataset)} tickets, {len(trace.fleet)} servers\n")

    # --- 1. Incident mining ------------------------------------------------
    incidents = mining.mine_incidents(dataset)
    kinds = Counter(i.kind for i in incidents)
    linked = sum(len(i) for i in incidents)
    print(
        f"incident miner: {len(incidents)} incidents covering {linked} "
        f"tickets ({report.format_percent(linked / len(dataset.failures()))} "
        f"of all failures)\n  by kind: {dict(kinds)}\n"
    )
    rows = [
        (i.incident_id, i.kind, len(i), len(i.servers),
         f"{i.span_seconds / 86400:.1f} d", i.summary[:60])
        for i in incidents[:8]
    ]
    print(report.format_table(
        ["id", "kind", "tickets", "servers", "span", "summary"],
        rows,
        title="largest incidents",
    ))
    print()

    # --- 2. Operator context for a fresh ticket ----------------------------
    flapper = next(i for i in incidents if i.kind == "repeat")
    last_ticket = flapper.tickets[-1]
    ctx = mining.component_context(dataset, last_ticket)
    print(
        f"context for FOT #{last_ticket.fot_id} "
        f"({last_ticket.error_type} on host {last_ticket.host_id}):\n"
        f"  prior failures of this exact component: "
        f"{ctx.prior_component_failures}\n"
        f"  prior failures on this server:          "
        f"{len(ctx.same_server_history)}\n"
        f"  probable repeat of a 'solved' problem:  "
        f"{ctx.is_probable_repeat}\n"
        f"  fleet-level batch in flight:            "
        f"{ctx.active_batch or 'no'}\n"
    )

    # --- 3. The failure predictor ------------------------------------------
    print("failure predictor (warning tickets -> fatal failure within 30 d):")
    rows = []
    for min_warnings in (1, 2, 3):
        rep = prediction.predict_and_evaluate(
            dataset, min_warnings=min_warnings, horizon_days=30
        )
        rows.append((
            min_warnings, rep.n_warnings,
            report.format_percent(rep.precision),
            report.format_percent(rep.recall),
            f"{rep.mean_lead_days:.1f} d",
        ))
    print(report.format_table(
        ["trigger (warnings)", "alerts", "precision", "recall", "mean lead"],
        rows,
    ))
    print(
        "\nthe paper's punchline: even with days of lead time, operators "
        "of fault-tolerant lines act on none of this — see "
        "examples/operator_response_study.py"
    )


if __name__ == "__main__":
    main()
