"""Case study: do rack positions matter?  (Section IV)

The paper tests every data center for rack-position uniformity
(Hypothesis 5) and finds a split: modern (post-2014) rooms look uniform,
legacy rooms don't — and even in "uniform" rooms, the slot next to the
rack power module (22) and the top slot of under-floor-cooled racks (35)
stick out beyond mu + 2 sigma.

This example runs the whole spatial battery and then drills into one DC
of each kind, exactly the shape of the paper's Figure 8.

Run:
    python examples/datacenter_cooling_study.py
"""

import numpy as np

from repro import generate_paper_trace
from repro.analysis import report, spatial


def main() -> None:
    trace = generate_paper_trace(scale=0.3, seed=2014)
    dataset = trace.dataset
    kinds = {dc.name: dc.spatial_profile.kind for dc in trace.fleet.datacenters}
    eras = {dc.name: ("modern" if dc.is_modern else "legacy")
            for dc in trace.fleet.datacenters}

    # Table IV: the per-DC chi-square battery.
    summary = spatial.rack_position_tests(dataset, trace.inventory)
    rows = [
        (idc, eras[idc], kinds[idc], f"{result.p_value:.4f}",
         "reject" if result.reject_at(0.05) else "keep")
        for idc, result in sorted(summary.results.items())
    ]
    print(report.format_table(
        ["DC", "era", "true profile", "p-value", "H5 @0.05"],
        rows,
        title="Table IV — rack-position uniformity per data center",
    ))
    buckets = summary.bucket_counts()
    print(f"\nbuckets: {buckets}  (paper: 10 / 4 / 10 of 24)\n")

    # Figure 8: one DC of each flavour.
    for wanted, label in (("hotspot", "DC A — hot slots in a mostly "
                           "uniform room"),
                          ("gradient", "DC B — under-floor cooling "
                           "gradient")):
        names = [n for n in summary.results if kinds[n] == wanted]
        if not names:
            continue
        name = min(names, key=lambda n: summary.results[n].p_value)
        profile = spatial.rack_position_profile(dataset, trace.inventory, name)
        ratios = np.nan_to_num(profile.ratio, nan=0.0)
        print(f"{label} ({name}):")
        print("  slot ratio |" + report.sparkline(ratios, 40) + "|")
        print(f"  chi-square: {profile.test}")
        outliers = profile.outlier_positions(n_sigma=2.0)
        print(f"  mu+2sigma outlier slots: {outliers}")
        if wanted == "hotspot" and set(outliers) & {22, 35}:
            print("  -> slots 22/35 found: next to the rack power module "
                  "and at the top of the rack, exactly the paper's bad "
                  "spots")
        print()

    print("placement advice from the paper: avoid putting all replicas "
          "of a service in these vulnerable slots.")


if __name__ == "__main__":
    main()
