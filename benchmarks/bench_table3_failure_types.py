"""Table III — failure-type registry with explanations."""

from benchmarks._shared import emit
from repro.analysis import overview, report


def test_table3_failure_types(benchmark):
    rows = benchmark(overview.table_iii)
    text = report.format_table(
        ["failure type", "component", "explanation"],
        rows,
        title="Table III — documented failure types",
    )
    emit("table3_failure_types", text)
    names = {r[0] for r in rows}
    # The paper's examples must all be present.
    assert {"SMARTFail", "NotReady", "BBTFail", "DIMMCE", "DIMMUE"} <= names
