"""Core-substrate performance benchmark: load -> filter -> group -> report.

Unlike the figure/table benches (which validate statistics), this script
times the *dataset substrate itself* over synthetic ticket volumes of
50k / 290k / 1M and records the repo's performance trajectory in
``BENCH_perf.json``.  It deliberately sticks to the public
:class:`~repro.core.dataset.FOTDataset` API that is stable across the
row-first and columnar implementations, so the same script produces the
before/after numbers of the columnar refactor.

Stages timed per tier:

* ``load``    — parse raw record dicts into a dataset
  (:func:`repro.core.io.parse_records`, strict mode).  The ``10m``
  tier is columnar-only: its ``load`` stage is the
  :func:`repro.core.storage.load_columnar` mmap open instead (building
  ten million record dicts would benchmark the Python allocator, not
  the substrate), and the tier entry carries ``"format": "columnar"``
  plus the measured ``load_fraction`` of the tier total.
* ``save_columnar`` / ``load_columnar`` — round-trip through the
  binary columnar store: a cold :func:`~repro.core.storage.
  save_columnar` into a scratch directory, then the best-of mmap
  re-open of the tier's cached fixture.  ``load_speedup`` records
  text-parse time over columnar-open time.
* ``filter``  — the subset chain every analysis opens with:
  ``failures()``, ``of_component``, ``of_idc``, ``of_product_line``,
  ``of_source``, ``between``, ``where(mask)``, ``with_op_time``.
* ``group``   — every ``by_*`` grouping plus ``sorted_by_time``.
* ``report``  — the full headline-report pipeline the CLI runs:
  overview breakdowns, TBF fits, ``summary()``, repeat deduplication
  and the :class:`~repro.robustness.quality.DataQuality` assessment.

Columnar fixtures are cached under ``.bench_fixtures/`` keyed by the
storage schema fingerprint, so re-runs (and the CI cache) skip the
synthesis+save; a schema change rolls the key and rebuilds them.

With ``--engine``, each tier additionally exercises the
:mod:`repro.engine` execution layer against the *real* simulation
(tier -> scenario scale), recording:

* ``gen_serial`` / ``gen_parallel`` — trace generation at ``jobs=1``
  vs. ``--jobs N`` (sharded output is checked column-for-column against
  serial; ``--check-equivalence`` turns a mismatch into a failure);
* ``report_cold`` / ``report_warm`` — the full paper report through a
  cold vs. warmed :class:`~repro.engine.cache.AnalysisCache`
  (``--min-cache-speedup X`` turns an insufficient warm-cache speedup
  into a failure; ``--min-gen-speedup X`` does the same for sharded
  generation, skipped automatically when the machine has fewer cores
  than ``--jobs``).

With ``--adaptive``, each engine-eligible tier additionally runs the
self-tuning planner end to end: ``jobs="serial"`` vs. ``jobs="auto"``
through one :class:`~repro.engine.policy.ExecutionPolicy`, recording the
plan the planner chose (mode/jobs/reason from the run telemetry) and the
measured serial/auto wall-time ratio.  ``--min-parallel-ratio X`` turns
that into the CI never-slower gate: when the planner picked a parallel
plan the measured ratio must be at least ``X`` (1.0 = "auto is never
slower than serial"); when it picked serial the gate passes by
construction — serial-auto *is* the serial code path, so any wall-time
delta is timing noise, not a planner failure.  Bit-inequality between
the two traces always fails the gate.

Usage::

    # record the current implementation at two tiers
    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --tiers 50k,290k --label current

    # CI regression gate: fresh 50k run vs. the checked-in numbers
    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --tiers 50k --check --max-regression 2.0

    # CI engine gate: sharded equivalence + warm-cache speedup
    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --tiers 50k --engine --engine-scale 0.02 --jobs 2 --no-update \
        --check-equivalence --min-cache-speedup 5.0

    # CI adaptive gate: jobs="auto" must never lose to serial
    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --tiers 50k --adaptive --engine-scale 0.02 --no-update \
        --min-parallel-ratio 1.0

    # CI storage gate: columnar open must beat text parse 20x, and the
    # 10M tier must spend <1% of its wall time in load
    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --tiers 50k --no-update --min-load-speedup 20.0
    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --tiers 10m --repeats 1 --no-update --max-load-fraction 0.01
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.analysis import overview, spatial, tbf
from repro.core import io as core_io
from repro.core import storage as core_storage
from repro.core.columns import (
    ACTION_CODE,
    CATEGORY_CODE,
    ColumnStore,
    SOURCE_CODE,
)
from repro.core.dataset import FOTDataset
from repro.core.types import (
    ComponentClass,
    DetectionSource,
    FOTCategory,
    OperatorAction,
)
from repro.robustness.quality import DataQuality, InsufficientDataError

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_perf.json"
FIXTURES_DIR = REPO_ROOT / ".bench_fixtures"

TIERS: Dict[str, int] = {
    "50k": 50_000, "290k": 290_000, "1m": 1_000_000, "10m": 10_000_000,
}

#: Tiers too large to route through raw record dicts: synthesized
#: column-at-a-time and benchmarked through the columnar store only.
COLUMNAR_TIERS = frozenset({"10m"})

#: ``--engine`` scenario scale per tier: the paper scenario producing
#: roughly the tier's ticket volume through the real simulation.
ENGINE_SCALES: Dict[str, float] = {"50k": 0.175, "290k": 1.0, "1m": 1.0}

_CATEGORIES = ["d_fixing", "d_error", "d_falsealarm"]
_CATEGORY_P = [0.703, 0.280, 0.017]
_COMPONENTS = [c.value for c in ComponentClass]
_COMPONENT_P = [0.55, 0.04, 0.02, 0.02, 0.08, 0.05, 0.03, 0.04, 0.05, 0.02, 0.10]
_SOURCES = ["syslog", "polling", "manual"]
_SOURCE_P = [0.55, 0.35, 0.10]
_ERROR_TYPES = [
    "SMARTFail", "NotReady", "MediaError", "UncorrectableECC",
    "PSUFailure", "FanStall", "KernelPanic", "ManualReport",
]
_HORIZON = 4 * 365.25 * 86400.0


def synth_records(n: int, seed: int = 20170626) -> List[Dict[str, object]]:
    """Generate ``n`` plausible raw ticket records without running the
    (much slower) full simulation — volume, not statistical fidelity,
    is what this benchmark needs."""
    rng = np.random.default_rng(seed)
    n_hosts = max(50, n // 10)
    host_ids = rng.integers(0, n_hosts, size=n)
    idcs = host_ids % 24
    lines = host_ids % 15
    times = np.sort(rng.uniform(0.0, _HORIZON, size=n))
    cats = rng.choice(len(_CATEGORIES), size=n, p=np.asarray(_CATEGORY_P))
    comps = rng.choice(len(_COMPONENTS), size=n, p=np.asarray(_COMPONENT_P))
    sources = rng.choice(len(_SOURCES), size=n, p=np.asarray(_SOURCE_P))
    types = rng.integers(0, len(_ERROR_TYPES), size=n)
    positions = host_ids % 40
    slots = rng.integers(0, 12, size=n)
    deployed = rng.uniform(0.0, 0.5 * _HORIZON, size=n)
    deployed = np.minimum(deployed, times)
    rt = rng.lognormal(mean=11.0, sigma=1.2, size=n)

    records: List[Dict[str, object]] = []
    for i in range(n):
        cat = _CATEGORIES[cats[i]]
        closed = cat != "d_error"
        records.append(
            {
                "fot_id": i,
                "host_id": int(host_ids[i]),
                "hostname": f"host{host_ids[i]:07d}",
                "host_idc": f"dc{idcs[i]:02d}",
                "error_device": _COMPONENTS[comps[i]],
                "error_type": _ERROR_TYPES[types[i]],
                "error_time": float(times[i]),
                "error_position": int(positions[i]),
                "error_detail": f"dev{slots[i]}",
                "category": cat,
                "source": _SOURCES[sources[i]],
                "product_line": f"line{lines[i]:02d}",
                "deployed_at": float(deployed[i]),
                "device_slot": int(slots[i]),
                "action": ("repair_order" if cat == "d_fixing" else
                           "mark_false_alarm" if cat == "d_falsealarm" else ""),
                "operator_id": f"op{i % 37:02d}" if closed else "",
                "op_time": float(times[i] + rt[i]) if closed else "",
            }
        )
    return records


def synth_store(n: int, seed: int = 20170626) -> FOTDataset:
    """Column-at-a-time twin of :func:`synth_records`: the same draws
    and derivations, but materialized directly as typed numpy columns
    and adopted zero-copy into a :class:`ColumnStore`.  This is the
    only tractable way to stand up the 10M tier — ten million record
    dicts would spend minutes (and gigabytes) on Python objects that
    the columnar path never needs."""
    rng = np.random.default_rng(seed)
    n_hosts = max(50, n // 10)
    host_ids = rng.integers(0, n_hosts, size=n)
    times = np.sort(rng.uniform(0.0, _HORIZON, size=n))
    cats = rng.choice(len(_CATEGORIES), size=n, p=np.asarray(_CATEGORY_P))
    comps = rng.choice(len(_COMPONENTS), size=n, p=np.asarray(_COMPONENT_P))
    sources = rng.choice(len(_SOURCES), size=n, p=np.asarray(_SOURCE_P))
    types = rng.integers(0, len(_ERROR_TYPES), size=n)
    slots = rng.integers(0, 12, size=n)
    deployed = np.minimum(rng.uniform(0.0, 0.5 * _HORIZON, size=n), times)
    rt = rng.lognormal(mean=11.0, sigma=1.2, size=n)

    closed = cats != _CATEGORIES.index("d_error")
    cat_code = np.asarray(
        [CATEGORY_CODE[FOTCategory(v)] for v in _CATEGORIES], dtype=np.int8
    )
    src_code = np.asarray(
        [SOURCE_CODE[DetectionSource(v)] for v in _SOURCES], dtype=np.int8
    )
    # synth_records leaves d_error tickets action-less ("" -> None -> -1).
    act_code = np.asarray(
        [
            ACTION_CODE[OperatorAction.REPAIR_ORDER],
            -1,
            ACTION_CODE[OperatorAction.MARK_FALSE_ALARM],
        ],
        dtype=np.int8,
    )

    hostname_pool = np.asarray(
        [f"host{h:07d}" for h in range(n_hosts)], dtype=object
    )
    detail_pool = np.asarray([f"dev{s}" for s in range(12)], dtype=object)
    details = np.empty(n, dtype=object)
    details[:] = [{}] * n  # parse_records yields an empty detail dict

    arrays: Dict[str, np.ndarray] = {
        "fot_ids": np.arange(n, dtype=np.int64),
        "host_ids": host_ids.astype(np.int64),
        "error_times": times,
        "op_times": np.where(closed, times + rt, np.nan),
        "deployed_ats": deployed,
        "positions": (host_ids % 40).astype(np.int32),
        "device_slots": slots.astype(np.int32),
        "category_codes": cat_code[cats],
        "component_codes": comps.astype(np.int8),  # enum-order draw
        "source_codes": src_code[sources],
        "action_codes": act_code[cats],
        "idc_codes": (host_ids % 24).astype(np.int32),
        "product_line_codes": (host_ids % 15).astype(np.int32),
        "error_type_codes": types.astype(np.int32),
        "operator_id_codes": np.where(
            closed, np.arange(n) % 37, -1
        ).astype(np.int32),
        "hostnames": hostname_pool[host_ids],
        "error_details": detail_pool[slots],
        "details": details,
    }
    tables = {
        "idc": tuple(f"dc{i:02d}" for i in range(24)),
        "product_line": tuple(f"line{i:02d}" for i in range(15)),
        "error_type": tuple(_ERROR_TYPES),
        "operator_id": tuple(f"op{i:02d}" for i in range(37)),
    }
    for arr in arrays.values():
        arr.setflags(write=False)
    return FOTDataset.from_store(ColumnStore.adopt_buffers(n, arrays, tables))


def columnar_fixture(name: str, n: int, dataset=None) -> Path:
    """The tier's cached on-disk columnar fixture, built on first use.

    The file name embeds the storage schema fingerprint, so a format or
    schema change silently rolls over to a fresh fixture instead of
    tripping the loader's version check."""
    schema = core_storage.schema_fingerprint()[:12]
    path = FIXTURES_DIR / f"{name}-{schema}.fourcol"
    if core_storage.is_columnar(path):
        return path
    if dataset is None:
        print(f"[{name}] synthesizing {n} tickets column-wise ...", flush=True)
        dataset = synth_store(n)
    FIXTURES_DIR.mkdir(exist_ok=True)
    print(f"[{name}] writing columnar fixture {path.name} ...", flush=True)
    core_storage.save_columnar(dataset, path)
    return path


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def _stage_load(records):
    numbered = ((i + 1, r) for i, r in enumerate(records))
    return core_io.parse_records(numbered, strict=True, source="<bench>")


def _stage_filter(dataset) -> int:
    total = 0
    failures = dataset.failures()
    total += len(failures)
    total += len(failures.of_component(ComponentClass.HDD))
    total += len(dataset.of_idc("dc03"))
    total += len(dataset.of_product_line("line01"))
    total += len(dataset.of_source(DetectionSource.MANUAL))
    times = dataset.error_times
    mid = float(np.median(times)) if len(dataset) else 0.0
    total += len(dataset.between(mid, mid + 30 * 86400.0))
    total += len(dataset.where(dataset.positions < 20))
    total += len(dataset.with_op_time())
    return total


def _stage_group(dataset) -> int:
    total = 0
    for groups in (
        dataset.by_category(),
        dataset.by_component(),
        dataset.by_idc(),
        dataset.by_product_line(),
        dataset.by_failure_type(),
        dataset.by_host(),
    ):
        total += len(groups)
    total += len(dataset.sorted_by_time())
    return total


def _stage_report(dataset) -> Dict[str, object]:
    out: Dict[str, object] = {}
    try:
        cats = overview.categories(dataset)
        out["fixing_share"] = cats.fraction(FOTCategory.FIXING)
        comp = overview.components(dataset)
        out["top_component"] = next(iter(comp)).value
        out["sources"] = {
            s.value: f for s, f in overview.detection_sources(dataset).items()
        }
        analysis = tbf.analyze_tbf(dataset)
        out["mtbf_minutes"] = analysis.mtbf_minutes
        out["summary"] = dataset.summary()
        out["deduplicated"] = len(spatial.deduplicate_repeats(dataset))
        out["quality_grade"] = DataQuality.assess(dataset).grade
    except InsufficientDataError as exc:  # pragma: no cover - tiny tiers only
        out["skipped"] = str(exc)
    return out


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_tier(name: str, n: int, repeats: int) -> Dict[str, object]:
    if name in COLUMNAR_TIERS:
        return run_columnar_tier(name, n, repeats)

    print(f"[{name}] generating {n} synthetic records ...", flush=True)
    records = synth_records(n)

    t0 = time.perf_counter()
    dataset = _stage_load(records)
    load_s = time.perf_counter() - t0

    # Columnar round trip: a cold save into a scratch directory, then
    # the best-of mmap re-open of the cached fixture.
    scratch = Path(tempfile.mkdtemp(prefix="bench-colsave-")) / "t.fourcol"
    try:
        t0 = time.perf_counter()
        core_storage.save_columnar(dataset, scratch)
        save_col_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(scratch.parent, ignore_errors=True)
    fixture = columnar_fixture(name, n, dataset)
    load_col_s = _best_of(lambda: core_storage.load_columnar(fixture), repeats)

    stages = {
        "load": load_s,
        "save_columnar": save_col_s,
        "load_columnar": load_col_s,
        "filter": _best_of(lambda: _stage_filter(dataset), repeats),
        "group": _best_of(lambda: _stage_group(dataset), repeats),
        "report": _best_of(lambda: _stage_report(dataset), repeats),
    }
    # The headline total keeps its pre-columnar meaning: the text
    # load -> filter -> group -> report pipeline.
    stages["total"] = sum(
        stages[k] for k in ("load", "filter", "group", "report")
    )
    print(
        f"[{name}] load {stages['load']:.3f}s  filter {stages['filter']:.3f}s  "
        f"group {stages['group']:.3f}s  report {stages['report']:.3f}s  "
        f"colsave {save_col_s:.3f}s  colload {load_col_s:.4f}s "
        f"(x{load_s / max(load_col_s, 1e-9):.0f} vs text)",
        flush=True,
    )
    return {
        "tickets": n,
        "stages": stages,
        "load_speedup": load_s / max(load_col_s, 1e-9),
    }


def run_columnar_tier(name: str, n: int, repeats: int) -> Dict[str, object]:
    """A tier served straight from the columnar store: ``load`` is the
    mmap open of the cached fixture, everything downstream runs against
    the memory-mapped (lazily decoded) dataset."""
    fixture = columnar_fixture(name, n)

    t0 = time.perf_counter()
    dataset = core_storage.load_columnar(fixture)
    load_s = time.perf_counter() - t0
    assert len(dataset) == n, f"fixture holds {len(dataset)} rows, wanted {n}"

    stages = {
        "load": load_s,
        "filter": _best_of(lambda: _stage_filter(dataset), repeats),
        "group": _best_of(lambda: _stage_group(dataset), repeats),
        "report": _best_of(lambda: _stage_report(dataset), repeats),
    }
    stages["total"] = sum(v for k, v in stages.items() if k != "total")
    fraction = stages["load"] / stages["total"]
    print(
        f"[{name}] load {stages['load']:.4f}s (mmap, {fraction:.3%} of tier)  "
        f"filter {stages['filter']:.3f}s  group {stages['group']:.3f}s  "
        f"report {stages['report']:.3f}s",
        flush=True,
    )
    return {
        "tickets": n,
        "format": "columnar",
        "stages": stages,
        "load_fraction": fraction,
    }


# ----------------------------------------------------------------------
# engine stages: sharded generation + analysis cache
# ----------------------------------------------------------------------
def _traces_identical(left, right) -> bool:
    from repro.core.columns import COLUMN_NAMES, TABLE_NAMES

    ls, rs = left.dataset.store, right.dataset.store
    if ls.n != rs.n or left.fms_stats != right.fms_stats:
        return False
    for name in TABLE_NAMES:
        if ls.table(name) != rs.table(name):
            return False
    for name in COLUMN_NAMES:
        lcol, rcol = ls.column(name), rs.column(name)
        if lcol.dtype == object:
            if list(lcol) != list(rcol):
                return False
        # equal_nan: op_times is NaN for still-open tickets.
        elif not np.array_equal(
            lcol, rcol, equal_nan=lcol.dtype.kind == "f"
        ):
            return False
    return True


def _engine_config(name: str, scale_override):
    from repro.config import ScenarioConfig, paper_scenario

    if scale_override is not None:
        return paper_scenario(scale=scale_override)
    if name == "1m":
        # The paper scenario caps at scale 1.0 (~290k tickets); the 1M
        # tier raises the failure budget on the same fleet instead.
        return ScenarioConfig(target_failures=1_000_000)
    return paper_scenario(scale=ENGINE_SCALES[name])


def run_engine_tier(
    name: str, jobs: int, repeats: int, scale_override=None
) -> Dict[str, object]:
    from repro.analysis.full_report import full_report
    from repro.engine import AnalysisCache
    from repro.simulation.trace import generate_trace

    config = _engine_config(name, scale_override)
    print(f"[{name}] engine: generating trace (scale {config.scale}, "
          f"target {config.scaled_target_failures}) ...", flush=True)

    t0 = time.perf_counter()
    serial = generate_trace(config, jobs=1)
    gen_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = generate_trace(config, jobs=jobs)
    gen_parallel = time.perf_counter() - t0

    equivalent = _traces_identical(serial, parallel)
    dataset = serial.dataset

    cache = AnalysisCache()
    t0 = time.perf_counter()
    full_report(dataset, cache=cache)
    report_cold = time.perf_counter() - t0
    report_warm = _best_of(lambda: full_report(dataset, cache=cache), repeats)

    out = {
        "tickets": len(dataset),
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "gen_serial": gen_serial,
        "gen_parallel": gen_parallel,
        "equivalent": equivalent,
        "report_cold": report_cold,
        "report_warm": report_warm,
    }
    print(
        f"[{name}] engine: gen {gen_serial:.2f}s serial / {gen_parallel:.2f}s "
        f"jobs={jobs} ({'identical' if equivalent else 'MISMATCH'})  "
        f"report {report_cold:.3f}s cold / {report_warm:.3f}s warm "
        f"(x{report_cold / max(report_warm, 1e-9):.1f})",
        flush=True,
    )
    return out


def run_adaptive_tier(name: str, repeats: int, scale_override=None) -> Dict[str, object]:
    """The self-tuning planner end to end: one serial run, one
    ``jobs="auto"`` run through an :class:`ExecutionPolicy` with a
    telemetry sink, plus the plan the planner actually chose."""
    from repro.engine import ExecutionPolicy, InMemoryTelemetrySink
    from repro.simulation.trace import generate_trace

    config = _engine_config(name, scale_override)
    print(f"[{name}] adaptive: generating trace (scale {config.scale}, "
          f"target {config.scaled_target_failures}) ...", flush=True)

    t0 = time.perf_counter()
    serial = generate_trace(config, policy=ExecutionPolicy(jobs="serial"))
    gen_serial = time.perf_counter() - t0

    sink = InMemoryTelemetrySink()
    t0 = time.perf_counter()
    auto = generate_trace(
        config, policy=ExecutionPolicy(jobs="auto", telemetry_sink=sink)
    )
    gen_auto = time.perf_counter() - t0

    run = sink.last
    assert run is not None and run.plan is not None
    plan = run.plan
    out = {
        "tickets": len(auto.dataset),
        "gen_serial": gen_serial,
        "gen_auto": gen_auto,
        "serial_over_auto": gen_serial / max(gen_auto, 1e-9),
        "mode": plan.mode,
        "jobs": plan.jobs,
        "cpus": plan.probed_cpus,
        "cpu_source": plan.cpu_source,
        "reason": plan.reason,
        "equivalent": _traces_identical(serial, auto),
    }
    print(
        f"[{name}] adaptive: serial {gen_serial:.2f}s / auto {gen_auto:.2f}s "
        f"(x{out['serial_over_auto']:.2f}); planner chose {plan.mode} "
        f"jobs={plan.jobs} on {plan.probed_cpus} CPUs "
        f"({'identical' if out['equivalent'] else 'MISMATCH'})",
        flush=True,
    )
    return out


def check_adaptive(results, *, min_parallel_ratio) -> int:
    """Gate on the planner's never-slower promise.

    A serial plan passes by construction (it *is* the serial code path;
    wall-time deltas there are machine noise, not planner mistakes); a
    parallel plan must beat serial by ``min_parallel_ratio``.  A trace
    that is not bit-identical to serial always fails.
    """
    failures = 0
    for name, tier in results.items():
        adaptive = tier.get("adaptive")
        if not adaptive:
            continue
        if not adaptive["equivalent"]:
            print(f"FAIL [{name}]: jobs='auto' trace differs from serial")
            failures += 1
        ratio = adaptive["serial_over_auto"]
        if adaptive["mode"] == "serial":
            print(
                f"OK [{name}]: planner chose serial — {adaptive['reason']} "
                f"(measured x{ratio:.2f}, informational)"
            )
        elif min_parallel_ratio and ratio < min_parallel_ratio:
            print(
                f"FAIL [{name}]: planner chose jobs={adaptive['jobs']} but "
                f"auto ran x{ratio:.2f} vs serial, below the required "
                f"x{min_parallel_ratio:.2f}"
            )
            failures += 1
        else:
            print(
                f"OK [{name}]: jobs='auto' ({adaptive['mode']}, "
                f"jobs={adaptive['jobs']}) x{ratio:.2f} vs serial"
            )
    return 1 if failures else 0


def check_engine(results, *, check_equivalence, min_cache_speedup,
                 min_gen_speedup, jobs) -> int:
    """Gate on the engine invariants; returns a non-zero exit on failure."""
    failures = 0
    cpus = os.cpu_count() or 1
    for name, tier in results.items():
        engine = tier.get("engine")
        if not engine:
            continue
        if check_equivalence and not engine["equivalent"]:
            print(f"FAIL [{name}]: sharded trace differs from serial")
            failures += 1
        if min_cache_speedup:
            ratio = engine["report_cold"] / max(engine["report_warm"], 1e-9)
            if ratio < min_cache_speedup:
                print(
                    f"FAIL [{name}]: warm-cache report speedup x{ratio:.1f} "
                    f"below the required x{min_cache_speedup:.1f}"
                )
                failures += 1
            else:
                print(f"OK [{name}]: warm-cache speedup x{ratio:.1f}")
        if min_gen_speedup:
            if cpus < jobs:
                print(
                    f"skip [{name}]: gen-speedup check needs >= {jobs} cores, "
                    f"machine has {cpus}"
                )
            else:
                ratio = engine["gen_serial"] / max(engine["gen_parallel"], 1e-9)
                if ratio < min_gen_speedup:
                    print(
                        f"FAIL [{name}]: sharded generation speedup "
                        f"x{ratio:.2f} below the required x{min_gen_speedup:.1f}"
                    )
                    failures += 1
                else:
                    print(f"OK [{name}]: sharded generation speedup x{ratio:.2f}")
    return 1 if failures else 0


def check_storage(results, *, min_load_speedup, max_load_fraction) -> int:
    """Gate on the columnar-store promises; returns non-zero on failure.

    * ``min_load_speedup`` — every text tier's columnar mmap open must
      beat its text parse by at least this factor;
    * ``max_load_fraction`` — every columnar-format tier must spend at
      most this fraction of its total wall time in ``load``.
    """
    failures = 0
    for name, tier in results.items():
        if min_load_speedup and "load_speedup" in tier:
            ratio = tier["load_speedup"]
            if ratio < min_load_speedup:
                print(
                    f"FAIL [{name}]: columnar load speedup x{ratio:.1f} "
                    f"below the required x{min_load_speedup:.1f}"
                )
                failures += 1
            else:
                print(f"OK [{name}]: columnar load speedup x{ratio:.1f}")
        if max_load_fraction and "load_fraction" in tier:
            fraction = tier["load_fraction"]
            if fraction > max_load_fraction:
                print(
                    f"FAIL [{name}]: load is {fraction:.3%} of the tier "
                    f"total, above the allowed {max_load_fraction:.2%}"
                )
                failures += 1
            else:
                print(
                    f"OK [{name}]: load is {fraction:.3%} of the tier total "
                    f"(limit {max_load_fraction:.2%})"
                )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# JSON trajectory file
# ----------------------------------------------------------------------
def load_json(path: Path) -> Dict[str, object]:
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"schema": 1, "runs": {}}


def update_json(path: Path, label: str, tiers: Dict[str, object]) -> None:
    data = load_json(path)
    runs = data.setdefault("runs", {})
    entry = runs.setdefault(label, {"tiers": {}})
    entry["python"] = platform.python_version()
    entry["numpy"] = np.__version__
    entry["tiers"].update(tiers)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"updated {path} [{label}: {', '.join(sorted(tiers))}]")


def check_regression(
    path: Path, tier: str, measured_report_s: float, max_regression: float
) -> int:
    data = load_json(path)
    runs = data.get("runs", {})
    reference = runs.get("current") or runs.get("baseline")
    if not reference:
        print(f"no reference numbers in {path}; skipping regression check")
        return 0
    ref = reference.get("tiers", {}).get(tier)
    if not ref:
        print(f"no reference tier {tier!r} in {path}; skipping regression check")
        return 0
    ref_s = float(ref["stages"]["report"])
    ratio = measured_report_s / ref_s if ref_s > 0 else float("inf")
    print(
        f"regression check [{tier}]: report {measured_report_s:.3f}s vs "
        f"checked-in {ref_s:.3f}s (x{ratio:.2f}, limit x{max_regression:.1f})"
    )
    if ratio > max_regression:
        print("FAIL: full-report wall time regressed beyond the allowed factor")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--tiers", default="50k,290k",
        help=f"comma-separated tiers to run (available: {', '.join(TIERS)})",
    )
    parser.add_argument(
        "--label", default="current", choices=["baseline", "current"],
        help="which slot of BENCH_perf.json to record into",
    )
    parser.add_argument("--json", default=str(DEFAULT_JSON), dest="json_path")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-update", action="store_true",
        help="measure only; do not rewrite the JSON trajectory file",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare the first tier's report time against the checked-in "
        "numbers and exit 1 on regression",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--engine", action="store_true",
        help="also run the repro.engine stages (sharded generation through "
        "the real simulation + analysis-cache report) per tier",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker processes for the sharded-generation stage (default 4)",
    )
    parser.add_argument(
        "--engine-scale", type=float, default=None,
        help="override the engine scenario scale (e.g. 0.02 for a quick "
        "CI smoke) instead of the tier's calibrated scale",
    )
    parser.add_argument(
        "--check-equivalence", action="store_true",
        help="exit 1 when the sharded trace is not bit-identical to serial",
    )
    parser.add_argument(
        "--min-cache-speedup", type=float, default=None, metavar="X",
        help="exit 1 when the warm-cache report is not at least X times "
        "faster than cold",
    )
    parser.add_argument(
        "--min-gen-speedup", type=float, default=None, metavar="X",
        help="exit 1 when sharded generation is not at least X times faster "
        "than serial (skipped on machines with fewer cores than --jobs)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="also run the self-tuning planner stage per tier "
        "(jobs='serial' vs jobs='auto' through an ExecutionPolicy)",
    )
    parser.add_argument(
        "--min-parallel-ratio", type=float, default=None, metavar="X",
        help="exit 1 when the planner picked a parallel plan but "
        "jobs='auto' was not at least X times faster than serial "
        "(serial plans pass by construction; 1.0 = never slower)",
    )
    parser.add_argument(
        "--min-load-speedup", type=float, default=None, metavar="X",
        help="exit 1 when the columnar mmap open is not at least X times "
        "faster than the text parse (text tiers only)",
    )
    parser.add_argument(
        "--max-load-fraction", type=float, default=None, metavar="F",
        help="exit 1 when a columnar-format tier spends more than fraction "
        "F of its total wall time in the load stage",
    )
    args = parser.parse_args(argv)

    tier_names = [t.strip() for t in args.tiers.split(",") if t.strip()]
    unknown = [t for t in tier_names if t not in TIERS]
    if unknown:
        parser.error(f"unknown tiers: {unknown}; available: {sorted(TIERS)}")

    json_path = Path(args.json_path)
    results = {name: run_tier(name, TIERS[name], args.repeats) for name in tier_names}

    if args.min_load_speedup or args.max_load_fraction:
        code = check_storage(
            results,
            min_load_speedup=args.min_load_speedup,
            max_load_fraction=args.max_load_fraction,
        )
        if code:
            return code

    if args.engine:
        for name in tier_names:
            if name in COLUMNAR_TIERS:
                print(f"[{name}] engine stages skipped: columnar-only tier")
                continue
            results[name]["engine"] = run_engine_tier(
                name, args.jobs, args.repeats, args.engine_scale
            )
        code = check_engine(
            results,
            check_equivalence=args.check_equivalence,
            min_cache_speedup=args.min_cache_speedup,
            min_gen_speedup=args.min_gen_speedup,
            jobs=args.jobs,
        )
        if code:
            return code

    if args.adaptive:
        for name in tier_names:
            if name in COLUMNAR_TIERS:
                print(f"[{name}] adaptive stage skipped: columnar-only tier")
                continue
            results[name]["adaptive"] = run_adaptive_tier(
                name, args.repeats, args.engine_scale
            )
        code = check_adaptive(
            results, min_parallel_ratio=args.min_parallel_ratio
        )
        if code:
            return code

    if args.check:
        first = tier_names[0]
        measured = float(results[first]["stages"]["report"])
        return check_regression(json_path, first, measured, args.max_regression)

    if not args.no_update:
        update_json(json_path, args.label, results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
