"""Table VII — concrete power/fan correlated-failure examples."""

from benchmarks._shared import emit
from repro.analysis import correlated, report
from repro.core.timeutil import to_datetime
from repro.core.types import ComponentClass


def test_table7_power_fan(benchmark, dataset):
    examples = benchmark.pedantic(
        correlated.find_pair_examples,
        args=(dataset, ComponentClass.POWER, ComponentClass.FAN),
        kwargs={"limit": 5},
        rounds=3,
        iterations=1,
    )
    rows = []
    for ex in examples:
        rows.append((
            ex.hostname,
            f"{ex.first.error_device.value} {ex.first.error_detail} "
            f"{to_datetime(ex.first.error_time):%y-%m-%d %H:%M:%S}",
            f"{ex.second.error_device.value} {ex.second.error_detail} "
            f"{to_datetime(ex.second.error_time):%y-%m-%d %H:%M:%S}",
            f"{ex.gap_seconds:.0f} s",
        ))
    emit(
        "table7_power_fan",
        report.format_table(
            ["server", "first FOT", "second FOT", "gap"],
            rows,
            title="Table VII — power/fan correlated failures "
                  "(paper: two servers on the same PSU, ~80 s apart)",
        ),
    )
    # The injectors plant these pairs; at bench scale at least one must
    # exist, same server, same day, minutes apart.
    assert examples
    assert all(0 <= ex.gap_seconds <= 86400 for ex in examples)
