"""Figure 5 / Hypotheses 3-4 — time between failures and distribution fits."""

from benchmarks._shared import BENCH_SCALE, comparison, emit
from repro.analysis import report, tbf
from repro.core.timeutil import MINUTE
from repro.simulation import calibration


def test_fig5_tbf(benchmark, dataset):
    analysis = benchmark.pedantic(
        tbf.analyze_tbf, args=(dataset,), rounds=3, iterations=1
    )
    # MTBF scales inversely with trace volume.
    paper_mtbf = calibration.PAPER_TARGETS["mtbf_overall_minutes"]
    lo, hi = calibration.PAPER_TARGETS["mtbf_per_dc_minutes"]
    dc_lo, dc_hi = tbf.mtbf_range_minutes(dataset)
    comparison(
        "fig5_tbf",
        [
            ("MTBF (min, scale-adjusted)", f"{paper_mtbf:.1f}",
             f"{analysis.mtbf_minutes * BENCH_SCALE:.1f}"),
            ("per-DC MTBF min (min)", f"{lo:.0f}",
             f"{dc_lo * BENCH_SCALE:.0f}"),
            ("per-DC MTBF max (min)", f"{hi:.0f}",
             f"{dc_hi * BENCH_SCALE:.0f}"),
            ("exp/weibull/gamma/lognormal all rejected @0.05", "yes",
             "yes" if analysis.all_rejected_at(0.05) else "no"),
        ],
        note="MTBF multiplied by the bench scale to compare with the "
             "paper's full-fleet value",
    )
    series = analysis.cdf_series(150)
    probes = [60.0, 10 * MINUTE, 3600.0, 6 * 3600.0, 86400.0]
    emit(
        "fig5_tbf_cdf",
        report.format_cdf_series(series, probes, unit="s"),
    )
    assert analysis.all_rejected_at(0.05)

    # Hypothesis 4: per-class rejection.  Assert where the class has
    # real statistical power (>= 1000 failures); the smallest classes
    # (SSD at ~0.3 % of tickets) can occasionally leave one flexible
    # family unrejected at 0.05 — plausibly why the paper "omit[s] the
    # figures" for them.
    per_class = tbf.tbf_per_component(dataset, min_failures=1000)
    for results in per_class.values():
        assert all(r.reject_at(0.05) for r in results.values())
