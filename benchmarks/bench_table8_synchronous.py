"""Table VIII — synchronously repeating failures on near-identical servers."""

from benchmarks._shared import emit
from repro.analysis import repeating, report
from repro.core.timeutil import to_datetime


def test_table8_synchronous(benchmark, trace, dataset):
    groups = benchmark.pedantic(
        repeating.synchronous_groups,
        args=(dataset,),
        kwargs={"window_seconds": 60.0, "min_matches": 3},
        rounds=3,
        iterations=1,
    )
    rows = []
    for g in groups[:8]:
        examples = ", ".join(
            f"{to_datetime(t):%y-%m-%d %H:%M}" for t in g.example_times[:3]
        )
        rows.append((g.host_ids[0], g.host_ids[1], g.n_synchronized, examples))
    emit(
        "table8_synchronous",
        report.format_table(
            ["server A", "server B", "synced failures", "example times"],
            rows,
            title="Table VIII — synchronous repeating failures "
                  "(paper: servers C/D repeat within seconds for months)",
        ),
    )
    assert groups

    # The detected groups must include injected ground truth.
    host_by_row = {i: s.host_id for i, s in enumerate(trace.fleet.servers)}
    injected = {
        frozenset(host_by_row[r] for r in record.server_rows)
        for record in trace.injections
        if record.kind == "synchronous_group"
    }
    found = {frozenset(g.host_ids) for g in groups}
    assert injected & found
