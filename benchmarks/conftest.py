"""Benchmark fixtures: the shared synthetic trace."""

import pytest

from benchmarks._shared import bench_trace


@pytest.fixture(scope="session")
def trace():
    return bench_trace()


@pytest.fixture(scope="session")
def dataset(trace):
    return trace.dataset
