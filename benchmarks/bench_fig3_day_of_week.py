"""Figure 3 / Hypothesis 1 — failures per day of the week."""

from benchmarks._shared import emit
from repro.analysis import report, temporal


def test_fig3_day_of_week(benchmark, dataset):
    summary = benchmark(temporal.day_of_week_summary, dataset, 4)
    blocks = []
    for cls, profile in summary.items():
        block = report.format_profile(
            profile.labels,
            profile.fractions,
            title=f"Figure 3 ({cls.value}) — chi2 {profile.test}",
        )
        blocks.append(block)
    robustness = temporal.weekday_robustness_test(dataset)
    blocks.append(
        "paper: Hypothesis 1 rejected at 0.01 for all classes; still "
        f"rejected at 0.02 excluding weekends.\nmeasured (weekdays only): {robustness}"
    )
    emit("fig3_day_of_week", "\n\n".join(blocks))

    # The paper rejects at 0.01 for every class; statistical power at
    # bench scale only guarantees that for the high-volume classes, so
    # the lower-volume ones get the 0.05 bar.
    for i, profile in enumerate(summary.values()):
        alpha = 0.01 if i < 2 else 0.05
        assert profile.test.reject_at(alpha), profile.component
    assert robustness.reject_at(0.02)
