"""Figure 8 — per-slot failure ratio for two example data centers.

The paper contrasts DC A (uniform overall, but slots 22 and 35 stick out
beyond mu + 2 sigma — next to the rack power module and at the top of
the under-floor-cooled rack) with DC B (rejected outright).
"""

import numpy as np

from benchmarks._shared import emit
from repro.analysis import report, spatial


def _profiles_for_examples(dataset, trace):
    """Pick illustrative DCs the way the paper did: DC A is a hotspot DC
    whose hot slots stick out while overall uniformity survives-ish; DC B
    is the gradient DC with the strongest rejection."""
    candidates = {"hotspot": [], "gradient": []}
    for dc in trace.fleet.datacenters:
        kind = dc.spatial_profile.kind
        if kind == "uniform":
            continue
        try:
            profile = spatial.rack_position_profile(
                dataset, trace.inventory, dc.name
            )
        except ValueError:
            continue
        candidates[kind].append(profile)
    out = {}
    if candidates["gradient"]:
        out["gradient"] = min(
            candidates["gradient"], key=lambda p: p.test.p_value
        )
    if candidates["hotspot"]:
        # Prefer the hotspot DC whose mu+2sigma anomalies include the
        # physically hot slots 22/35.
        def score(profile):
            hits = len(set(profile.outlier_positions()) & {22, 35})
            return (-hits, -profile.failures.sum())

        out["hotspot"] = min(candidates["hotspot"], key=score)
    return out


def test_fig8_rack_positions(benchmark, trace, dataset):
    profiles = benchmark.pedantic(
        _profiles_for_examples, args=(dataset, trace), rounds=3, iterations=1
    )
    blocks = []
    for kind, profile in profiles.items():
        ratios = np.nan_to_num(profile.ratio, nan=0.0)
        label = "DC A (hotspot)" if kind == "hotspot" else "DC B (gradient)"
        blocks.append(
            f"{label} = {profile.idc}: |{report.sparkline(ratios, 40)}| "
            f"chi2 {profile.test}\n"
            f"  mu+2sigma outlier slots: {profile.outlier_positions()}"
        )
    emit("fig8_rack_positions", "\n\n".join(blocks))

    if "gradient" in profiles:
        # DC B behaviour: uniformity rejected with high confidence.
        assert profiles["gradient"].test.p_value < 0.05
    if "hotspot" in profiles:
        # DC A behaviour: the hot slots show up as anomalies.
        outliers = set(profiles["hotspot"].outlier_positions())
        assert outliers & {22, 35}
