"""Table IV / Hypothesis 5 — rack-position chi-square results per DC.

Statistical power grows with per-DC failed-server counts, so the bucket
split approaches the paper's 10/4/10 as the bench scale approaches 1.0
(see EXPERIMENTS.md for the full-scale run).
"""

from benchmarks._shared import comparison
from repro.analysis import spatial


def test_table4_spatial(benchmark, trace, dataset):
    summary = benchmark.pedantic(
        spatial.rack_position_tests,
        args=(dataset, trace.inventory),
        rounds=3,
        iterations=1,
    )
    buckets = summary.bucket_counts()
    comparison(
        "table4_spatial",
        [
            ("p < 0.01", "10 of 24", f"{buckets['p<0.01']} of {summary.n_datacenters}"),
            ("0.01 <= p < 0.05", "4 of 24",
             f"{buckets['0.01<=p<0.05']} of {summary.n_datacenters}"),
            ("p >= 0.05", "10 of 24", f"{buckets['p>=0.05']} of {summary.n_datacenters}"),
        ],
        note="power depends on per-DC volume; run with REPRO_BENCH_SCALE=1 "
             "to match the paper's fleet size",
    )
    # Shape: some DCs reject, some don't (the paper's 60/40 split).
    assert buckets["p>=0.05"] >= 1
    rejected = buckets["p<0.01"] + buckets["0.01<=p<0.05"]
    assert rejected >= 1

    # Modern (post-2014) DCs are mostly uniform — the paper: ~90 % of
    # them cannot be rejected at 0.02.
    modern = [dc.name for dc in trace.fleet.datacenters if dc.is_modern]
    tested_modern = [n for n in modern if n in summary.results]
    if tested_modern:
        not_rejected = sum(
            1 for n in tested_modern
            if not summary.results[n].reject_at(0.02)
        )
        assert not_rejected / len(tested_modern) >= 0.6
