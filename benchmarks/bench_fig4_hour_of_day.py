"""Figure 4 / Hypothesis 2 — failures per hour of the day."""

from benchmarks._shared import emit
from repro.analysis import report, temporal


def test_fig4_hour_of_day(benchmark, dataset):
    summary = benchmark(temporal.hour_of_day_summary, dataset, 8)
    blocks = []
    rejected = 0
    for cls, profile in summary.items():
        line = report.sparkline(profile.fractions, width=24)
        rejected += int(profile.test.reject_at(0.01))
        blocks.append(
            f"{cls.value:<14} |{line}| n={profile.n_failures} "
            f"p={profile.test.p_value:.2g}"
        )
    blocks.append(
        f"\npaper: Hypothesis 2 rejected at 0.01 for each of the 8 classes."
        f"\nmeasured: rejected for {rejected} of {len(summary)} classes."
    )
    emit("fig4_hour_of_day", "\n".join(blocks))
    # The high-volume classes must reject.
    assert rejected >= max(4, len(summary) // 2)
