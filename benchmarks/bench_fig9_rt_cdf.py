"""Figure 9 — CDF of operator response time for D_fixing / D_falsealarm."""

from benchmarks._shared import comparison, emit, pct
from repro.analysis import report, response
from repro.core.types import FOTCategory
from repro.simulation import calibration


def _both(dataset):
    return (
        response.rt_distribution(dataset, FOTCategory.FIXING),
        response.rt_distribution(dataset, FOTCategory.FALSE_ALARM),
    )


def test_fig9_rt_cdf(benchmark, dataset):
    fixing, false_alarm = benchmark.pedantic(
        _both, args=(dataset,), rounds=3, iterations=1
    )
    t = calibration.PAPER_TARGETS
    comparison(
        "fig9_rt_cdf",
        [
            ("D_fixing median (days)", t["rt_fixing_median_days"],
             f"{fixing.median_days:.1f}"),
            ("D_fixing mean / MTTR (days)", t["rt_fixing_mean_days"],
             f"{fixing.mean_days:.1f}"),
            ("D_falsealarm median (days)", t["rt_falsealarm_median_days"],
             f"{false_alarm.median_days:.1f}"),
            ("D_falsealarm mean (days)", t["rt_falsealarm_mean_days"],
             f"{false_alarm.mean_days:.1f}"),
            ("RT > 140 days", pct(t["rt_tail_140d"]), pct(fixing.tail_140d)),
            ("RT > 200 days", pct(t["rt_tail_200d"]), pct(fixing.tail_200d)),
        ],
    )
    probes = [0.5, 1, 2, 5, 10, 20, 50, 100, 140, 200]
    emit(
        "fig9_rt_cdf_series",
        report.format_cdf_series(
            {
                "d_fixing": fixing.cdf.series(300),
                "d_falsealarm": false_alarm.cdf.series(300),
            },
            probes,
            unit="d",
        ),
    )
    # Paper shape: long responses exist but tickets do get closed; the
    # mean is several times the median; false alarms close faster.
    assert fixing.mean_days > 3 * fixing.median_days
    assert fixing.tail_140d > 0.01
    assert false_alarm.median_days < fixing.median_days * 2
