"""Shared machinery for the benchmark harness.

Every bench regenerates one of the paper's tables or figures from a
shared synthetic trace, times the analysis with pytest-benchmark, prints
a *paper vs. measured* comparison and archives it under
``benchmarks/results/``.

The trace scale is controlled by ``REPRO_BENCH_SCALE`` (default 0.5 —
~140k tickets, ~95k servers).  Absolute thresholds like Table V's
N=100/200/500 are scaled alongside so the reported frequencies stay
comparable; EXPERIMENTS.md records a full ``scale=1.0`` run.
"""

from __future__ import annotations

import contextlib
import os
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Tuple

from repro.analysis import report
from repro.config import paper_scenario
from repro.simulation import calibration
from repro.simulation.trace import SyntheticTrace, generate_trace

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20170626"))

RESULTS_DIR = Path(__file__).parent / "results"


@lru_cache(maxsize=2)
def bench_trace(scale: float = BENCH_SCALE, seed: int = BENCH_SEED) -> SyntheticTrace:
    """The shared trace every bench analyzes (generated once)."""
    return generate_trace(paper_scenario(scale=scale, seed=seed))


def emit(name: str, text: str) -> None:
    """Print a result block and archive it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def comparison(name: str, rows: Iterable[Tuple[str, object, object]], note: str = "") -> None:
    text = report.comparison_table(rows, title=name)
    if note:
        text += f"\nnote: {note}"
    emit(name, text)


@contextlib.contextmanager
def override_calibration(**overrides):
    """Temporarily override calibration constants (ablation benches)."""
    saved = {}
    for key, value in overrides.items():
        if not hasattr(calibration, key):
            raise AttributeError(f"no calibration constant named {key!r}")
        saved[key] = getattr(calibration, key)
        setattr(calibration, key, value)
    try:
        yield
    finally:
        for key, value in saved.items():
            setattr(calibration, key, value)


def pct(value: float) -> str:
    return report.format_percent(value)


__all__ = [
    "BENCH_SCALE",
    "BENCH_SEED",
    "bench_trace",
    "emit",
    "comparison",
    "override_calibration",
    "pct",
]
