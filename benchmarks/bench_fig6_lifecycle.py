"""Figure 6 — normalized monthly failure rates over the lifecycle."""

from benchmarks._shared import comparison, emit, pct
from repro.analysis import lifecycle, report
from repro.core.types import ComponentClass
from repro.simulation import calibration


def test_fig6_lifecycle(benchmark, trace, dataset):
    curves = benchmark.pedantic(
        lifecycle.lifecycle_summary,
        args=(dataset, trace.inventory),
        kwargs={"n_months": 48, "min_failures": 60},
        rounds=3,
        iterations=1,
    )

    blocks = []
    for cls, curve in curves.items():
        blocks.append(
            f"{cls.value:<14} |{report.sparkline(curve.normalized_rate, 48)}|"
        )
    emit("fig6_lifecycle_shapes", "\n".join(blocks))

    rows = []
    hdd = curves[ComponentClass.HDD]
    rows.append((
        "HDD infant uplift (mo 0-3 vs 4-9)",
        pct(calibration.PAPER_TARGETS["hdd_infant_uplift"]),
        pct(lifecycle.infant_mortality_uplift(hdd)),
    ))
    if ComponentClass.RAID_CARD in curves:
        rows.append((
            "RAID failures in first 6 months",
            pct(calibration.PAPER_TARGETS["raid_infant_share_6mo"]),
            pct(curves[ComponentClass.RAID_CARD].share_before(6)),
        ))
    if ComponentClass.MOTHERBOARD in curves:
        rows.append((
            "motherboard failures after month 36",
            pct(calibration.PAPER_TARGETS["motherboard_share_after_36mo"]),
            pct(curves[ComponentClass.MOTHERBOARD].share_after(36)),
        ))
    if ComponentClass.FLASH_CARD in curves:
        rows.append((
            "flash failures in first 12 months",
            pct(calibration.PAPER_TARGETS["flash_share_first_12mo"]),
            pct(curves[ComponentClass.FLASH_CARD].share_before(12)),
        ))
    misc = curves[ComponentClass.MISC]
    rows.append((
        "misc month-0 rate vs steady state",
        "extremely high",
        f"{misc.normalized_rate[0] / max(misc.mean_rate(2, 12), 1e-9):.1f}x",
    ))
    comparison("fig6_lifecycle", rows)

    assert lifecycle.infant_mortality_uplift(hdd) > 0
    assert hdd.mean_rate(30, 42) > hdd.mean_rate(3, 9)
