"""Table VI — correlated two-component failures on single servers."""

from benchmarks._shared import BENCH_SCALE, comparison, emit, pct
from repro.analysis import correlated, report
from repro.core.timeutil import PAPER_TRACE_DAYS
from repro.simulation import calibration


def test_table6_correlated(benchmark, dataset):
    stats = benchmark.pedantic(
        correlated.component_pair_counts, args=(dataset,), rounds=3, iterations=1
    )
    rows = []
    for (a, b), count in sorted(
        stats.pair_counts.items(), key=lambda kv: kv[1], reverse=True
    )[:15]:
        paper = calibration.CORRELATED_PAIR_COUNTS.get(
            (a, b), calibration.CORRELATED_PAIR_COUNTS.get((b, a), "-")
        )
        scaled = "-" if paper == "-" else f"{paper} x {BENCH_SCALE:g} = {paper * BENCH_SCALE:.0f}"
        rows.append((f"{a.value} + {b.value}", scaled, count))
    emit(
        "table6_correlated_pairs",
        report.format_table(
            ["pair", "paper (scaled)", "measured"],
            rows,
            title="Table VI — correlated component pairs",
        ),
    )
    comparison(
        "table6_correlated",
        [
            ("servers with correlated pairs",
             pct(calibration.PAPER_TARGETS["correlated_server_share"]),
             pct(stats.correlated_server_fraction)),
            ("pairs involving a misc report",
             pct(calibration.PAPER_TARGETS["correlated_misc_share"]),
             pct(stats.misc_share)),
            ("HDD share of non-misc pairs", "nearly all",
             pct(stats.hdd_share_of_non_misc)),
            ("independence baseline (same-day)", "< 5 %",
             pct(correlated.independence_baseline(dataset, PAPER_TRACE_DAYS))),
        ],
    )
    assert stats.correlated_server_fraction < 0.05
    assert stats.misc_share > 0.3
    assert stats.hdd_share_of_non_misc > 0.5
