"""Table V — batch failure frequency r_N per component class.

The paper's thresholds (N = 100/200/500 failures per day) are absolute,
so they are scaled with the bench trace; at scale 1.0 the raw thresholds
apply directly.
"""

from benchmarks._shared import BENCH_SCALE, comparison, emit, pct
from repro.analysis import batch, report
from repro.core.types import ComponentClass
from repro.simulation import calibration


def test_table5_batch(benchmark, dataset):
    thresholds = tuple(
        max(2, int(round(n * BENCH_SCALE))) for n in batch.TABLE_V_THRESHOLDS
    )
    table = benchmark(
        batch.batch_failure_frequency, dataset, thresholds
    )

    rows = []
    for cls in ComponentClass:
        rows.append(
            (cls.value,)
            + tuple(pct(table[cls][n]) for n in thresholds)
        )
    emit(
        "table5_batch_full",
        report.format_table(
            ["component", *(f"r{n}" for n in thresholds)],
            rows,
            title=f"Table V at scale {BENCH_SCALE} "
                  f"(thresholds {thresholds})",
        ),
    )
    hdd = table[ComponentClass.HDD]
    comparison(
        "table5_batch",
        [
            ("HDD r100 (scaled)", pct(calibration.PAPER_TARGETS["batch_r100_hdd"]),
             pct(hdd[thresholds[0]])),
            ("HDD r200 (scaled)", pct(calibration.PAPER_TARGETS["batch_r200_hdd"]),
             pct(hdd[thresholds[1]])),
            ("HDD r500 (scaled)", pct(calibration.PAPER_TARGETS["batch_r500_hdd"]),
             pct(hdd[thresholds[2]])),
        ],
    )
    # Shape assertions: HDD far ahead, frequencies fall with N, the
    # r500-style tail exists but is rare.
    assert hdd[thresholds[0]] >= hdd[thresholds[1]] >= hdd[thresholds[2]]
    assert 0.2 <= hdd[thresholds[0]] <= 0.9
    assert 0.003 <= hdd[thresholds[2]] <= 0.12
    non_hdd = max(
        table[cls][thresholds[0]]
        for cls in ComponentClass
        if cls is not ComponentClass.HDD
    )
    assert hdd[thresholds[0]] > non_hdd
