"""Ablation — workload-gated (log-based) detection vs. flat detection.

The paper attributes the hour-of-day skew (Fig 4) to log-based detection
firing when components get used.  Decoupling detection from workload
flattens the hour profile for the workload-coupled classes.
"""


from benchmarks._shared import comparison, override_calibration
from repro.analysis import temporal
from repro.config import paper_scenario
from repro.core.types import ComponentClass as C
from repro.simulation.trace import generate_trace

ABLATION_SCALE = 0.08

_NO_COUPLING = {cls: 0.0 for cls in C}


def _flat_detection_trace():
    with override_calibration(WORKLOAD_COUPLING=_NO_COUPLING):
        return generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=779))


def _peak_to_trough(profile) -> float:
    return float(profile.fractions.max() / max(profile.fractions.min(), 1e-9))


def test_ablation_detection(benchmark):
    baseline = generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=779))
    flat = benchmark.pedantic(_flat_detection_trace, rounds=1, iterations=1)

    base_hdd = temporal.hour_of_day_profile(baseline.dataset, C.HDD)
    flat_hdd = temporal.hour_of_day_profile(flat.dataset, C.HDD)
    base_misc = temporal.hour_of_day_profile(baseline.dataset, C.MISC)
    flat_misc = temporal.hour_of_day_profile(flat.dataset, C.MISC)

    comparison(
        "ablation_detection",
        [
            ("HDD hour peak/trough (coupled)", "> 1",
             f"{_peak_to_trough(base_hdd):.2f}"),
            ("HDD hour peak/trough (decoupled)", "~ 1",
             f"{_peak_to_trough(flat_hdd):.2f}"),
            ("HDD rejects uniformity (coupled)", "yes",
             "yes" if base_hdd.test.reject_at(0.01) else "no"),
            ("HDD rejects uniformity (decoupled)", "-",
             "yes" if flat_hdd.test.reject_at(0.01) else "no"),
            ("misc peak/trough (unchanged by ablation)", "-",
             f"{_peak_to_trough(base_misc):.1f} vs {_peak_to_trough(flat_misc):.1f}"),
        ],
        note="manual (misc) reports follow working hours regardless — "
             "only the automatic log-based classes flatten",
    )
    assert base_hdd.test.reject_at(0.01)
    assert _peak_to_trough(base_hdd) > _peak_to_trough(flat_hdd)
    # Manual reporting keeps its working-hours shape in both runs.
    assert flat_misc.test.reject_at(0.01)
