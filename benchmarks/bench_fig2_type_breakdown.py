"""Figure 2 — failure-type mix for the four example component classes."""

from benchmarks._shared import emit, pct
from repro.analysis import overview, report
from repro.core.types import ComponentClass
from repro.simulation import calibration

FIG2_CLASSES = (
    ComponentClass.HDD,
    ComponentClass.RAID_CARD,
    ComponentClass.FLASH_CARD,
    ComponentClass.MEMORY,
)


def _all_breakdowns(dataset):
    return {
        cls: overview.failure_types(dataset, cls)
        for cls in FIG2_CLASSES
    }


def test_fig2_type_breakdown(benchmark, dataset):
    breakdowns = benchmark(_all_breakdowns, dataset)
    blocks = []
    for cls, shares in breakdowns.items():
        target = calibration.TYPE_MIX[cls]
        rows = [
            (name, pct(target.get(name, 0.0)), pct(share))
            for name, share in shares.items()
        ]
        blocks.append(
            report.format_table(
                ["type", "calibrated", "measured"],
                rows,
                title=f"Figure 2 ({cls.value})",
            )
        )
    emit("fig2_type_breakdown", "\n\n".join(blocks))

    # Headline shape: SMART-style alerts dominate drives, correctable
    # DIMM errors dominate memory.
    assert list(breakdowns[ComponentClass.HDD])[0] == "SMARTFail"
    mem = breakdowns[ComponentClass.MEMORY]
    assert mem["DIMMCE"] > mem["DIMMUE"]
