"""Extension bench — active probing vs. log-based detection.

Not a paper table: Section III-A only *describes* the limitation of
log-based detection and says the team "is working on an active failure
probing mechanism to solve the problem".  This bench quantifies what
that mechanism buys, for a hot component (24 uses/day) and a cold one
(2 uses/day — the archive-drive case that motivated the work).
"""

import numpy as np

from benchmarks._shared import emit
from repro.analysis import report
from repro.fms import probing


def _run_both():
    rng = np.random.default_rng(26)
    hot = probing.compare_detection(
        2000, uses_per_day=24.0, probe_period_hours=4.0, rng=rng
    )
    cold = probing.compare_detection(
        2000, uses_per_day=2.0, probe_period_hours=4.0, rng=rng
    )
    return hot, cold


def test_probing(benchmark):
    hot, cold = benchmark.pedantic(_run_both, rounds=2, iterations=1)
    rows = []
    for label, r in (("hot (24 uses/day)", hot), ("cold (2 uses/day)", cold)):
        rows.append((
            label,
            f"{r.log_mean_latency_hours:.1f} h",
            f"{r.log_p99_latency_hours:.1f} h",
            f"{r.probe_mean_latency_hours:.1f} h",
            f"{r.probe_p99_latency_hours:.1f} h",
            f"{r.log_peak_share:.0%} -> {r.probe_peak_share:.0%}",
        ))
    emit(
        "probing",
        report.format_table(
            ["component", "log mean", "log p99", "probe mean", "probe p99",
             "peak-hour detections"],
            rows,
            title="Active probing vs. log-based detection "
                  "(4-hour probe cycle)",
        ),
    )
    # The prober bounds the cold component's tail latency by its period.
    assert cold.probe_p99_latency_hours <= 4.0 + 0.1
    assert cold.log_p99_latency_hours > cold.probe_p99_latency_hours * 2
