"""Wall-time benchmark for reprolint's engines.

Times ``run_lint`` over ``src/`` and over the full default tree
(``src tests benchmarks``) for both engines, prints a comparison, and
records the numbers in a ``reprolint`` section of ``BENCH_perf.json``
alongside the core-substrate timings.

The dataflow, effects and perf engines re-analyze every function
against call-graph summary fixpoints, so their wall-time is what grows
with the repo; the CI timing gate (``--check --budget 60``) keeps the
heaviest engine (perf, which also runs the ast+dataflow+effects
passes) inside the budget the ISSUE set for the analysis to stay
usable::

    PYTHONPATH=src python benchmarks/bench_reprolint.py --check --budget 60

    # record timings into BENCH_perf.json
    PYTHONPATH=src python benchmarks/bench_reprolint.py --json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.devtools.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

#: (label, lint targets) timed per engine.
TARGETS = (
    ("src", ("src",)),
    ("tree", ("src", "tests", "benchmarks")),
)


def time_lint(paths, engine: str, repeats: int) -> dict:
    best = float("inf")
    findings = files = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_lint([str(REPO_ROOT / p) for p in paths],
                          baseline=REPO_ROOT / "reprolint-baseline.json",
                          engine=engine)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        findings = len(result.new)
        files = sum(
            1 for p in paths
            for _ in (REPO_ROOT / p).rglob("*.py")
        )
    return {"seconds": best, "files": files, "new_findings": findings}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="fail when the perf lint of src/ "
                             "exceeds --budget seconds")
    parser.add_argument("--budget", type=float, default=60.0,
                        help="timing budget in seconds for --check "
                             "(default 60)")
    parser.add_argument("--json", action="store_true",
                        help="record timings in BENCH_perf.json")
    args = parser.parse_args(argv)

    timings: dict = {}
    for engine in ("ast", "dataflow", "effects", "perf"):
        timings[engine] = {}
        for label, paths in TARGETS:
            timings[engine][label] = time_lint(paths, engine, args.repeats)

    print(f"{'target':<8} {'engine':<10} {'files':>6} {'seconds':>9}")
    for label, _ in TARGETS:
        for engine in ("ast", "dataflow", "effects", "perf"):
            entry = timings[engine][label]
            print(f"{label:<8} {engine:<10} {entry['files']:>6} "
                  f"{entry['seconds']:>9.3f}")
    perf_src = timings["perf"]["src"]["seconds"]
    print(f"\nperf lint of src/: {perf_src:.3f}s "
          f"(budget {args.budget:.0f}s)")

    if args.json:
        payload = json.loads(PERF_PATH.read_text(encoding="utf-8")) \
            if PERF_PATH.exists() else {"schema": 1, "runs": {}}
        payload["reprolint"] = {
            "python": platform.python_version(),
            "budget_seconds": args.budget,
            "engines": timings,
        }
        PERF_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                             + "\n", encoding="utf-8")
        print(f"recorded reprolint timings in {PERF_PATH.name}")

    if args.check and perf_src > args.budget:
        print(f"FAIL: perf lint of src/ took {perf_src:.1f}s "
              f"> budget {args.budget:.0f}s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
