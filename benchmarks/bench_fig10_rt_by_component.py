"""Figure 10 — RT distribution per component class."""

from benchmarks._shared import emit
from repro.analysis import report, response
from repro.core.types import ComponentClass


def test_fig10_rt_by_component(benchmark, dataset):
    by_class = benchmark.pedantic(
        response.rt_by_component, args=(dataset,), kwargs={"min_tickets": 50},
        rounds=3, iterations=1,
    )
    ranked = sorted(by_class.items(), key=lambda kv: kv[1].median_days)
    rows = [
        (cls.value, f"{stats.median_days:.2f}", f"{stats.mean_days:.1f}",
         f"{stats.p90_days:.1f}", stats.n)
        for cls, stats in ranked
    ]
    emit(
        "fig10_rt_by_component",
        report.format_table(
            ["component", "median (d)", "mean (d)", "p90 (d)", "n"],
            rows,
            title="Figure 10 — RT per class "
                  "(paper: SSD/misc shortest at hours; HDD/fan/memory "
                  "longest at 7-18 days)",
        ),
    )
    # Paper's ordering claims.
    if ComponentClass.SSD in by_class:
        assert by_class[ComponentClass.SSD].median_days < 2.0
    assert by_class[ComponentClass.MISC].median_days < by_class[
        ComponentClass.HDD
    ].median_days
    for slow in (ComponentClass.FAN, ComponentClass.MEMORY):
        if slow in by_class:
            assert (
                by_class[slow].median_days
                >= by_class[ComponentClass.HDD].median_days * 0.8
            )
