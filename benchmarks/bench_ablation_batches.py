"""Ablation — day effects + storms vs. a smooth Poisson process.

The overdispersed day effect and the storm injectors are what break the
TBF distribution fits (Fig 5) and produce Table V's batch frequencies.
With both ablated, daily counts become near-Poisson: r_N collapses and
the TBF looks far more exponential.
"""


from benchmarks._shared import comparison, override_calibration, pct
from repro.analysis import batch, tbf
from repro.config import paper_scenario
from repro.core.types import ComponentClass as C
from repro.simulation.trace import generate_trace

ABLATION_SCALE = 0.08

_FLAT_DAY_EFFECT = {cls: 1e-6 for cls in C}


def _smooth_trace():
    with override_calibration(
        DAY_EFFECT_SIGMA=_FLAT_DAY_EFFECT,
        SMART_STORMS_PER_YEAR=0.0,
        CASE1_STORM_SIZE=0,
        SAS_BATCHES_PER_YEAR=0.0,
        PDU_OUTAGES_PER_YEAR=0.0,
        MISOPERATION_EVENTS=0,
    ):
        return generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=778))


def test_ablation_batches(benchmark):
    baseline = generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=778))
    smooth = benchmark.pedantic(_smooth_trace, rounds=1, iterations=1)

    threshold = max(3, int(round(100 * ABLATION_SCALE)))
    base_counts = batch.daily_counts(baseline.dataset, C.HDD)
    smooth_counts = batch.daily_counts(smooth.dataset, C.HDD)
    base_r = batch.batch_frequency(base_counts, 3 * threshold)
    smooth_r = batch.batch_frequency(smooth_counts, 3 * threshold)

    base_disp = float(base_counts.var() / max(base_counts.mean(), 1e-9))
    smooth_disp = float(smooth_counts.var() / max(smooth_counts.mean(), 1e-9))

    base_tbf = tbf.analyze_tbf(baseline.dataset)
    smooth_tbf = tbf.analyze_tbf(smooth.dataset)

    comparison(
        "ablation_batches",
        [
            (f"HDD r{3*threshold} (storms on)", "-", pct(base_r)),
            (f"HDD r{3*threshold} (storms off)", "-", pct(smooth_r)),
            ("daily count dispersion (on)", "> 1", f"{base_disp:.1f}"),
            ("daily count dispersion (off)", "~ 1", f"{smooth_disp:.1f}"),
            ("all TBF fits rejected (on)", "yes",
             "yes" if base_tbf.all_rejected_at(0.05) else "no"),
            ("all TBF fits rejected (off)", "-",
             "yes" if smooth_tbf.all_rejected_at(0.05) else "no"),
        ],
    )
    assert base_disp > 2 * smooth_disp
    assert base_r >= smooth_r
    assert base_tbf.all_rejected_at(0.05)
