"""Section III-D — repeating failures and repair effectiveness."""

from benchmarks._shared import BENCH_SCALE, comparison, pct
from repro.analysis import repeating
from repro.simulation import calibration


def test_repeating_failures(benchmark, dataset):
    stats = benchmark.pedantic(
        repeating.repeating_stats, args=(dataset,), rounds=3, iterations=1
    )
    comparison(
        "repeating_failures",
        [
            ("fixed components that never repeat", "> 85 %",
             pct(stats.repeat_free_fraction)),
            ("ever-failed servers with repeats",
             pct(calibration.PAPER_TARGETS["repeating_server_share"]),
             pct(stats.repeating_server_fraction)),
            ("worst single server (failures, x scale)",
             "400+", f"{stats.max_failures_single_server} "
             f"(target ~{int(420 * max(BENCH_SCALE, 30/420))})"),
        ],
    )
    assert stats.repeat_free_fraction > 0.85
    assert 0.01 < stats.repeating_server_fraction < 0.12
    # The flapping BBU server exists at every scale.
    assert stats.max_failures_single_server >= 30
