"""Robustness — headline-statistic drift under ticket corruption.

Sweeps the chaos harness's corruption kinds × intensities over the
shared trace, re-ingests each corrupted dump through the quarantining
loader, and records how far Table I's D_fixing share, Table II's HDD
share, the MTBF and Figure 9's median RT drift from the clean baseline.
"""

from benchmarks._shared import BENCH_SEED, emit
from repro.robustness.chaos import CORRUPTION_KINDS, CorruptionSpec, corrupt_dataset
from repro.robustness.drift import robustness_sweep

INTENSITIES = (0.05, 0.2)


def test_robustness_drift(benchmark, dataset):
    # Time one representative corrupt-and-reingest cell...
    benchmark(
        corrupt_dataset, dataset, [CorruptionSpec("duplicates", 0.05)], BENCH_SEED
    )
    # ...and run the full sweep once for the archived drift table.
    table = robustness_sweep(
        dataset,
        kinds=CORRUPTION_KINDS,
        intensities=INTENSITIES,
        seed=BENCH_SEED,
    )
    emit("robustness_drift", table.format())

    assert len(table.runs) == len(CORRUPTION_KINDS) * len(INTENSITIES)
    # Dirt must move the statistics: mislabeling skews Table I, and
    # duplicate re-opens compress the time between failures.
    mislabel = table.worst_drift("fixing_share")
    assert mislabel is not None and mislabel.kind == "mislabel_category"
    duplicates = [
        c for c in table.cells if c.kind == "duplicates" and c.stat == "mtbf_minutes"
    ]
    assert any(c.corrupted_value < c.clean_value for c in duplicates)
