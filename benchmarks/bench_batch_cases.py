"""Section V-A case studies — detecting the injected batch events.

Case 1: a giant SMART storm on one product line's drive cohort.
Case 2: ~50 motherboards with faulty SAS cards in two 1-hour windows.
Case 3: a PDU outage failing every server it feeds within half a day.

The detector works from the tickets alone; the injectors' ground truth
is only used to verify the detections afterwards.
"""

from benchmarks._shared import emit
from repro.analysis import batch, report
from repro.core.types import ComponentClass


def _detect_all(dataset):
    return {
        "hdd": batch.detect_batches(dataset, ComponentClass.HDD, min_failures=25),
        "motherboard": batch.detect_batches(
            dataset, ComponentClass.MOTHERBOARD, min_failures=8
        ),
        "power": batch.detect_batches(
            dataset, ComponentClass.POWER, min_failures=10
        ),
    }


def _overlaps(event, record) -> bool:
    return event.start <= record.end and event.end >= record.start


def test_batch_cases(benchmark, trace, dataset):
    detections = benchmark.pedantic(
        _detect_all, args=(dataset,), rounds=3, iterations=1
    )

    rows = []
    for kind, events in detections.items():
        for e in events[:5]:
            rows.append((
                kind, f"{e.start / 86400:.1f}", f"{e.duration_hours:.1f} h",
                e.n_failures, e.n_servers, e.dominant_type,
                f"{e.dominant_line} ({e.dominant_line_share:.0%})",
            ))
    emit(
        "batch_cases",
        report.format_table(
            ["class", "day", "duration", "failures", "servers",
             "dominant type", "dominant line"],
            rows,
            title="Detected batch events (top 5 per class)",
        ),
    )

    # Case 1: the giant SMART storm is found, typed and attributed.
    case1 = next(r for r in trace.storms if r.kind == "smart_storm_case1")
    hits = [e for e in detections["hdd"] if _overlaps(e, case1)]
    assert hits
    assert hits[0].dominant_type == "SMARTFail"
    assert hits[0].dominant_line_share > 0.5

    # Case 3: at least one PDU outage shows up as a power batch.
    outages = [r for r in trace.storms if r.kind == "pdu_outage" and r.n_events >= 10]
    if outages:
        assert any(
            _overlaps(e, r) for r in outages for e in detections["power"]
        )
