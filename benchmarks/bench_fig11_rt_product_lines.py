"""Figure 11 — median HDD response time vs. product-line failure volume."""

import numpy as np

from benchmarks._shared import comparison, emit, pct
from repro.analysis import report, response
from repro.simulation import calibration


def test_fig11_rt_product_lines(benchmark, dataset):
    # The paper's Figure 11 covers HDD tickets "during the year 2015" —
    # a 12-month slice, which is what makes sub-100-failure lines
    # plentiful.  Slice the third trace year to match.
    year = dataset.between(730 * 86400.0, 1095 * 86400.0)
    summary = benchmark.pedantic(
        response.product_line_rt_summary, args=(year,), rounds=3, iterations=1
    )
    points = summary.points
    # A log-binned scatter summary: lines grouped by failure volume.
    volumes = np.array([p.n_failures for p in points], dtype=float)
    medians = np.array([p.median_rt_days for p in points])
    edges = [0, 30, 100, 300, 1000, 10**9]
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (volumes >= lo) & (volumes < hi)
        if not mask.any():
            continue
        rows.append((
            f"[{lo}, {hi})" if hi < 10**9 else f">= {lo}",
            int(mask.sum()),
            f"{np.median(medians[mask]):.1f}",
            f"{medians[mask].max():.1f}",
        ))
    emit(
        "fig11_rt_product_lines",
        report.format_table(
            ["HDD failures per line", "lines", "median of medians (d)",
             "max median (d)"],
            rows,
            title="Figure 11 — per-line median HDD RT vs. volume",
        ),
    )
    comparison(
        "fig11_summary",
        [
            ("top 1 % lines median RT (days)",
             calibration.PAPER_TARGETS["top_line_median_rt_days"],
             f"{summary.top_percent_median_days:.1f}"),
            ("small lines (<100 failures) with median > 100 d",
             "21 %", pct(summary.small_line_slow_fraction)),
            ("std of per-line median RT (days)", "30.2",
             f"{summary.rt_std_days:.1f}"),
        ],
    )
    # Paper shape: busy lines do NOT respond fastest; median RT does not
    # grow in proportion to volume, and the busiest lines sit around the
    # tens-of-days mark while some small lines are far slower.
    assert summary.top_percent_median_days > 10
    overall_median = float(np.median(medians))
    assert summary.top_percent_median_days > overall_median
    assert medians.max() > summary.top_percent_median_days * 0.8
