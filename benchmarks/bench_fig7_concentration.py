"""Figure 7 — failure concentration across ever-failed servers.

Note on the paper target: the text says "2 % of servers that ever failed
contribute more than 99 % of all failures", which is arithmetically
impossible for its own dataset (every ever-failed server holds >= 1
failure, so the other 98 % cannot hold < 1 %).  We therefore target the
qualitative claim — extreme non-uniformity — and report top-share and
Gini statistics; see EXPERIMENTS.md.
"""

from benchmarks._shared import comparison, emit, pct
from repro.analysis import concentration, report


def test_fig7_concentration(benchmark, trace, dataset):
    curve = benchmark(concentration.failure_concentration, dataset)
    xs, ys = concentration.concentration_series(curve, 60)
    emit(
        "fig7_concentration_curve",
        report.format_table(
            ["top servers", "share of failures"],
            [(pct(x), pct(y)) for x, y in zip(xs[::6], ys[::6])],
            title="Figure 7 — concentration curve (sampled)",
        ),
    )
    comparison(
        "fig7_concentration",
        [
            ("top 2 % of failed servers hold", "'>99 %' (see note)",
             pct(curve.share_of_top(0.02))),
            ("top 20 % of failed servers hold", "(not quoted)",
             pct(curve.share_of_top(0.2))),
            ("gini over failed servers", "(not quoted)",
             f"{curve.gini:.3f}"),
            ("ever-failed share of fleet", "(not quoted)",
             pct(concentration.ever_failed_fraction(dataset, len(trace.fleet)))),
        ],
        note="paper's 99 % quote is internally inconsistent; we match "
             "the qualitative extreme-skew claim",
    )
    # Extreme non-uniformity: top 2 % holds an order of magnitude more
    # than its uniform share, and the distribution is heavily skewed.
    assert curve.share_of_top(0.02) > 0.10
    assert curve.share_of_top(0.2) > 0.5
    assert curve.gini > 0.45
