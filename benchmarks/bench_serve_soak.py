#!/usr/bin/env python
"""Ingestion soak benchmark for the streaming service (``repro.serve``).

Feeds a chaos-corrupted FOT ticket stream through a live
:class:`~repro.serve.router.IngestRouter` — truncated batches,
duplicate deliveries, out-of-order timestamps, oversized batches, slow
producers and periodic transient append faults all on — while a
concurrent reader keeps hammering ``full_report`` over the growing live
dataset through the warm analysis cache.

Three properties are asserted (with ``--check`` they gate CI):

1. **Zero silent ticket loss.**  Every ticket that enters the queue is
   accounted for: ``accepted + quarantined + dead_lettered ==
   submitted``, and no dead-letter write may fail.
2. **Throughput.**  Sustained ingest rate must exceed ``--min-rate``
   tickets/hour (default 1,000,000 — roughly 300x the real four-year
   trace's arrival rate, so replaying history is never the bottleneck).
3. **Read latency.**  Warm-cache ``full_report`` reads issued while
   ingestion is running must stay under ``--max-read-seconds``.

Results land in the ``serve`` tier of BENCH_perf.json via the same
``update_json`` plumbing as the core benchmark.

Usage::

    python benchmarks/bench_serve_soak.py --tickets 120000 --check
    python benchmarks/bench_serve_soak.py --tickets 1000000 --no-update
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_perf_core import DEFAULT_JSON, synth_records, update_json

from repro.analysis.full_report import full_report
from repro.core.timeutil import HOUR
from repro.robustness.chaos import corrupt_stream, default_stream_specs
from repro.serve.breaker import BreakerOpenError
from repro.serve.config import BreakerConfig, RetryPolicy, ServeConfig
from repro.serve.router import IngestRouter
from repro.serve.store import TransientAppendError

DEFAULT_SEED = 20170626
#: cap on how long an injected slow-producer stall is actually enacted;
#: the manifest records the nominal delay, the bench only simulates it.
MAX_ENACTED_STALL_SECONDS = 0.005


class TransientFaultInjector:
    """Deterministically fault the first append attempt of every Nth
    batch with a :class:`TransientAppendError` (the retry succeeds)."""

    def __init__(self, every: int):
        self.every = every
        self.faulted: set = set()

    def __call__(self, batch) -> None:
        if not self.every:
            return
        if batch.seq % self.every == 0 and batch.seq not in self.faulted:
            self.faulted.add(batch.seq)
            raise TransientAppendError(
                f"injected transient fault on batch seq={batch.seq}"
            )


def build_stream(n_tickets: int, batch_size: int, seed: int, intensity: float):
    """Synthesize ``n_tickets`` valid tickets, slice into batches, and
    run the full stream-corruption gauntlet over them."""
    records = synth_records(n_tickets, seed=seed)
    batches = [
        records[i : i + batch_size]
        for i in range(0, len(records), batch_size)
    ]
    return corrupt_stream(batches, default_stream_specs(intensity), seed)


async def _producer(router, stream, delays, progress_every):
    for i, batch in enumerate(stream):
        stall = delays.get(str(i))
        if stall:
            await asyncio.sleep(min(stall, MAX_ENACTED_STALL_SECONDS))
        source = f"idc{i % 4:02d}"
        while True:
            try:
                await router.submit_wait(source, batch)
                break
            except BreakerOpenError as exc:
                await asyncio.sleep(min(exc.retry_after, 0.05))
        if progress_every and (i + 1) % progress_every == 0:
            print(f"  submitted {i + 1}/{len(stream)} batches", flush=True)


async def _reader(router, stop, latencies: List[float]):
    """Concurrent analyst: headline report over the live snapshot while
    ingestion is running.  The snapshot is taken on-loop; the report
    runs in the executor like the router's own refresh."""
    loop = asyncio.get_running_loop()
    while not stop.is_set():
        snapshot = router.live.current()
        if len(snapshot):
            started = time.perf_counter()
            await loop.run_in_executor(
                None,
                lambda s=snapshot: full_report(
                    s, cache=router.cache, headline_only=True
                ),
            )
            latencies.append(time.perf_counter() - started)
        await asyncio.sleep(0.05)


async def soak(router, stream, delays, progress_every):
    latencies: List[float] = []
    stop = asyncio.Event()
    router.start()
    reader = asyncio.get_running_loop().create_task(
        _reader(router, stop, latencies)
    )
    started = time.perf_counter()
    await _producer(router, stream, delays, progress_every)
    await router.drain()
    elapsed = time.perf_counter() - started
    stop.set()
    await reader
    await router.stop(drain=False)
    return elapsed, latencies


def run_soak(args) -> Dict[str, object]:
    stream, manifest = build_stream(
        args.tickets, args.batch_size, args.seed, args.intensity
    )
    delivered = sum(len(b) for b in stream)
    delays = {}
    for entry in manifest.injections:
        if entry["kind"] == "slow_batch":
            delays = entry["delays"]
    print(
        f"stream: {len(stream)} batches / {delivered} tickets after chaos "
        f"({manifest.n_input} clean tickets in)"
    )

    injector = TransientFaultInjector(args.fault_every)
    router = IngestRouter(
        ServeConfig(
            queue_high_watermark=64,
            max_batch_tickets=args.batch_size * 3,
            refresh_interval_batches=50,
            retry=RetryPolicy(
                attempts=3, base_seconds=0.001, max_seconds=0.01
            ),
            # Generous threshold: breaker mechanics are covered by the
            # unit suite; the soak wants sustained flow under faults.
            breaker=BreakerConfig(
                failure_threshold=50, reset_seconds=0.05
            ),
        ),
        append_fault=injector,
    )

    elapsed, latencies = asyncio.run(
        soak(router, stream, delays, args.progress_every)
    )

    snapshot = router.metrics_snapshot()
    counters = snapshot["counters"]
    rate = counters["tickets_submitted"] / elapsed * HOUR
    warm = latencies[1:] if len(latencies) > 1 else latencies
    tier: Dict[str, object] = {
        "tickets_delivered": delivered,
        "batches": len(stream),
        "elapsed_seconds": round(elapsed, 3),
        "tickets_per_hour": round(rate),
        "submitted": counters["tickets_submitted"],
        "accepted": counters["tickets_accepted"],
        "quarantined": counters["tickets_quarantined"],
        "dead_lettered": counters["tickets_dead_lettered"],
        "dead_letter_batches": snapshot["dead_letter"]["count"],
        "retries": counters["retries"],
        "injected_faults": len(injector.faulted),
        "compactions": counters["compactions"],
        "refreshes": counters["refreshes"],
        "reads": len(latencies),
        "read_warm_max_seconds": round(max(warm), 4) if warm else None,
    }
    tier["failures"] = check_soak(
        counters, snapshot, delivered, rate, warm, args
    )
    return tier


def check_soak(counters, snapshot, delivered, rate, warm, args) -> List[str]:
    failures: List[str] = []
    if counters["tickets_submitted"] != delivered:
        failures.append(
            f"delivery gap: {counters['tickets_submitted']} submitted "
            f"!= {delivered} delivered"
        )
    if counters["tickets_accounted"] != counters["tickets_submitted"]:
        failures.append(
            f"LEDGER BROKEN: accounted {counters['tickets_accounted']} "
            f"!= submitted {counters['tickets_submitted']}"
        )
    if snapshot["dead_letter"]["write_failures"]:
        failures.append(
            f"{snapshot['dead_letter']['write_failures']} dead-letter "
            f"writes failed"
        )
    if rate < args.min_rate:
        failures.append(
            f"rate {rate:,.0f} tickets/hour below floor "
            f"{args.min_rate:,.0f}"
        )
    if not warm:
        failures.append("reader never completed a concurrent full_report")
    elif max(warm) > args.max_read_seconds:
        failures.append(
            f"warm read {max(warm):.3f}s exceeds "
            f"{args.max_read_seconds:.1f}s budget"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tickets", type=int, default=120_000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--intensity", type=float, default=0.05,
        help="fraction of batches hit by each stream corruptor",
    )
    parser.add_argument(
        "--fault-every", type=int, default=25,
        help="inject a transient append fault on every Nth batch "
             "(0 disables)",
    )
    parser.add_argument(
        "--min-rate", type=float, default=1_000_000,
        help="required sustained ingest rate in tickets/hour",
    )
    parser.add_argument("--max-read-seconds", type=float, default=1.0)
    parser.add_argument("--progress-every", type=int, default=100)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any soak property fails",
    )
    parser.add_argument("--no-update", action="store_true")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    parser.add_argument("--label", default="current")
    args = parser.parse_args(argv)

    tier = run_soak(args)
    failures = tier.pop("failures")

    print("\nsoak results:")
    for key, value in tier.items():
        print(f"  {key}: {value}")
    if not args.no_update:
        update_json(args.json, args.label, {"serve": tier})
        print(f"\nrecorded serve tier in {args.json}")

    if failures:
        print("\nsoak FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1 if args.check else 0
    print("\nall soak properties hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
