"""Table I — FOT category breakdown (D_fixing / D_error / D_falsealarm)."""

from benchmarks._shared import comparison, pct
from repro.analysis import overview
from repro.core.types import FOTCategory
from repro.simulation import calibration


def test_table1_categories(benchmark, dataset):
    result = benchmark(overview.categories, dataset)
    target = calibration.PAPER_TARGETS["category_split"]
    comparison(
        "table1_categories",
        [
            ("D_fixing (issue RO)", pct(target["d_fixing"]),
             pct(result.fraction(FOTCategory.FIXING))),
            ("D_error (decommission)", pct(target["d_error"]),
             pct(result.fraction(FOTCategory.ERROR))),
            ("D_falsealarm", pct(target["d_falsealarm"]),
             pct(result.fraction(FOTCategory.FALSE_ALARM))),
            ("total FOTs (x scale)", calibration.PAPER_TARGETS["total_fots"],
             result.total),
        ],
    )
    assert abs(result.fraction(FOTCategory.FIXING) - target["d_fixing"]) < 0.1
    assert abs(result.fraction(FOTCategory.ERROR) - target["d_error"]) < 0.1
