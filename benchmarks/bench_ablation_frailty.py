"""Ablation — per-server frailty vs. homogeneous hazard.

Frailty (plus the lemon repeat chains) is what concentrates failures on
few servers.  With frailty ablated (sigma -> 0) the concentration curve
collapses toward uniform and Figure 7 cannot be reproduced.
"""


from benchmarks._shared import comparison, override_calibration, pct
from repro.analysis import concentration
from repro.config import paper_scenario
from repro.simulation.trace import generate_trace

ABLATION_SCALE = 0.08


def _trace_with_frailty(sigma: float):
    with override_calibration(FRAILTY_SIGMA=sigma):
        return generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=777))


def test_ablation_frailty(benchmark):
    baseline = _trace_with_frailty(1.5)
    ablated = benchmark.pedantic(
        _trace_with_frailty, args=(0.01,), rounds=1, iterations=1
    )
    base_curve = concentration.failure_concentration(baseline.dataset)
    flat_curve = concentration.failure_concentration(ablated.dataset)
    comparison(
        "ablation_frailty",
        [
            ("top 2 % share (frailty on)", "extreme skew",
             pct(base_curve.share_of_top(0.02))),
            ("top 2 % share (frailty off)", "-",
             pct(flat_curve.share_of_top(0.02))),
            ("gini (frailty on)", "-", f"{base_curve.gini:.3f}"),
            ("gini (frailty off)", "-", f"{flat_curve.gini:.3f}"),
        ],
        note="lemon chains remain in both runs; the drop shows how much "
             "of Fig 7 the hazard heterogeneity carries",
    )
    assert base_curve.gini > flat_curve.gini + 0.1
    assert base_curve.share_of_top(0.02) > flat_curve.share_of_top(0.02)
