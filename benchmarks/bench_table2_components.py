"""Table II — failure percentage breakdown by component class."""

from benchmarks._shared import comparison, pct
from repro.analysis import overview
from repro.simulation import calibration


def test_table2_components(benchmark, dataset):
    shares = benchmark(overview.components, dataset)
    rows = []
    for cls, paper_share in calibration.COMPONENT_MIX.items():
        rows.append((cls.value, pct(paper_share), pct(shares.get(cls, 0.0))))
    comparison("table2_components", rows)
    # The ranking's head must match the paper: HDD then miscellaneous.
    ranked = list(shares)
    assert ranked[0].value == "hdd"
    assert ranked[1].value == "miscellaneous"
    assert abs(shares[ranked[0]] - 0.8184) < 0.06
