"""Ablation — lazy/batched operators vs. prompt responders.

The long-RT regime of Figure 9 (MTTR of weeks, 10 % of tickets waiting
months) comes from the behaviour model: pool-review batching and the
fault-tolerance-breeds-laziness multiplier.  Ablating both yields the
short MTTRs earlier studies report — and shows the paper's point that
the RT is behavioural, not technical.
"""

from benchmarks._shared import comparison, override_calibration, pct
from repro.analysis import response
from repro.config import paper_scenario
from repro.core.types import FOTCategory
from repro.simulation.trace import generate_trace

ABLATION_SCALE = 0.08


def _prompt_operators_trace():
    with override_calibration(
        RT_BATCHING_BASE=0.0,
        RT_BATCHING_FT_GAIN=0.0,
        RT_FT_BASE=1.0,
        RT_FT_GAIN=0.0,
        TOP_LINE_REVIEW_DAYS=(0.0, 0.0),
    ):
        return generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=780))


def test_ablation_operators(benchmark):
    baseline = generate_trace(paper_scenario(scale=ABLATION_SCALE, seed=780))
    prompt = benchmark.pedantic(_prompt_operators_trace, rounds=1, iterations=1)

    lazy = response.rt_distribution(baseline.dataset, FOTCategory.FIXING)
    fast = response.rt_distribution(prompt.dataset, FOTCategory.FIXING)
    comparison(
        "ablation_operators",
        [
            ("median RT, lazy operators (days)", "6.1", f"{lazy.median_days:.1f}"),
            ("median RT, prompt operators (days)", "-", f"{fast.median_days:.1f}"),
            ("mean RT, lazy (days)", "42.2", f"{lazy.mean_days:.1f}"),
            ("mean RT, prompt (days)", "-", f"{fast.mean_days:.1f}"),
            ("RT > 140 d, lazy", pct(0.10), pct(lazy.tail_140d)),
            ("RT > 140 d, prompt", "-", pct(fast.tail_140d)),
        ],
        note="prompt = no pool batching, no fault-tolerance laziness "
             "multiplier, no long review cycles",
    )
    assert lazy.mean_days > 2 * fast.mean_days
    assert lazy.tail_140d > fast.tail_140d
