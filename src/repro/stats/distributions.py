"""Probability distributions with maximum-likelihood fitting.

Section II-B of the paper: *"we first estimate the parameters of the
fitting distributions through maximum likelihood estimation (MLE) and
then adopt Pearson's chi-squared test"*.  The candidate families the
paper names are uniform, exponential, Weibull, gamma and lognormal; all
five are implemented here with closed-form MLE where it exists and
Newton/bisection root-finding where it does not (Weibull and gamma
shapes).

Every distribution exposes ``pdf``, ``cdf``, ``ppf`` (inverse CDF, used
for equiprobable chi-squared binning), ``sample`` and a ``fit``
classmethod, plus ``n_params`` so goodness-of-fit tests can charge the
right degrees of freedom.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.stats.special import digamma, gammainc_lower, gammaln, normal_cdf


class FitError(ValueError):
    """Raised when MLE cannot be performed on the given sample."""


def _validate_positive_sample(data: np.ndarray, name: str) -> np.ndarray:
    data = np.asarray(data, dtype=float)
    if data.size < 2:
        raise FitError(f"{name} fit needs at least 2 observations")
    if np.any(~np.isfinite(data)):
        raise FitError(f"{name} fit requires finite observations")
    if np.any(data <= 0):
        raise FitError(f"{name} fit requires strictly positive observations")
    return data


class Distribution(abc.ABC):
    """Base class for the fitted distributions."""

    #: Number of free parameters estimated by ``fit`` — the chi-squared
    #: test subtracts this from the degrees of freedom.
    n_params: int = 0
    #: Family name used in reports and figure legends.
    name: str = "distribution"

    @abc.abstractmethod
    def pdf(self, x) -> np.ndarray:
        """Probability density at ``x``."""

    @abc.abstractmethod
    def cdf(self, x) -> np.ndarray:
        """Cumulative distribution function at ``x``."""

    @abc.abstractmethod
    def ppf(self, q) -> np.ndarray:
        """Inverse CDF (quantile function) at probability ``q``."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. samples."""

    @property
    @abc.abstractmethod
    def params(self) -> Dict[str, float]:
        """Fitted parameter values by name."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Distribution mean."""

    @classmethod
    @abc.abstractmethod
    def fit(cls, data) -> "Distribution":
        """Maximum-likelihood fit to a 1-D sample."""

    def log_likelihood(self, data) -> float:
        """Total log-likelihood of a sample under this distribution."""
        dens = self.pdf(np.asarray(data, dtype=float))
        if np.any(dens <= 0):
            return float("-inf")
        return float(np.sum(np.log(dens)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v:.6g}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


class Uniform(Distribution):
    """Continuous uniform distribution on ``[low, high]``."""

    name = "uniform"
    n_params = 2

    def __init__(self, low: float, high: float):
        if not high > low:
            raise ValueError(f"require high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return self.low + q * (self.high - self.low)

    def sample(self, size, rng):
        return rng.uniform(self.low, self.high, size)

    @property
    def params(self):
        return {"low": self.low, "high": self.high}

    @property
    def mean(self):
        return 0.5 * (self.low + self.high)

    @classmethod
    def fit(cls, data):
        data = np.asarray(data, dtype=float)
        if data.size < 2:
            raise FitError("uniform fit needs at least 2 observations")
        low, high = float(data.min()), float(data.max())
        if high == low:
            raise FitError("uniform fit requires non-degenerate sample")
        return cls(low, high)


class Exponential(Distribution):
    """Exponential distribution with rate ``lam`` (mean ``1/lam``)."""

    name = "exponential"
    n_params = 1

    def __init__(self, lam: float):
        if lam <= 0:
            raise ValueError(f"rate must be positive, got {lam}")
        self.lam = float(lam)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, self.lam * np.exp(-self.lam * x), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-self.lam * x), 0.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return -np.log1p(-q) / self.lam

    def sample(self, size, rng):
        return rng.exponential(1.0 / self.lam, size)

    @property
    def params(self):
        return {"lam": self.lam}

    @property
    def mean(self):
        return 1.0 / self.lam

    @classmethod
    def fit(cls, data):
        data = _validate_positive_sample(data, "exponential")
        return cls(1.0 / float(data.mean()))


class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``."""

    name = "weibull"
    n_params = 2

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be positive: {shape}, {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            z = np.where(x > 0, x / lam, 0.0)
            dens = (k / lam) * z ** (k - 1.0) * np.exp(-(z**k))
        return np.where(x > 0, dens, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        z = np.where(x > 0, x / self.scale, 0.0)
        return np.where(x > 0, 1.0 - np.exp(-(z**self.shape)), 0.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        return self.scale * (-np.log1p(-q)) ** (1.0 / self.shape)

    def sample(self, size, rng):
        return self.scale * rng.weibull(self.shape, size)

    @property
    def params(self):
        return {"shape": self.shape, "scale": self.scale}

    @property
    def mean(self):
        return self.scale * math.exp(float(gammaln(1.0 + 1.0 / self.shape)))

    @classmethod
    def fit(cls, data):
        data = _validate_positive_sample(data, "weibull")
        logs = np.log(data)
        mean_log = logs.mean()

        def profile(k: float) -> float:
            # d/dk of the profile log-likelihood; root gives the MLE shape.
            with np.errstate(over="ignore", invalid="ignore"):
                xk = data**k
                value = (xk * logs).sum() / xk.sum() - 1.0 / k - mean_log
            return float(value) if np.isfinite(value) else float("-inf")

        # ``profile`` is increasing in k; bracket the root then bisect.
        lo, hi = 1e-3, 1.0
        for _ in range(200):
            if profile(hi) > 0:
                break
            hi *= 2.0
        else:
            raise FitError("weibull shape bracket search failed")
        if profile(lo) > 0:
            raise FitError("weibull fit requires sample with spread")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if profile(mid) > 0:
                hi = mid
            else:
                lo = mid
            if hi - lo < 1e-10 * hi:
                break
        k = 0.5 * (lo + hi)
        scale = float((data**k).mean() ** (1.0 / k))
        return cls(k, scale)


class Gamma(Distribution):
    """Gamma distribution with shape ``k`` and scale ``theta``."""

    name = "gamma"
    n_params = 2

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be positive: {shape}, {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        k, theta = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            log_dens = (
                (k - 1.0) * np.log(np.where(x > 0, x, 1.0))
                - x / theta
                - k * np.log(theta)
                - gammaln(k)
            )
            dens = np.exp(log_dens)
        return np.where(x > 0, dens, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        positive = x > 0
        out = np.zeros_like(x, dtype=float)
        if positive.any():
            out[positive] = gammainc_lower(self.shape, x[positive] / self.scale)
        return out

    def ppf(self, q):
        # No closed form: bisection on the CDF over the whole quantile
        # batch at once (the CDF is vectorized, so 200 masked rounds beat
        # a Python loop over elements by orders of magnitude).
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q >= 1)):
            raise ValueError("gamma ppf requires 0 <= q < 1")
        out = np.zeros_like(q)
        pos = q > 0.0
        if pos.any():
            out[pos] = _bisect_ppf(
                self.cdf, q[pos], hi0=max(self.mean, self.scale)
            )
        return out if out.size > 1 else out[0]

    def sample(self, size, rng):
        return rng.gamma(self.shape, self.scale, size)

    @property
    def params(self):
        return {"shape": self.shape, "scale": self.scale}

    @property
    def mean(self):
        return self.shape * self.scale

    @classmethod
    def fit(cls, data):
        data = _validate_positive_sample(data, "gamma")
        mean = float(data.mean())
        s = math.log(mean) - float(np.log(data).mean())
        if s <= 1e-10:
            raise FitError("gamma fit requires sample with spread")
        # Minka's closed-form initialization, then Newton on
        # f(k) = ln k - psi(k) - s.
        k = (3.0 - s + math.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
        for _ in range(100):
            fk = math.log(k) - float(digamma(k)) - s
            # f'(k) = 1/k - psi'(k); approximate psi' by finite difference
            # of our digamma (accurate enough for Newton convergence).
            h = max(1e-6 * k, 1e-10)
            fprime = (
                (math.log(k + h) - float(digamma(k + h)))
                - (math.log(k - h) - float(digamma(k - h)))
            ) / (2.0 * h)
            if fprime == 0:
                break
            step = fk / fprime
            new_k = k - step
            if new_k <= 0:
                new_k = k / 2.0
            if abs(new_k - k) < 1e-12 * k:
                k = new_k
                break
            k = new_k
        return cls(k, mean / k)


class LogNormal(Distribution):
    """Lognormal distribution: ``ln X ~ Normal(mu, sigma)``."""

    name = "lognormal"
    n_params = 2

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            logx = np.log(np.where(x > 0, x, 1.0))
            dens = np.exp(-((logx - self.mu) ** 2) / (2.0 * self.sigma**2)) / (
                np.where(x > 0, x, 1.0) * self.sigma * np.sqrt(2.0 * np.pi)
            )
        return np.where(x > 0, dens, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        positive = x > 0
        if positive.any():
            out[positive] = normal_cdf(np.log(x[positive]), self.mu, self.sigma)
        return out

    def ppf(self, q):
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q >= 1)):
            raise ValueError("lognormal ppf requires 0 <= q < 1")
        out = np.zeros_like(q)
        pos = q > 0.0
        if pos.any():
            out[pos] = np.exp(self.mu + self.sigma * _normal_ppf(q[pos]))
        return out if out.size > 1 else out[0]

    def sample(self, size, rng):
        return rng.lognormal(self.mu, self.sigma, size)

    @property
    def params(self):
        return {"mu": self.mu, "sigma": self.sigma}

    @property
    def mean(self):
        return math.exp(self.mu + 0.5 * self.sigma**2)

    @classmethod
    def fit(cls, data):
        data = _validate_positive_sample(data, "lognormal")
        logs = np.log(data)
        sigma = float(logs.std())
        if sigma <= 1e-12 * max(1.0, abs(float(logs.mean()))):
            raise FitError("lognormal fit requires sample with spread")
        return cls(float(logs.mean()), sigma)


def _bisect_ppf(cdf, q: np.ndarray, *, hi0: float) -> np.ndarray:
    """Quantiles of a vectorized ``cdf`` on support ``[0, inf)`` by
    batched bisection: every element is bracketed by doubling and then
    refined together, with converged elements masked out."""
    hi = np.full_like(q, float(hi0))
    for _ in range(1024):
        short = cdf(hi) < q
        if not short.any():
            break
        hi[short] *= 2.0
        if np.any(hi > 1e300):  # pragma: no cover - numerical guard
            raise FitError("ppf failed to bracket quantile")
    lo = np.zeros_like(q)
    active = np.ones(q.shape, dtype=bool)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        less = cdf(mid) < q
        lo = np.where(active & less, mid, lo)
        hi = np.where(active & ~less, mid, hi)
        active = active & (hi - lo > 1e-12 * np.maximum(hi, 1.0))
        if not active.any():
            break
    return 0.5 * (lo + hi)


def _normal_ppf(q: np.ndarray) -> np.ndarray:
    """Standard normal quantiles by batched bisection on
    :func:`normal_cdf`."""
    q = np.asarray(q, dtype=float)
    lo = np.full_like(q, -40.0)
    hi = np.full_like(q, 40.0)
    active = np.ones(q.shape, dtype=bool)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        less = normal_cdf(mid) < q
        lo = np.where(active & less, mid, lo)
        hi = np.where(active & ~less, mid, hi)
        active = active & (hi - lo >= 1e-12)
        if not active.any():
            break
    return 0.5 * (lo + hi)


def _normal_ppf_scalar(q: float) -> float:
    """Standard normal quantile (scalar convenience wrapper)."""
    return float(_normal_ppf(np.asarray([q]))[0])


#: The families the paper tries to fit to TBF data (Section III-B).
TBF_FAMILIES: Tuple[type, ...] = (Exponential, Weibull, Gamma, LogNormal)


def fit_all(data, families: Sequence[type] = TBF_FAMILIES) -> Dict[str, Distribution]:
    """Fit every family that admits the sample; families whose MLE fails
    (e.g. a degenerate sample) are silently skipped.

    Returns a dict keyed by family name; may be empty.
    """
    fits: Dict[str, Distribution] = {}
    for family in families:
        try:
            fits[family.name] = family.fit(data)
        except FitError:
            continue
    return fits


__all__ = [
    "Distribution",
    "Uniform",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "FitError",
    "TBF_FAMILIES",
    "fit_all",
]
