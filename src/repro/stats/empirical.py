"""Empirical-distribution helpers: ECDF, quantiles, histogram profiles.

These back the figure-style outputs (CDF plots rendered as value/quantile
series) and the normalized "fraction of failures per facet" profiles of
Figures 3, 4 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ECDF:
    """Empirical cumulative distribution function of a 1-D sample.

    ``xs`` are the sorted unique sample values; ``ps`` the cumulative
    probability at each (right-continuous step function).
    """

    xs: np.ndarray
    ps: np.ndarray

    def __call__(self, x) -> np.ndarray:
        """Evaluate the ECDF at ``x`` (array-friendly)."""
        idx = np.searchsorted(self.xs, np.asarray(x, dtype=float), side="right")
        out = np.concatenate(([0.0], self.ps))[idx]
        return out

    def quantile(self, q: float) -> float:
        """Smallest sample value with cumulative probability >= q."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        idx = int(np.searchsorted(self.ps, q, side="left"))
        idx = min(idx, self.xs.size - 1)
        return float(self.xs[idx])

    def tail_fraction(self, threshold: float) -> float:
        """Fraction of the sample strictly above ``threshold``.

        The paper quotes tails like "10 % of FOTs have RT longer than
        140 days"; this is that number.
        """
        return float(1.0 - self(threshold))

    def series(self, n_points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """Downsampled (x, p) series for plotting/reporting."""
        if self.xs.size <= n_points:
            return self.xs.copy(), self.ps.copy()
        idx = np.unique(
            np.linspace(0, self.xs.size - 1, n_points).round().astype(int)
        )
        return self.xs[idx], self.ps[idx]


def ecdf(data: Sequence[float]) -> ECDF:
    """Build the ECDF of a sample."""
    data = np.asarray(data, dtype=float)
    if data.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    xs, counts = np.unique(data, return_counts=True)
    ps = np.cumsum(counts) / data.size
    return ECDF(xs=xs, ps=ps)


def quantile(data: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a sample."""
    data = np.asarray(data, dtype=float)
    if data.size == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    return float(np.quantile(data, q))


def fraction_profile(codes: Sequence[int], n_bins: int) -> np.ndarray:
    """Fraction of observations per integer facet ``0..n_bins-1``.

    This is the normalization used by Figures 3/4/8 ("we normalize the
    count to the total number of failures").
    """
    codes = np.asarray(codes, dtype=int)
    if codes.size == 0:
        raise ValueError("cannot profile an empty sample")
    if codes.min() < 0 or codes.max() >= n_bins:
        raise ValueError(
            f"facet codes must lie in [0, {n_bins}), got "
            f"[{codes.min()}, {codes.max()}]"
        )
    counts = np.bincount(codes, minlength=n_bins).astype(float)
    return counts / counts.sum()


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative values (0 = equal, → 1 = all
    mass on one unit).  Used to quantify Figure 7's failure
    concentration across servers."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ValueError("cannot compute gini of an empty sample")
    if np.any(values < 0):
        raise ValueError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1.0) / n)


__all__ = ["ECDF", "ecdf", "quantile", "fraction_profile", "gini"]
