"""The paper's five numbered hypotheses as reusable tests.

Each function takes a :class:`~repro.core.dataset.FOTDataset` (plus
whatever side information the hypothesis needs) and returns
:class:`~repro.stats.chisquare.ChiSquareResult` objects, so callers can
apply the paper's significance levels (0.01 / 0.02 / 0.05) or their own.

* Hypothesis 1 — failure counts uniform over days of the week.
* Hypothesis 2 — failure counts uniform over hours of the day.
* Hypothesis 3 — TBF of all components follows a given family.
* Hypothesis 4 — TBF of each component class follows a given family.
* Hypothesis 5 — failure rate independent of rack position.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.timeutil import day_of_week, hour_of_day
from repro.core.types import ComponentClass
from repro.stats.chisquare import ChiSquareResult, chi_square_counts, chi_square_fit
from repro.stats.distributions import Distribution, FitError, TBF_FAMILIES


def test_uniform_day_of_week(
    dataset: FOTDataset, *, exclude_weekends: bool = False
) -> ChiSquareResult:
    """Hypothesis 1: the average number of failures is uniformly random
    over the days of the week.

    With ``exclude_weekends`` the test is restricted to Monday–Friday —
    the paper's robustness check ("even if we exclude the weekends, a
    chi-square test still rejects at 0.02 significance").
    """
    dows = day_of_week(dataset.failures().error_times).astype(int)
    if exclude_weekends:
        dows = dows[dows < 5]
        n_bins = 5
        label = "failures uniform over weekdays (Mon-Fri)"
    else:
        n_bins = 7
        label = "failures uniform over days of the week"
    counts = np.bincount(dows, minlength=n_bins)
    return chi_square_counts(counts, hypothesis=label)


def test_uniform_hour_of_day(dataset: FOTDataset) -> ChiSquareResult:
    """Hypothesis 2: the average number of failures is uniformly random
    over the hours of the day."""
    hours = hour_of_day(dataset.failures().error_times).astype(int)
    counts = np.bincount(hours, minlength=24)
    return chi_square_counts(
        counts, hypothesis="failures uniform over hours of the day"
    )


def _tbf(dataset: FOTDataset) -> np.ndarray:
    """Strictly positive time-between-failure values, in seconds.

    Ties (several failures at the same timestamp — e.g. a batch) produce
    zero gaps; the continuous families are supported on (0, inf), so
    zeros are nudged to one second, preserving the "many tiny TBFs"
    signal the paper highlights rather than discarding it.
    """
    times = np.sort(dataset.failures().error_times)
    if times.size < 2:
        raise ValueError("need at least 2 failures to compute TBF")
    gaps = np.diff(times)
    return np.maximum(gaps, 1.0)


def test_tbf_family(
    dataset: FOTDataset,
    family: type,
    *,
    label: str = "",
    gaps: Optional[np.ndarray] = None,
) -> ChiSquareResult:
    """Hypothesis 3 for one family: TBF of all components in the dataset
    follows ``family`` (parameters MLE-fitted first, per Section II-B).

    Raises :class:`~repro.stats.distributions.FitError` when the family
    cannot be fitted to the sample at all.  Pass precomputed ``gaps``
    (as from :func:`_tbf`) to test several families without re-deriving
    the sample each time.
    """
    if gaps is None:
        gaps = _tbf(dataset)
    dist: Distribution = family.fit(gaps)
    return chi_square_fit(
        gaps,
        dist,
        hypothesis=label or f"TBF ~ {family.name}",
    )


def test_tbf_all_families(
    dataset: FOTDataset,
    families: Sequence[type] = TBF_FAMILIES,
) -> Dict[str, ChiSquareResult]:
    """Hypothesis 3 across every candidate family; families whose MLE
    fails on this sample are skipped.  The TBF sample is derived once
    and shared across the family fits."""
    results: Dict[str, ChiSquareResult] = {}
    try:
        gaps = _tbf(dataset)
    except ValueError:
        return results
    for family in families:
        try:
            results[family.name] = test_tbf_family(dataset, family, gaps=gaps)
        except (FitError, ValueError):
            continue
    return results


def test_tbf_per_component(
    dataset: FOTDataset,
    families: Sequence[type] = TBF_FAMILIES,
    *,
    min_failures: int = 100,
) -> Dict[ComponentClass, Dict[str, ChiSquareResult]]:
    """Hypothesis 4: per-component-class TBF against every family.

    Classes with fewer than ``min_failures`` failures are skipped —
    matching the paper's practice of drawing conclusions only where the
    counts are statistically meaningful.
    """
    out: Dict[ComponentClass, Dict[str, ChiSquareResult]] = {}
    for component, subset in dataset.failures().by_component().items():
        if len(subset) < min_failures:
            continue
        results = test_tbf_all_families(subset, families)
        if results:
            out[component] = results
    return out


def test_tbf_per_product_line(
    dataset: FOTDataset,
    families: Sequence[type] = TBF_FAMILIES,
    *,
    min_failures: int = 500,
) -> Dict[str, Dict[str, ChiSquareResult]]:
    """The paper's product-line breakdown of Hypothesis 4: "We also
    break down the failure by product lines.  All the results are
    similar" — every family still rejected for every line with enough
    volume."""
    out: Dict[str, Dict[str, ChiSquareResult]] = {}
    for line, subset in dataset.failures().by_product_line().items():
        if len(subset) < min_failures:
            continue
        results = test_tbf_all_families(subset, families)
        if results:
            out[line] = results
    return out


def test_rack_position_uniform(
    dataset: FOTDataset,
    *,
    servers_per_position: Optional[Sequence[float]] = None,
    n_positions: Optional[int] = None,
) -> ChiSquareResult:
    """Hypothesis 5: the failure rate at each rack position is
    independent of the position.

    The paper normalizes by the number of servers at each position
    (operators leave top/bottom slots empty); pass that occupancy via
    ``servers_per_position`` and the expected failure probability per
    slot becomes proportional to its server count.  Without it the test
    assumes equal occupancy.  Repeating failures should be filtered out
    by the caller (see :func:`repro.analysis.spatial.rack_position_tests`).
    """
    failures = dataset.failures()
    positions = failures.positions
    if positions.size == 0:
        raise ValueError("no failures to test")
    if n_positions is None:
        n_positions = int(positions.max()) + 1
    counts = np.bincount(positions, minlength=n_positions).astype(float)

    if servers_per_position is not None:
        weights = np.asarray(servers_per_position, dtype=float)
        if weights.size < n_positions:
            raise ValueError(
                f"servers_per_position covers {weights.size} slots, "
                f"failures reference {n_positions}"
            )
        weights = weights[:n_positions]
        occupied = weights > 0
        if np.any(counts[~occupied] > 0):
            raise ValueError("failures reported at positions with zero servers")
        counts = counts[occupied]
        probs = weights[occupied] / weights[occupied].sum()
    else:
        probs = None

    return chi_square_counts(
        counts,
        probs,
        hypothesis="failure rate independent of rack position",
    )


__all__ = [
    "test_uniform_day_of_week",
    "test_uniform_hour_of_day",
    "test_tbf_family",
    "test_tbf_all_families",
    "test_tbf_per_component",
    "test_tbf_per_product_line",
    "test_rack_position_uniform",
]
