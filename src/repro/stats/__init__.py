"""Statistics substrate used by the paper's analyses.

Everything the paper's methodology section (II-B) needs is implemented
here from first principles:

* :mod:`repro.stats.special` — log-gamma, regularized incomplete gamma,
  erf, digamma (no dependency on scipy; tests cross-check against it).
* :mod:`repro.stats.distributions` — uniform, exponential, Weibull,
  gamma and lognormal distributions with maximum-likelihood fitting.
* :mod:`repro.stats.chisquare` — Pearson's chi-squared goodness-of-fit
  test, for discrete counts and for continuous samples against a fitted
  distribution.
* :mod:`repro.stats.empirical` — ECDF, quantiles and binning helpers.
* :mod:`repro.stats.hypotheses` — the five numbered hypotheses the paper
  tests, as reusable functions over any FOT dataset.
"""

from repro.stats.distributions import (
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    Uniform,
    Weibull,
    fit_all,
)
from repro.stats.chisquare import (
    ChiSquareResult,
    chi_square_counts,
    chi_square_fit,
)
from repro.stats.empirical import ecdf, quantile
from repro.stats import special, hypotheses, ks, bootstrap, dispersion

__all__ = [
    "Distribution",
    "Uniform",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "fit_all",
    "ChiSquareResult",
    "chi_square_counts",
    "chi_square_fit",
    "ecdf",
    "quantile",
    "special",
    "hypotheses",
    "ks",
    "bootstrap",
    "dispersion",
]
