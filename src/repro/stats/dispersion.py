"""Index-of-dispersion test for count series.

The paper's Table V observation — batch days are *common* — is
equivalent to saying daily failure counts are overdispersed relative to
Poisson.  The classical test: for counts ``n_1..n_D`` with mean ``m``,
the statistic ``sum (n_i - m)^2 / m`` is chi-squared with ``D - 1``
degrees of freedom under the Poisson null, and the index of dispersion
``variance / mean`` is 1.  This module provides both, so analyses and
ablation benches can report "dispersion 19.7, Poisson rejected" instead
of eyeballing spiky plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.special import chi2_sf


@dataclass(frozen=True)
class DispersionResult:
    """Outcome of the index-of-dispersion test."""

    index: float
    statistic: float
    df: int
    p_value: float
    n: int
    mean: float

    @property
    def overdispersed(self) -> bool:
        """Poisson rejected *upward* (more variance than Poisson) at
        the 0.01 level."""
        return self.index > 1.0 and self.p_value < 0.01

    def reject_poisson_at(self, alpha: float) -> bool:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"dispersion={self.index:.2f}, chi2={self.statistic:.1f}, "
            f"df={self.df}, p={self.p_value:.3g}"
        )


def dispersion_test(counts: Sequence[float]) -> DispersionResult:
    """Test a count series against the Poisson null.

    The reported ``p_value`` is the upper tail (overdispersion); a
    series *under*-dispersed relative to Poisson gets p close to 1.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size < 2:
        raise ValueError("need a 1-D series of at least 2 counts")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    mean = float(counts.mean())
    if mean == 0:
        raise ValueError("cannot test an all-zero series")
    statistic = float(((counts - mean) ** 2).sum() / mean)
    df = counts.size - 1
    variance = float(counts.var(ddof=1)) if counts.size > 1 else 0.0
    return DispersionResult(
        index=variance / mean,
        statistic=statistic,
        df=df,
        p_value=float(chi2_sf(statistic, df)),
        n=int(counts.size),
        mean=mean,
    )


__all__ = ["DispersionResult", "dispersion_test"]
