"""Special functions implemented from first principles.

The distribution fits and chi-squared tests need the log-gamma function,
the regularized incomplete gamma functions, the error function and the
digamma function.  To keep the statistics substrate self-contained (the
library's only hard dependency is numpy) they are implemented here:

* ``gammaln`` — Lanczos approximation (g = 7, 9 coefficients).
* ``gammainc_lower`` / ``gammainc_upper`` — power series for
  ``x < a + 1``, Lentz continued fraction otherwise.
* ``erf`` — Abramowitz & Stegun 7.1.26 rational approximation refined
  with the incomplete-gamma identity ``erf(x) = P(1/2, x²)``.
* ``digamma`` — recurrence to push the argument above 6, then the
  asymptotic series.

All functions accept scalars or numpy arrays and are validated against
scipy in the test suite to ≤ 1e-10 relative error on their domains.
"""

from __future__ import annotations

import numpy as np

# Lanczos coefficients for g = 7, n = 9 (Numerical Recipes / Boost).
_LANCZOS_G = 7.0
_LANCZOS_COEFFS = np.array(
    [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ]
)

_MAX_ITER = 500
_EPS = 1e-15


def gammaln(x):
    """Natural log of the absolute value of the gamma function.

    Defined for positive arguments (all callers in this package pass
    shape parameters or half-degrees-of-freedom, which are > 0).
    """
    x = np.asarray(x, dtype=float)
    if np.any(x <= 0):
        raise ValueError("gammaln requires positive arguments")
    scalar = x.ndim == 0
    x = np.atleast_1d(x)

    # Lanczos computes log Gamma(z) for z >= 0.5; use the reflection-free
    # shift Gamma(z) = Gamma(z + 1) / z for smaller arguments.
    shift = np.where(x < 0.5, 1.0, 0.0)
    z = x + shift

    zz = z - 1.0
    series = np.full_like(zz, _LANCZOS_COEFFS[0])
    for i in range(1, len(_LANCZOS_COEFFS)):
        series = series + _LANCZOS_COEFFS[i] / (zz + i)
    t = zz + _LANCZOS_G + 0.5
    out = 0.5 * np.log(2.0 * np.pi) + (zz + 0.5) * np.log(t) - t + np.log(series)
    out = out - np.where(shift > 0, np.log(x), 0.0)
    return out[0] if scalar else out


def _gser(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Lower incomplete gamma P(a, x) by power series (x < a + 1),
    vectorized with a per-element convergence mask."""
    ap = a.astype(float).copy()
    term = 1.0 / a
    total = term.copy()
    active = x > 0.0
    for _ in range(_MAX_ITER):
        if not active.any():
            break
        ap[active] += 1.0
        term[active] *= x[active] / ap[active]
        total[active] += term[active]
        active = active & (np.abs(term) >= np.abs(total) * _EPS)
    return total * np.exp(-x + a * np.log(np.where(x > 0, x, 1.0)) - gammaln(a))


def _gcf(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Upper incomplete gamma Q(a, x) by Lentz continued fraction
    (x >= a + 1), vectorized with a per-element convergence mask."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = np.full_like(b, 1.0 / tiny)
    d = 1.0 / b
    h = d.copy()
    active = np.ones(b.shape, dtype=bool)
    for i in range(1, _MAX_ITER + 1):
        if not active.any():
            break
        an = -i * (i - a)
        b = b + 2.0
        d = an * d + b
        d = np.where(np.abs(d) < tiny, tiny, d)
        c = b + an / c
        c = np.where(np.abs(c) < tiny, tiny, c)
        d = 1.0 / d
        delta = d * c
        h = np.where(active, h * delta, h)
        active = active & (np.abs(delta - 1.0) >= _EPS)
    return h * np.exp(-x + a * np.log(x) - gammaln(a))


def gammainc_lower(a, x):
    """Regularized lower incomplete gamma function ``P(a, x)``,
    fully vectorized: series elements (``x < a + 1``) and continued-
    fraction elements are iterated as masked batches."""
    a_arr = np.asarray(a, dtype=float)
    x_arr = np.asarray(x, dtype=float)
    if np.any(x_arr < 0.0):
        raise ValueError("gammainc requires x >= 0")
    if np.any(a_arr <= 0.0):
        raise ValueError("gammainc requires a > 0")
    scalar = a_arr.ndim == 0 and x_arr.ndim == 0
    a_b, x_b = np.broadcast_arrays(np.atleast_1d(a_arr), np.atleast_1d(x_arr))
    out = np.zeros(a_b.shape, dtype=float)
    series = (x_b > 0.0) & (x_b < a_b + 1.0)
    if series.any():
        out[series] = np.minimum(1.0, _gser(a_b[series], x_b[series]))
    tail = x_b >= a_b + 1.0
    if tail.any():
        out[tail] = np.maximum(0.0, 1.0 - _gcf(a_b[tail], x_b[tail]))
    return float(out.ravel()[0]) if scalar else out


def gammainc_upper(a, x):
    """Regularized upper incomplete gamma function ``Q(a, x) = 1 - P``."""
    return 1.0 - gammainc_lower(a, x)


def erf(x):
    """Error function via the identity ``erf(x) = sign(x) P(1/2, x²)``."""
    x = np.asarray(x, dtype=float)
    scalar = x.ndim == 0
    x = np.atleast_1d(x)
    out = np.sign(x) * gammainc_lower(0.5, x * x)
    return float(out[0]) if scalar else out


def normal_cdf(x, mean=0.0, std=1.0):
    """Standard-normal CDF built on :func:`erf`."""
    z = (np.asarray(x, dtype=float) - mean) / (std * np.sqrt(2.0))
    return 0.5 * (1.0 + erf(z))


def chi2_sf(x, df):
    """Survival function of the chi-squared distribution:
    ``P[X > x] = Q(df/2, x/2)``."""
    x = np.asarray(x, dtype=float)
    if np.any(x < 0):
        raise ValueError("chi-squared statistic must be >= 0")
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    return gammainc_upper(df / 2.0, x / 2.0)


def digamma(x):
    """Digamma (psi) function for positive arguments.

    Uses the recurrence ``psi(x) = psi(x + 1) - 1/x`` to push the
    argument above 6, then the asymptotic expansion.
    """
    x = np.asarray(x, dtype=float)
    if np.any(x <= 0):
        raise ValueError("digamma requires positive arguments")
    scalar = x.ndim == 0
    x = np.atleast_1d(x).astype(float).copy()

    result = np.zeros_like(x)
    # Recurrence: accumulate -1/x terms until x >= 6.
    for _ in range(8):
        small = x < 6.0
        if not small.any():
            break
        result[small] -= 1.0 / x[small]
        x[small] += 1.0

    inv = 1.0 / x
    inv2 = inv * inv
    # Asymptotic series: ln x - 1/(2x) - sum B_2n / (2n x^{2n}).
    result += (
        np.log(x)
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
    )
    return float(result[0]) if scalar else result


__all__ = [
    "gammaln",
    "gammainc_lower",
    "gammainc_upper",
    "erf",
    "normal_cdf",
    "chi2_sf",
    "digamma",
]
