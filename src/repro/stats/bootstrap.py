"""Bootstrap confidence intervals for the headline statistics.

The paper reports point estimates (median RT 6.1 days, HDD share
81.84 %, ...).  When comparing a reproduction — or a different fleet —
against those numbers, an uncertainty band is needed to tell signal from
sampling noise; this module provides percentile-bootstrap intervals for
arbitrary statistics of a sample, plus ready-made helpers for the two
shapes that dominate the paper (fractions and quantiles of heavy-tailed
data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        """Whether a reference value (e.g. the paper's number) lies
        inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.4g} "
            f"[{self.lower:.4g}, {self.upper:.4g}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_ci(
    data: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Percentile bootstrap for an arbitrary statistic of a 1-D sample."""
    data = np.asarray(data, dtype=float)
    if data.size < 2:
        raise ValueError("bootstrap needs at least 2 observations")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValueError("n_resamples must be at least 10")
    rng = rng or np.random.default_rng(0)

    estimate = float(statistic(data))
    stats = np.empty(n_resamples)
    n = data.size
    for i in range(n_resamples):
        resample = data[rng.integers(0, n, size=n)]
        stats[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=estimate,
        lower=float(np.quantile(stats, alpha)),
        upper=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def median_ci(
    data: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Bootstrap CI for the median — the paper's preferred location
    statistic for the heavy-tailed RT distributions."""
    return bootstrap_ci(
        data, lambda x: float(np.median(x)),
        confidence=confidence, n_resamples=n_resamples, rng=rng,
    )


def mean_ci(
    data: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Bootstrap CI for the mean (MTTR-style statistics)."""
    return bootstrap_ci(
        data, lambda x: float(x.mean()),
        confidence=confidence, n_resamples=n_resamples, rng=rng,
    )


def fraction_ci(
    successes: int,
    total: int,
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Bootstrap CI for a share (Table I/II-style fractions)."""
    if not 0 <= successes <= total:
        raise ValueError(f"need 0 <= successes <= total, got {successes}/{total}")
    if total < 2:
        raise ValueError("fraction CI needs total >= 2")
    data = np.zeros(total)
    data[:successes] = 1.0
    return bootstrap_ci(
        data, lambda x: float(x.mean()),
        confidence=confidence, n_resamples=n_resamples, rng=rng,
    )


__all__ = ["BootstrapCI", "bootstrap_ci", "median_ci", "mean_ci", "fraction_ci"]
