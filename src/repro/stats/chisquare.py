"""Pearson's chi-squared goodness-of-fit test.

Two entry points, matching the two ways the paper uses the test:

* :func:`chi_square_counts` — observed category counts against expected
  probabilities (Hypotheses 1, 2 and 5: day-of-week, hour-of-day and
  rack-position uniformity).
* :func:`chi_square_fit` — a continuous sample against a fitted
  distribution (Hypotheses 3 and 4: TBF vs exponential/Weibull/gamma/
  lognormal), using equiprobable bins from the fitted quantile function
  and charging degrees of freedom for the estimated parameters.

Low-expected-count bins are pooled (the usual "expected >= 5" rule) so
the chi-squared approximation stays valid on skewed data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.distributions import Distribution
from repro.stats.special import chi2_sf

#: Conventional minimum expected count per bin for the chi-squared
#: approximation to hold.
MIN_EXPECTED = 5.0


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of one Pearson chi-squared test.

    Attributes:
        statistic: The chi-squared statistic.
        df: Degrees of freedom after pooling and parameter charges.
        p_value: Right-tail probability of the statistic.
        n: Total observation count.
        bins: Number of bins actually used (after pooling).
        hypothesis: Human-readable description of the null hypothesis.
    """

    statistic: float
    df: int
    p_value: float
    n: int
    bins: int
    hypothesis: str = ""

    def reject_at(self, alpha: float) -> bool:
        """True when the null hypothesis is rejected at level ``alpha``."""
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"chi2={self.statistic:.2f}, df={self.df}, p={self.p_value:.4g} "
            f"(n={self.n}, bins={self.bins})"
        )


def _pool_low_expected(
    observed: np.ndarray, expected: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge adjacent bins until every expected count is >= MIN_EXPECTED.

    Pooling scans left to right accumulating bins; a trailing underweight
    remainder is merged into the last kept bin.
    """
    pooled_obs, pooled_exp = [], []
    acc_obs = acc_exp = 0.0
    for o, e in zip(observed, expected):
        acc_obs += o
        acc_exp += e
        if acc_exp >= MIN_EXPECTED:
            pooled_obs.append(acc_obs)
            pooled_exp.append(acc_exp)
            acc_obs = acc_exp = 0.0
    if acc_exp > 0:
        if pooled_exp:
            pooled_obs[-1] += acc_obs
            pooled_exp[-1] += acc_exp
        else:
            pooled_obs.append(acc_obs)
            pooled_exp.append(acc_exp)
    return np.asarray(pooled_obs, dtype=float), np.asarray(pooled_exp, dtype=float)


def chi_square_counts(
    observed: Sequence[float],
    expected_probs: Optional[Sequence[float]] = None,
    *,
    n_estimated_params: int = 0,
    hypothesis: str = "",
    pool: bool = True,
) -> ChiSquareResult:
    """Test observed category counts against expected probabilities.

    Args:
        observed: Count per category.
        expected_probs: Probability per category under the null; defaults
            to the uniform distribution over the categories.
        n_estimated_params: Parameters estimated from the data (charged
            against the degrees of freedom).
        hypothesis: Description stored on the result.
        pool: Pool adjacent bins whose expected count is below 5.
    """
    observed = np.asarray(observed, dtype=float)
    if observed.ndim != 1 or observed.size < 2:
        raise ValueError("observed must be a 1-D array of >= 2 category counts")
    if np.any(observed < 0):
        raise ValueError("observed counts must be non-negative")
    total = float(observed.sum())
    if total <= 0:
        raise ValueError("observed counts sum to zero")

    if expected_probs is None:
        probs = np.full(observed.size, 1.0 / observed.size)
    else:
        probs = np.asarray(expected_probs, dtype=float)
        if probs.shape != observed.shape:
            raise ValueError("expected_probs shape must match observed")
        if np.any(probs < 0):
            raise ValueError("expected probabilities must be non-negative")
        psum = probs.sum()
        if psum <= 0:
            raise ValueError("expected probabilities sum to zero")
        probs = probs / psum

    expected = probs * total
    if pool:
        observed, expected = _pool_low_expected(observed, expected)
    if observed.size < 2:
        raise ValueError("not enough data: pooling left fewer than 2 bins")

    statistic = float(((observed - expected) ** 2 / expected).sum())
    df = observed.size - 1 - n_estimated_params
    if df < 1:
        raise ValueError(
            f"degrees of freedom must be >= 1 (bins={observed.size}, "
            f"params={n_estimated_params})"
        )
    return ChiSquareResult(
        statistic=statistic,
        df=df,
        p_value=float(chi2_sf(statistic, df)),
        n=int(round(total)),
        bins=observed.size,
        hypothesis=hypothesis,
    )


def chi_square_fit(
    data: Sequence[float],
    dist: Distribution,
    *,
    n_bins: int = 0,
    hypothesis: str = "",
) -> ChiSquareResult:
    """Test a continuous sample against a fitted distribution.

    Bins are equiprobable under ``dist`` (built from its quantile
    function), so every bin has the same expected count and the test is
    insensitive to the heavy tails that dominate TBF data.

    Args:
        data: The sample.
        dist: A fitted distribution; its ``n_params`` is charged against
            the degrees of freedom (the usual practice when parameters
            are MLE-estimated from the same sample).
        n_bins: Number of equiprobable bins; default ``max(10, n/50)``
            capped at 100.
    """
    data = np.asarray(data, dtype=float)
    if data.size < 10:
        raise ValueError("chi-squared fit test needs at least 10 observations")
    n = data.size
    if n_bins <= 0:
        n_bins = int(min(100, max(10, n // 50)))
    # Need expected counts >= MIN_EXPECTED per bin.
    n_bins = min(n_bins, max(2, int(n / MIN_EXPECTED)))

    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.concatenate(([-np.inf], np.atleast_1d(dist.ppf(qs)), [np.inf]))
    observed = np.histogram(data, bins=edges)[0].astype(float)
    expected = np.full(n_bins, n / n_bins)

    observed, expected = _pool_low_expected(observed, expected)
    statistic = float(((observed - expected) ** 2 / expected).sum())
    df = observed.size - 1 - dist.n_params
    if df < 1:
        raise ValueError("not enough bins after pooling for the parameter charge")
    return ChiSquareResult(
        statistic=statistic,
        df=df,
        p_value=float(chi2_sf(statistic, df)),
        n=n,
        bins=observed.size,
        hypothesis=hypothesis or f"data ~ {dist!r}",
    )


__all__ = ["ChiSquareResult", "chi_square_counts", "chi_square_fit", "MIN_EXPECTED"]
