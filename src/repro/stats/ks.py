"""Kolmogorov-Smirnov goodness-of-fit test.

The chi-squared test of Section II-B is the paper's primary instrument,
but the studies it builds on (Schroeder & Gibson's FAST'07 / TDSC'10
work) also report KS statistics, so the toolkit carries both.  The
implementation is self-contained: the one-sample statistic is exact, and
the p-value uses the asymptotic Kolmogorov distribution with the
Marsaglia-Tsang-Wang effective sample size correction.

As with the chi-squared path, parameters fitted from the same sample
make the nominal p-value optimistic; callers comparing families should
rely on the statistic's ordering (smaller = closer), which is how
:func:`best_fit` ranks candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.stats.distributions import Distribution, FitError


@dataclass(frozen=True)
class KSResult:
    """One-sample KS test outcome."""

    statistic: float
    p_value: float
    n: int
    hypothesis: str = ""

    def reject_at(self, alpha: float) -> bool:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"D={self.statistic:.4f}, p={self.p_value:.4g} (n={self.n})"


def kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution,
    ``P[K > x] = 2 sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2)``."""
    if x <= 0:
        return 1.0
    if x > 8.0:
        return 0.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def ks_statistic(data: Sequence[float], dist: Distribution) -> float:
    """The sup-distance between the ECDF and the fitted CDF."""
    data = np.sort(np.asarray(data, dtype=float))
    n = data.size
    if n < 2:
        raise ValueError("KS test needs at least 2 observations")
    cdf = np.asarray(dist.cdf(data), dtype=float)
    upper = np.arange(1, n + 1) / n - cdf
    lower = cdf - np.arange(0, n) / n
    return float(max(upper.max(), lower.max()))


def ks_test(
    data: Sequence[float], dist: Distribution, hypothesis: str = ""
) -> KSResult:
    """One-sample KS test of ``data`` against a (fitted) distribution."""
    data = np.asarray(data, dtype=float)
    d = ks_statistic(data, dist)
    n = data.size
    # Effective-n correction for the asymptotic distribution.
    en = math.sqrt(n)
    p = kolmogorov_sf(d * (en + 0.12 + 0.11 / en))
    return KSResult(
        statistic=d,
        p_value=p,
        n=int(n),
        hypothesis=hypothesis or f"data ~ {dist!r}",
    )


def ks_all_families(
    data: Sequence[float], families: Sequence[type]
) -> Dict[str, KSResult]:
    """Fit and KS-test every family that admits the sample."""
    out: Dict[str, KSResult] = {}
    for family in families:
        try:
            dist = family.fit(data)
        except FitError:
            continue
        out[family.name] = ks_test(data, dist)
    return out


def best_fit(
    data: Sequence[float], families: Sequence[type]
) -> Optional[str]:
    """Family name with the smallest KS distance, or ``None`` when no
    family admits the sample.

    Even when everything is *rejected* (the paper's TBF situation), the
    ordering still says which family is least wrong — useful when a
    downstream model simply needs the closest parametric stand-in.
    """
    results = ks_all_families(data, families)
    if not results:
        return None
    return min(results, key=lambda name: results[name].statistic)


__all__ = [
    "KSResult",
    "kolmogorov_sf",
    "ks_statistic",
    "ks_test",
    "ks_all_families",
    "best_fit",
]
