"""Retry-with-jittered-exponential-backoff for transient append failures.

The append path can fail transiently (a compaction racing a disk-cache
write, a reader holding the store briefly).  :func:`retry_async` retries
a coroutine factory under a :class:`~repro.serve.config.RetryPolicy`,
sleeping ``min(base * 2**i, max)`` scaled by uniform jitter between
tries.  The sleep function and the jitter RNG are injectable so tests
and the soak bench stay deterministic and fast.
"""

from __future__ import annotations

import asyncio
import random
from typing import Awaitable, Callable, Optional, Tuple, Type, TypeVar

from repro.serve.config import RetryPolicy

T = TypeVar("T")


class RetryExhaustedError(RuntimeError):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"gave up after {attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


async def retry_async(
    attempt: Callable[[], Awaitable[T]],
    policy: RetryPolicy,
    *,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Optional[Callable[[float], Awaitable[None]]] = None,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Run ``attempt()`` until it succeeds or the policy is exhausted.

    Args:
        attempt: coroutine factory, re-invoked per try.
        retry_on: exception types worth retrying; anything else
            propagates immediately (a poison batch never becomes
            acceptable by waiting).
        sleep: awaitable sleeper (defaults to :func:`asyncio.sleep`).
        rng: jitter source (defaults to a fresh unseeded ``Random``).
        on_retry: ``(attempt_index, error, delay)`` callback fired
            before each backoff sleep — the router counts retries here.

    Raises:
        RetryExhaustedError: once ``policy.attempts`` tries all failed.
    """
    do_sleep = sleep if sleep is not None else asyncio.sleep
    jitter_rng = rng if rng is not None else random.Random()
    last_error: Optional[BaseException] = None
    for index in range(policy.attempts):
        try:
            return await attempt()
        except retry_on as exc:
            last_error = exc
            if index + 1 >= policy.attempts:
                break
            delay = policy.delay(index, jitter_rng.random())
            if on_retry is not None:
                on_retry(index, exc, delay)
            await do_sleep(delay)
    assert last_error is not None
    raise RetryExhaustedError(policy.attempts, last_error)


__all__ = ["RetryExhaustedError", "retry_async"]
