"""Tunables for the streaming ingestion service.

One frozen dataclass holds every production knob of :mod:`repro.serve`:
queue sizing (backpressure), per-source circuit-breaker thresholds,
retry/backoff policy for transient append failures, batch validation
limits (oversize / poison thresholds), the validation timeout, and the
dead-letter location.  The defaults are sized for the soak bench
(~500-ticket batches at millions of tickets/hour); DESIGN.md's
"Ingestion service" section documents how to resize them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient append failures.

    Attempt ``i`` (0-based) sleeps ``min(base * 2**i, max_delay)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.  ``attempts`` counts *tries*, so
    ``attempts=3`` means one initial try plus two retries.
    """

    attempts: int = 3
    base_seconds: float = 0.05
    max_seconds: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_seconds < 0 or self.max_seconds < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, uniform: float) -> float:
        """Backoff before retrying after 0-based try ``attempt``;
        ``uniform`` is a draw from [0, 1)."""
        raw = min(self.base_seconds * (2.0 ** attempt), self.max_seconds)
        scale = 1.0 - self.jitter + 2.0 * self.jitter * uniform
        return raw * scale


@dataclass(frozen=True)
class BreakerConfig:
    """Per-source circuit-breaker thresholds.

    ``failure_threshold`` consecutive batch failures open the breaker;
    after ``reset_seconds`` it lets ``half_open_probes`` batches through
    (half-open).  A probe success closes it, a probe failure re-opens.
    """

    failure_threshold: int = 5
    reset_seconds: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_seconds < 0:
            raise ValueError("reset_seconds must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass(frozen=True)
class ServeConfig:
    """Everything the ingestion router needs to know.

    Args:
        queue_high_watermark: max queued batches; ``submit`` raises
            :class:`~repro.serve.queue.QueueFullError` (HTTP 429) above it.
        max_batch_tickets: batches larger than this are dead-lettered
            unparsed (``oversized`` poison class).
        poison_skip_fraction: a batch whose quarantine skips exceed this
            fraction of its lines is rejected whole (``dirty`` poison
            class) instead of partially appended.
        validate_timeout_seconds: wall-clock budget for validating one
            batch (runs off the event loop; slow-loris protection).
        compact_threshold_tickets: pending appends are merged into the
            base column store once they exceed this many tickets, so
            per-batch append cost stays O(batch), not O(store).
        refresh_interval_batches: recompute the headline report through
            the analysis cache every N accepted batches (0 disables).
        dead_letter_dir: where poison batches land; ``None`` keeps them
            in memory only (tests).
    """

    queue_high_watermark: int = 64
    max_batch_tickets: int = 10_000
    poison_skip_fraction: float = 0.5
    validate_timeout_seconds: float = 10.0
    request_read_timeout_seconds: float = 5.0
    compact_threshold_tickets: int = 65_536
    refresh_interval_batches: int = 0
    dead_letter_dir: Optional[Path] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.queue_high_watermark < 1:
            raise ValueError("queue_high_watermark must be >= 1")
        if self.max_batch_tickets < 1:
            raise ValueError("max_batch_tickets must be >= 1")
        if not 0.0 <= self.poison_skip_fraction <= 1.0:
            raise ValueError("poison_skip_fraction must be in [0, 1]")
        if self.validate_timeout_seconds <= 0:
            raise ValueError("validate_timeout_seconds must be > 0")
        if self.request_read_timeout_seconds <= 0:
            raise ValueError("request_read_timeout_seconds must be > 0")
        if self.compact_threshold_tickets < 1:
            raise ValueError("compact_threshold_tickets must be >= 1")
        if self.refresh_interval_batches < 0:
            raise ValueError("refresh_interval_batches must be >= 0")


__all__ = ["RetryPolicy", "BreakerConfig", "ServeConfig"]
