"""The asyncio ticket-ingestion router.

One :class:`IngestRouter` owns the whole streaming pipeline::

    submit(source, records)        # sync, raises on backpressure/breaker
        -> bounded IngestQueue     # QueueFullError once the watermark hits
        -> worker task             # single consumer, append order = arrival
           validate (executor,     # batch-granular quarantine with a real
                     timeout)      #   wall-clock budget (slow-loris guard)
           append (retry+jitter)   # transient failures retried with backoff
           refresh (every N)       # headline report recomputed through the
                                   #   AnalysisCache over the live snapshot
        -> LiveDataset             # amortized compaction, cache invalidation
        -> DeadLetterStore         # every rejected batch parked, replayable

Accounting invariant (asserted by the soak bench and the observability
tests): every submitted ticket that enters the queue ends up in exactly
one of ``tickets_accepted``, ``tickets_quarantined`` or
``tickets_dead_lettered`` — nothing is ever silently dropped.

The clock, retry RNG and sleep function are injectable, so breaker
timing and backoff behavior are fully deterministic under test.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

from repro.analysis.full_report import full_report
from repro.core.dataset import FOTDataset
from repro.engine.cache import AnalysisCache
from repro.engine.telemetry import (
    KIND_REPORT,
    InMemoryTelemetrySink,
    RunTelemetry,
    StageTiming,
)
from repro.robustness.batch import (
    POISON_DIRTY,
    POISON_OVERSIZED,
    POISON_STRUCTURAL,
    BatchValidation,
    validate_batch,
)
from repro.serve.breaker import BreakerBoard, BreakerOpenError
from repro.serve.config import ServeConfig
from repro.serve.deadletter import (
    REASON_APPEND_FAILED,
    REASON_DIRTY,
    REASON_INTERNAL,
    REASON_OVERSIZED,
    REASON_STRUCTURAL,
    REASON_TIMEOUT,
    DeadLetterStore,
    MemoryDeadLetterStore,
)
from repro.serve.metrics import IngestMetrics
from repro.serve.queue import IngestQueue, QueueFullError
from repro.serve.retry import RetryExhaustedError, retry_async
from repro.serve.store import LiveDataset, TransientAppendError

_VERDICT_REASONS = {
    POISON_OVERSIZED: REASON_OVERSIZED,
    POISON_STRUCTURAL: REASON_STRUCTURAL,
    POISON_DIRTY: REASON_DIRTY,
}


@dataclass
class IngestBatch:
    """One queued unit of work."""

    seq: int
    source: str
    records: List[object]


@dataclass(frozen=True)
class SubmitReceipt:
    """What a successful ``submit`` returns (HTTP 202 body)."""

    seq: int
    source: str
    n_records: int
    queue_depth: int


@dataclass
class _Hooks:
    """Injection points for tests and the soak bench."""

    append_fault: Optional[Callable[[IngestBatch], None]] = None
    sleep: Optional[Callable[[float], Awaitable[None]]] = None
    clock: Optional[Callable[[], float]] = None
    retry_rng: Optional[random.Random] = None


class IngestRouter:
    """Validating, backpressured, observable FOT batch ingester."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        initial: Optional[FOTDataset] = None,
        cache: Optional[AnalysisCache] = None,
        append_fault: Optional[Callable[[IngestBatch], None]] = None,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        clock: Optional[Callable[[], float]] = None,
        retry_rng: Optional[random.Random] = None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.metrics = IngestMetrics()
        self.cache = cache if cache is not None else AnalysisCache()
        self.live = LiveDataset(
            initial,
            compact_threshold_tickets=self.config.compact_threshold_tickets,
            cache=self.cache,
        )
        self.queue = IngestQueue(self.config.queue_high_watermark)
        self.breakers = BreakerBoard(
            self.config.breaker,
            clock=clock,
            on_transition=self.metrics.record_breaker_transition,
        )
        if self.config.dead_letter_dir is not None:
            self.dead_letters: DeadLetterStore = DeadLetterStore(
                self.config.dead_letter_dir
            )
        else:
            self.dead_letters = MemoryDeadLetterStore()
        self._hooks = _Hooks(
            append_fault=append_fault, sleep=sleep, clock=clock,
            retry_rng=retry_rng,
        )
        #: Execution telemetry for the periodic report refreshes; the
        #: latest run document is surfaced verbatim under ``/metrics``.
        self.telemetry = InMemoryTelemetrySink()
        self._seq = 0
        self._accepted_batches = 0
        self._worker: Optional["asyncio.Task[None]"] = None
        self.last_refresh_seconds: Optional[float] = None
        #: batches whose dead-letter write itself failed (never silently
        #: dropped — still countable and inspectable in memory).
        self.dead_letter_failures: List[IngestBatch] = []

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, source: str, records: Sequence[object]) -> SubmitReceipt:
        """Enqueue a batch or fail fast.

        Raises:
            BreakerOpenError: the source's circuit breaker rejects it
                (HTTP 503).
            QueueFullError: the bounded queue is at its high watermark
                (HTTP 429) — the client should back off and retry.
        """
        self.metrics.batches_submitted += 1
        breaker = self.breakers.get(source)
        if not breaker.allow():
            self.metrics.batches_rejected_breaker += 1
            raise BreakerOpenError(source, breaker.retry_after())
        self._seq += 1
        batch = IngestBatch(seq=self._seq, source=source, records=list(records))
        try:
            self.queue.try_put(batch)
        except QueueFullError:
            # The batch never entered the pipeline: give back its seq
            # and any half-open probe slot so accounting stays exact.
            self.metrics.batches_rejected_queue_full += 1
            self._seq -= 1
            breaker.release_probe()
            raise
        self.metrics.tickets_submitted += len(batch.records)
        return SubmitReceipt(
            seq=batch.seq,
            source=source,
            n_records=len(batch.records),
            queue_depth=self.queue.depth,
        )

    async def submit_wait(
        self, source: str, records: Sequence[object],
        poll_seconds: float = 0.01,
    ) -> SubmitReceipt:
        """In-process cooperative submit: awaits through backpressure
        instead of raising (still fails fast on an open breaker)."""
        while True:
            try:
                return self.submit(source, records)
            except QueueFullError:
                await asyncio.sleep(poll_seconds)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the single consumer task (append order = arrival
        order).  Must be called from a running event loop."""
        if self._worker is None or self._worker.done():
            self._worker = asyncio.get_running_loop().create_task(
                self._worker_loop()
            )

    async def stop(self, drain: bool = True) -> None:
        if drain:
            await self.drain()
        # Capture-and-swap in one statement: a concurrent start() during
        # the await below sees _worker already cleared instead of racing
        # the post-await `self._worker = None` (RPL202).
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.cancel()
            try:
                await worker
            except asyncio.CancelledError:
                pass

    async def drain(self) -> None:
        """Wait until every queued batch has a terminal disposition."""
        await self.queue.join()

    async def _worker_loop(self) -> None:
        while True:
            batch = await self.queue.get()
            try:
                await self._process(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # terminal safety net: park, never drop
                await self._dead_letter(batch, REASON_INTERNAL, repr(exc))
                self.breakers.get(batch.source).record_failure()
            finally:
                self.queue.task_done()

    async def _process(self, batch: IngestBatch) -> None:
        breaker = self.breakers.get(batch.source)
        loop = asyncio.get_running_loop()
        try:
            validation = await asyncio.wait_for(
                loop.run_in_executor(None, self._validate, batch),
                timeout=self.config.validate_timeout_seconds,
            )
        except asyncio.TimeoutError:
            self.metrics.batch_timeouts += 1
            await self._dead_letter(
                batch, REASON_TIMEOUT,
                f"validation exceeded "
                f"{self.config.validate_timeout_seconds:.1f}s",
            )
            breaker.record_failure()
            return

        if not validation.accepted:
            await self._dead_letter(
                batch,
                _VERDICT_REASONS.get(validation.verdict, REASON_INTERNAL),
                validation.reason,
            )
            breaker.record_failure()
            return

        try:
            await retry_async(
                lambda: self._append(batch, validation),
                self.config.retry,
                retry_on=(TransientAppendError,),
                sleep=self._hooks.sleep,
                rng=self._hooks.retry_rng,
                on_retry=self._count_retry,
            )
        except RetryExhaustedError as exc:
            self.metrics.append_failures += 1
            await self._dead_letter(batch, REASON_APPEND_FAILED, str(exc))
            breaker.record_failure()
            return

        self.metrics.batches_accepted += 1
        if validation.n_quarantined:
            self.metrics.batches_quarantined += 1
        self.metrics.tickets_accepted += validation.n_accepted
        self.metrics.tickets_quarantined += validation.n_quarantined
        breaker.record_success()
        self._accepted_batches += 1
        interval = self.config.refresh_interval_batches
        if interval and self._accepted_batches % interval == 0:
            await self._refresh(loop)

    # ------------------------------------------------------------------
    def _validate(self, batch: IngestBatch) -> BatchValidation:
        return validate_batch(
            batch.records,
            source=f"{batch.source}#{batch.seq}",
            max_tickets=self.config.max_batch_tickets,
            poison_skip_fraction=self.config.poison_skip_fraction,
        )

    async def _append(
        self, batch: IngestBatch, validation: BatchValidation
    ) -> None:
        if self._hooks.append_fault is not None:
            self._hooks.append_fault(batch)
        # append can trigger a compaction (manifest read + columnar
        # rewrite): real file I/O, so it runs off the event loop.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.live.append, validation.dataset)
        self.metrics.compactions = self.live.compactions

    def _count_retry(
        self, attempt: int, error: BaseException, delay: float
    ) -> None:
        self.metrics.retries += 1

    async def _dead_letter(
        self, batch: IngestBatch, reason: str, error: str
    ) -> None:
        # Counters first (on-loop, so the accounting invariant holds even
        # if the parking write below fails); the durable put does disk
        # I/O and runs in the executor.
        self.metrics.batches_dead_lettered += 1
        self.metrics.tickets_dead_lettered += len(batch.records)
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None, self.dead_letters.put,
                batch.source, batch.records, reason, error,
            )
        except Exception:  # the parking lot itself failed: keep in memory
            self.dead_letter_failures.append(batch)

    async def replay_dead_letters(self, *, drop: bool = True) -> int:
        """Re-submit every parked batch through the full pipeline (after
        a loader fix or a threshold change); still-poison batches simply
        land back in the dead-letter store.  Returns the number of
        batches replayed; with ``drop`` the replayed entries are removed
        from the store first, so re-parked batches are not duplicated."""
        replayed = 0
        loop = asyncio.get_running_loop()
        parked = await loop.run_in_executor(
            None, lambda: list(self.dead_letters.iter_batches())
        )
        for entry, records in parked:
            if drop:
                await loop.run_in_executor(
                    None, self.dead_letters.remove, entry.seq
                )
            await self.submit_wait(entry.source, records)
            self.metrics.batches_replayed += 1
            replayed += 1
        return replayed

    async def _refresh(self, loop: "asyncio.AbstractEventLoop") -> None:
        """Recompute the headline report over the live snapshot through
        the analysis cache (off the event loop; ``current()`` may compact
        pending batches — file I/O — so it runs in the executor too; the
        single worker task means no other appender can race it)."""
        snapshot = await loop.run_in_executor(None, self.live.current)
        self.metrics.compactions = self.live.compactions
        started = time.perf_counter()
        cpu0 = time.process_time()
        await loop.run_in_executor(
            None,
            lambda: full_report(snapshot, cache=self.cache, headline_only=True),
        )
        self.last_refresh_seconds = time.perf_counter() - started
        self.metrics.refreshes += 1
        self.telemetry.record(
            RunTelemetry(
                kind=KIND_REPORT,
                stages=(
                    StageTiming(
                        name="refresh",
                        wall_seconds=self.last_refresh_seconds,
                        cpu_seconds=time.process_time() - cpu0,
                    ),
                ),
                cache=self.cache.stats.as_dict(),
            )
        )

    # ------------------------------------------------------------------
    # observability surface
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` document."""
        self.metrics.compactions = self.live.compactions
        return {
            "counters": self.metrics.snapshot(),
            "queue": self.queue.snapshot(),
            "breakers": self.breakers.states(),
            "live": {
                "tickets": len(self.live),
                "pending_batches": self.live.pending_batches,
                "compactions": self.live.compactions,
            },
            "dead_letter": {
                "count": len(self.dead_letters),
                "by_reason": self.dead_letters.counts_by_reason(),
                "write_failures": len(self.dead_letter_failures),
            },
            "cache": self.cache.stats.as_dict(),
            "execution": (
                self.telemetry.last.to_dict()
                if self.telemetry.last is not None
                else None
            ),
        }

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` document."""
        return self.metrics.health(
            queue_depth=self.queue.depth,
            queue_capacity=self.queue.high_watermark,
            open_breakers=self.breakers.states(),
        )


__all__ = ["IngestBatch", "SubmitReceipt", "IngestRouter"]
