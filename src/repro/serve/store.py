"""The growing dataset behind the ingestion service.

:class:`LiveDataset` turns the immutable :class:`~repro.core.dataset.
FOTDataset` substrate into an appendable store without giving up any of
its invariants: every accepted batch is kept as a pending view and
merged into the base column store in amortized batches
(:meth:`FOTDataset.concat_many`), so per-append cost is O(batch) and a
compaction costs one column copy — never O(store) per batch.

Readers always get a coherent snapshot: :meth:`current` compacts
pending appends (if any) and returns an immutable view; concurrent
analyses over an older snapshot stay valid because views never mutate.
On compaction the superseded snapshot's cache entries are evicted
through :meth:`~repro.engine.cache.AnalysisCache.invalidate`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.dataset import FOTDataset
from repro.engine.cache import AnalysisCache


class TransientAppendError(RuntimeError):
    """A retryable failure on the append path (fault injection and
    genuinely transient conditions; the router retries these under its
    backoff policy)."""


class LiveDataset:
    """An append-only dataset with amortized compaction."""

    def __init__(
        self,
        base: Optional[FOTDataset] = None,
        *,
        compact_threshold_tickets: int = 65_536,
        cache: Optional[AnalysisCache] = None,
    ):
        if compact_threshold_tickets < 1:
            raise ValueError("compact_threshold_tickets must be >= 1")
        self._base = base if base is not None else FOTDataset()
        self._pending: List[FOTDataset] = []
        self._pending_tickets = 0
        self._threshold = compact_threshold_tickets
        self._cache = cache
        self.compactions = 0
        self.appends = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._base) + self._pending_tickets

    @property
    def pending_tickets(self) -> int:
        return self._pending_tickets

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def append(self, batch: FOTDataset) -> int:
        """Stage an accepted batch; compacts once the pending volume
        crosses the threshold.  Returns the new total ticket count."""
        if len(batch):
            self._pending.append(batch)
            self._pending_tickets += len(batch)
            self.appends += 1
            if self._pending_tickets >= self._threshold:
                self._compact()
        return len(self)

    def _compact(self) -> None:
        old = self._base
        self._base = FOTDataset.concat_many([self._base, *self._pending])
        self._pending = []
        self._pending_tickets = 0
        self.compactions += 1
        if self._cache is not None and len(old):
            self._cache.invalidate(old)

    def current(self) -> FOTDataset:
        """An immutable snapshot containing every accepted ticket."""
        if self._pending:
            self._compact()
        return self._base


__all__ = ["LiveDataset", "TransientAppendError"]
