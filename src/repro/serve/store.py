"""The growing dataset behind the ingestion service.

:class:`LiveDataset` turns the immutable :class:`~repro.core.dataset.
FOTDataset` substrate into an appendable store without giving up any of
its invariants: every accepted batch is kept as a pending view and
merged into the base column store in amortized batches
(:meth:`FOTDataset.concat_many`), so per-append cost is O(batch) and a
compaction costs one column copy — never O(store) per batch.

Readers always get a coherent snapshot: :meth:`current` compacts
pending appends (if any) and returns an immutable view; concurrent
analyses over an older snapshot stay valid because views never mutate.
On compaction the superseded snapshot's cache entries are evicted
through :meth:`~repro.engine.cache.AnalysisCache.invalidate`.

With ``persist_dir`` set, compactions are also durable: each one
appends the just-compacted pending tickets as a new columnar shard
(:func:`repro.core.storage.append_columnar`), with the same
blobs-before-manifest atomicity as the dead-letter store — a crash
mid-compaction leaves the previous shard list fully readable.  On
restart, :meth:`LiveDataset.open` memory-maps the shards back into the
base.  The durability unit is the compaction: tickets still pending
(below the threshold) live only in memory until the next compaction or
an explicit :meth:`flush`, mirroring the at-least-once contract the
ingestion ledger already provides upstream.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.core.dataset import FOTDataset
from repro.core.storage import append_columnar, is_columnar, load_columnar
from repro.engine.cache import AnalysisCache


class TransientAppendError(RuntimeError):
    """A retryable failure on the append path (fault injection and
    genuinely transient conditions; the router retries these under its
    backoff policy)."""


class LiveDataset:
    """An append-only dataset with amortized compaction and optional
    columnar persistence."""

    def __init__(
        self,
        base: Optional[FOTDataset] = None,
        *,
        compact_threshold_tickets: int = 65_536,
        cache: Optional[AnalysisCache] = None,
        persist_dir: Optional[Union[str, Path]] = None,
    ):
        if compact_threshold_tickets < 1:
            raise ValueError("compact_threshold_tickets must be >= 1")
        self._base = base if base is not None else FOTDataset()
        self._pending: List[FOTDataset] = []
        self._pending_tickets = 0
        self._threshold = compact_threshold_tickets
        self._cache = cache
        self._persist_dir = None if persist_dir is None else Path(persist_dir)
        self.compactions = 0
        self.appends = 0
        if self._persist_dir is not None:
            # A fresh persist dir only: constructing over an existing
            # persisted dataset would diverge memory from disk (or
            # double-count a seed base) — resume with open() instead.
            if is_columnar(self._persist_dir):
                raise ValueError(
                    f"{self._persist_dir} already holds a persisted dataset; "
                    "resume it with LiveDataset.open() instead of seeding a base"
                )
            if len(self._base):
                # A non-empty seed becomes the first durable shard, so
                # disk equals memory from the start.
                append_columnar(self._persist_dir, self._base)

    @classmethod
    def open(
        cls,
        persist_dir: Union[str, Path],
        *,
        compact_threshold_tickets: int = 65_536,
        cache: Optional[AnalysisCache] = None,
    ) -> "LiveDataset":
        """Resume a persisted live dataset: memory-map the shards
        written by previous compactions (empty if none exist yet) and
        keep appending to the same directory."""
        persist_dir = Path(persist_dir)
        base = load_columnar(persist_dir) if is_columnar(persist_dir) else None
        live = cls(
            None,
            compact_threshold_tickets=compact_threshold_tickets,
            cache=cache,
        )
        if base is not None:
            live._base = base
        live._persist_dir = persist_dir
        return live

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._base) + self._pending_tickets

    @property
    def pending_tickets(self) -> int:
        return self._pending_tickets

    @property
    def persist_dir(self) -> Optional[Path]:
        """Where compactions are persisted, or ``None`` (memory-only)."""
        return self._persist_dir

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def append(self, batch: FOTDataset) -> int:
        """Stage an accepted batch; compacts once the pending volume
        crosses the threshold.  Returns the new total ticket count."""
        if len(batch):
            self._pending.append(batch)
            self._pending_tickets += len(batch)
            self.appends += 1
            if self._pending_tickets >= self._threshold:
                self._compact()
        return len(self)

    def _compact(self) -> None:
        old = self._base
        if self._persist_dir is not None and self._pending:
            # Durability first: the new shard's blobs and the manifest
            # update land before the in-memory merge, so a crash during
            # the merge loses nothing that was reported compacted.
            delta = (
                self._pending[0]
                if len(self._pending) == 1
                else FOTDataset.concat_many(self._pending)
            )
            append_columnar(self._persist_dir, delta)
        self._base = FOTDataset.concat_many([self._base, *self._pending])
        self._pending = []
        self._pending_tickets = 0
        self.compactions += 1
        if self._cache is not None and len(old):
            self._cache.invalidate(old)

    def flush(self) -> None:
        """Force a compaction (and, when persisting, a durable shard)
        for whatever is pending — shutdown path."""
        if self._pending:
            self._compact()

    def current(self) -> FOTDataset:
        """An immutable snapshot containing every accepted ticket."""
        if self._pending:
            self._compact()
        return self._base


__all__ = ["LiveDataset", "TransientAppendError"]
