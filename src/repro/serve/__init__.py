"""``repro.serve`` — the streaming ticket-ingestion service.

The batch pipeline (``load → analyze → report``) treats the four-year
FOT as a finished artifact.  This package treats it as a *feed*: an
asyncio router accepts ticket batches from named sources (in-process
or over a tiny dependency-free HTTP surface), validates and
quarantines them batch-granularly through :mod:`repro.robustness`,
appends the survivors to a growing dataset, and keeps the headline
analyses warm through the content-keyed :class:`~repro.engine.cache.
AnalysisCache`.

Failure handling is the point, not an afterthought:

* **backpressure** — a bounded queue rejects at its high watermark
  (HTTP 429) instead of buffering without limit;
* **circuit breakers** — per-source, with half-open probing, so a
  poison-spewing source stops consuming validation budget;
* **retries** — transient append failures retry under jittered
  exponential backoff;
* **dead letters** — every batch the pipeline cannot accept is parked
  in an atomic, replayable JSONL store, never dropped;
* **observability** — ``/healthz``, ``/metrics`` and structured
  counters make every disposition countable; the ledger invariant
  ``accepted + quarantined + dead_lettered == submitted`` is what the
  soak bench asserts.

Quickstart (in-process)::

    from repro.serve import IngestRouter, ServeConfig

    router = IngestRouter(ServeConfig(refresh_interval_batches=100))
    router.start()                      # inside a running event loop
    router.submit("dc-east", records)   # raises QueueFullError on 429
    await router.drain()
    snapshot = router.live.current()    # immutable FOTDataset

or over the wire: ``fouryears serve --port 8437`` then POST a JSON
array of records to ``/ingest/<source>``.
"""

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerOpenError,
    CircuitBreaker,
)
from repro.serve.config import BreakerConfig, RetryPolicy, ServeConfig
from repro.serve.deadletter import (
    DEAD_LETTER_REASONS,
    DeadLetterEntry,
    DeadLetterStore,
    MemoryDeadLetterStore,
)
from repro.serve.http import ServeApp, serve_http
from repro.serve.metrics import IngestMetrics
from repro.serve.queue import IngestQueue, QueueFullError
from repro.serve.retry import RetryExhaustedError, retry_async
from repro.serve.router import IngestBatch, IngestRouter, SubmitReceipt
from repro.serve.store import LiveDataset, TransientAppendError

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "DEAD_LETTER_REASONS",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerOpenError",
    "CircuitBreaker",
    "DeadLetterEntry",
    "DeadLetterStore",
    "MemoryDeadLetterStore",
    "IngestBatch",
    "IngestMetrics",
    "IngestQueue",
    "IngestRouter",
    "LiveDataset",
    "QueueFullError",
    "RetryExhaustedError",
    "RetryPolicy",
    "ServeApp",
    "ServeConfig",
    "SubmitReceipt",
    "TransientAppendError",
    "retry_async",
    "serve_http",
]
