"""Failed-batch observability: structured counters and health status.

Every ticket the router touches ends up in exactly one terminal counter
— ``tickets_accepted``, ``tickets_quarantined`` or
``tickets_dead_lettered`` — so the soak bench (and an operator's
dashboard) can assert the zero-silent-loss invariant::

    accepted + quarantined + dead_lettered == delivered

Breaker state transitions are counted *and* surfaced per source, which
is what the snippet-3-style observability tests key on: an open or
half-open breaker must be visible in ``/metrics`` without grepping logs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Health statuses reported by :meth:`IngestMetrics.health`.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"


@dataclass
class IngestMetrics:
    """Monotonic counters for the ingestion pipeline.

    Single-event-loop writers only; snapshots are plain dicts so the
    HTTP surface can serve them as JSON without further shaping.
    """

    # batch-level outcomes
    batches_submitted: int = 0
    batches_accepted: int = 0
    batches_quarantined: int = 0       # accepted with >= 1 skipped line
    batches_dead_lettered: int = 0
    batches_rejected_queue_full: int = 0
    batches_rejected_breaker: int = 0
    batch_timeouts: int = 0
    batches_replayed: int = 0

    # ticket-level accounting (the zero-loss ledger)
    tickets_submitted: int = 0
    tickets_accepted: int = 0
    tickets_quarantined: int = 0
    tickets_dead_lettered: int = 0

    # append-path resilience
    retries: int = 0
    append_failures: int = 0

    # breaker transitions
    breaker_opened: int = 0
    breaker_half_opened: int = 0
    breaker_closed: int = 0

    # analysis freshness
    refreshes: int = 0
    compactions: int = 0

    started_at: float = field(default_factory=time.time)

    # ------------------------------------------------------------------
    def record_breaker_transition(self, new_state: str) -> None:
        if new_state == "open":
            self.breaker_opened += 1
        elif new_state == "half_open":
            self.breaker_half_opened += 1
        elif new_state == "closed":
            self.breaker_closed += 1

    @property
    def tickets_accounted(self) -> int:
        """Tickets with a terminal disposition (the loss ledger)."""
        return (
            self.tickets_accepted
            + self.tickets_quarantined
            + self.tickets_dead_lettered
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """All counters as a flat dict (stable key names)."""
        return {
            "batches_submitted": self.batches_submitted,
            "batches_accepted": self.batches_accepted,
            "batches_quarantined": self.batches_quarantined,
            "batches_dead_lettered": self.batches_dead_lettered,
            "batches_rejected_queue_full": self.batches_rejected_queue_full,
            "batches_rejected_breaker": self.batches_rejected_breaker,
            "batch_timeouts": self.batch_timeouts,
            "batches_replayed": self.batches_replayed,
            "tickets_submitted": self.tickets_submitted,
            "tickets_accepted": self.tickets_accepted,
            "tickets_quarantined": self.tickets_quarantined,
            "tickets_dead_lettered": self.tickets_dead_lettered,
            "tickets_accounted": self.tickets_accounted,
            "retries": self.retries,
            "append_failures": self.append_failures,
            "breaker_opened": self.breaker_opened,
            "breaker_half_opened": self.breaker_half_opened,
            "breaker_closed": self.breaker_closed,
            "refreshes": self.refreshes,
            "compactions": self.compactions,
        }

    def health(
        self,
        *,
        queue_depth: int = 0,
        queue_capacity: int = 0,
        open_breakers: Optional[Dict[str, str]] = None,
        now: Optional[float] = None,
    ) -> Dict[str, object]:
        """Health document for ``/healthz``.

        Degraded when any breaker is not closed or the ingest queue is
        at its high watermark — the two conditions under which a client
        should back off.
        """
        open_breakers = open_breakers or {}
        reasons = []
        not_closed = {s: st for s, st in open_breakers.items() if st != "closed"}
        if not_closed:
            reasons.append(
                "breakers not closed: "
                + ", ".join(f"{s}={st}" for s, st in sorted(not_closed.items()))
            )
        if queue_capacity and queue_depth >= queue_capacity:
            reasons.append(
                f"ingest queue at high watermark ({queue_depth}/{queue_capacity})"
            )
        status = STATUS_DEGRADED if reasons else STATUS_OK
        stamp = time.time() if now is None else now
        return {
            "status": status,
            "reasons": reasons,
            "uptime_seconds": max(0.0, stamp - self.started_at),
            "queue_depth": queue_depth,
            "queue_capacity": queue_capacity,
            "breakers": dict(sorted(open_breakers.items())),
            "tickets_accounted": self.tickets_accounted,
        }


__all__ = ["IngestMetrics", "STATUS_OK", "STATUS_DEGRADED"]
