"""A dependency-free asyncio HTTP front-end for the ingest router.

Built directly on ``asyncio.start_server`` (no aiohttp, no new
dependencies): one connection handler parses a single HTTP/1.1 request,
dispatches it against the router, and writes a JSON response.  The wire
surface is deliberately tiny:

* ``POST /ingest/<source>`` — body is a JSON array of ticket records.
  202 with a :class:`~repro.serve.router.SubmitReceipt` on success,
  400 on an undecodable body, 408 if the body stalls past the read
  timeout (slow-loris guard), 413 past ``max_body_bytes``, 429 with a
  ``Retry-After`` header under queue backpressure, 503 when the
  source's circuit breaker is open.
* ``GET /healthz`` — 200 when healthy, 503 when degraded; JSON body
  either way.
* ``GET /metrics`` — the full structured counter document, 200.

Everything heavier (batch validation, appends, refreshes) happens in
the router's worker task, never on a connection handler.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.serve.breaker import BreakerOpenError
from repro.serve.metrics import STATUS_OK
from repro.serve.queue import QueueFullError
from repro.serve.router import IngestRouter

#: Hard cap on request bodies; generous for 10k-ticket batches but
#: small enough that one bad client cannot balloon the process.
MAX_BODY_BYTES = 64 * 1024 * 1024

_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Malformed request line / headers (response already decided)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _encode_response(
    status: int,
    payload: Dict[str, object],
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: "asyncio.StreamReader", timeout: float
) -> Tuple[str, str, bytes]:
    """``(method, path, body)`` or :class:`_BadRequest`.

    The whole read — request line, headers and body — runs under one
    wall-clock budget so a stalling client cannot pin the handler.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
    except asyncio.TimeoutError:
        raise _BadRequest(408, "timed out reading request head") from None
    except asyncio.IncompleteReadError:
        raise _BadRequest(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise _BadRequest(400, "request head too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _BadRequest(400, "request head too large")

    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        raise _BadRequest(400, "malformed request line") from None

    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest(400, "bad Content-Length") from None
    if length < 0:
        raise _BadRequest(400, "bad Content-Length")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")

    body = b""
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout
            )
        except asyncio.TimeoutError:
            raise _BadRequest(408, "timed out reading request body") from None
        except asyncio.IncompleteReadError:
            raise _BadRequest(400, "connection closed mid-body") from None
    return method, path, body


def _parse_body(
    body: bytes,
) -> Tuple[Optional[List[object]], Optional[
        Tuple[int, Dict[str, object], Dict[str, str]]]]:
    """``(records, None)`` or ``(None, error_response)``.

    Module-level (no captured state) so :meth:`ServeApp.handle_async`
    can push the potentially MB-scale decode+parse into the executor
    while keeping the submit itself on the event loop.
    """
    try:
        records = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return None, (400, {"error": f"body is not valid JSON: {exc}"}, {})
    if not isinstance(records, list):
        return None, (
            400, {"error": "body must be a JSON array of records"}, {},
        )
    return records, None


class ServeApp:
    """Routes one parsed request against an :class:`IngestRouter`."""

    def __init__(self, router: IngestRouter):
        self.router = router

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """``(status, payload, extra_headers)`` for a request."""
        if path.startswith("/ingest/"):
            if method != "POST":
                return 405, {"error": "POST required"}, {}
            source = path[len("/ingest/"):]
            if not source:
                return 400, {"error": "empty source name"}, {}
            records, error = _parse_body(body)
            if error is not None:
                return error
            return self._ingest(source, records)
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            health = self.router.health()
            status = 200 if health.get("status") == STATUS_OK else 503
            return status, health, {}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET required"}, {}
            return 200, self.router.metrics_snapshot(), {}
        return 404, {"error": f"no route for {path!r}"}, {}

    def _ingest(
        self, source: str, records: List[object]
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        try:
            receipt = self.router.submit(source, records)
        except QueueFullError as exc:
            return (
                429,
                {"error": str(exc), "queue_depth": exc.depth},
                {"Retry-After": "1"},
            )
        except BreakerOpenError as exc:
            return (
                503,
                {"error": str(exc), "source": exc.source},
                {"Retry-After": f"{max(1, int(exc.retry_after + 0.5))}"},
            )
        return (
            202,
            {
                "seq": receipt.seq,
                "source": receipt.source,
                "n_records": receipt.n_records,
                "queue_depth": receipt.queue_depth,
            },
            {},
        )

    async def handle_async(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """:meth:`handle`, but safe on the event loop.

        The JSON body parse (CPU-bound for MB-scale batches) and the
        read-only GET routes (``/metrics`` touches the dead-letter
        manifest on disk) run in the executor; the submit itself stays
        on-loop because the ingest queue's wakeup event is an asyncio
        primitive and is not thread-safe.
        """
        loop = asyncio.get_running_loop()
        if path.startswith("/ingest/") and method == "POST":
            source = path[len("/ingest/"):]
            if not source:
                return 400, {"error": "empty source name"}, {}
            records, error = await loop.run_in_executor(
                None, _parse_body, body
            )
            if error is not None:
                return error
            return self._ingest(source, records)
        return await loop.run_in_executor(
            None, self.handle, method, path, body
        )

    # ------------------------------------------------------------------
    async def handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        try:
            try:
                method, path, body = await _read_request(
                    reader, self.router.config.request_read_timeout_seconds
                )
            except _BadRequest as exc:
                response = _encode_response(
                    exc.status, {"error": exc.message}
                )
            else:
                try:
                    status, payload, headers = await self.handle_async(
                        method, path, body
                    )
                except Exception as exc:  # handler bug: report, keep serving
                    status, payload, headers = (
                        500, {"error": repr(exc)}, {}
                    )
                response = _encode_response(status, payload, headers)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except OSError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass


async def serve_http(
    router: IngestRouter,
    host: str = "127.0.0.1",
    port: int = 8437,
) -> "asyncio.AbstractServer":
    """Start the ingest worker and the HTTP listener; returns the
    server (caller owns shutdown: ``server.close()`` +
    ``router.stop()``).  Pass ``port=0`` to bind an ephemeral port."""
    router.start()
    app = ServeApp(router)
    return await asyncio.start_server(
        app.handle_connection, host=host, port=port,
        limit=_MAX_HEADER_BYTES,
    )


__all__ = ["MAX_BODY_BYTES", "ServeApp", "serve_http"]
