"""Dead-letter store for poison batches.

A batch the pipeline cannot accept — oversized, structurally broken,
too dirty to trust, or failing the append path even after retries — is
never dropped: its raw records land in an atomic JSONL file under the
dead-letter directory and a manifest entry records *why*.  Everything is
replayable: ``fouryears replay-deadletter`` re-validates each parked
batch (after a loader fix or a threshold change) and re-ingests what now
passes.

Layout::

    <dir>/manifest.json            # schema, next_seq, entries[]
    <dir>/batches/dl-000001.jsonl  # raw records, one JSON object/line

Both the batch file and the manifest are written atomically (temp file
+ rename), so a crash mid-dead-letter never leaves a manifest entry
pointing at a truncated batch: the batch file is durable before the
manifest names it.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.io import write_jsonl_records

#: Stable reason vocabulary (mirrors the poison classes of
#: :mod:`repro.robustness.batch` plus the pipeline-level failures).
REASON_OVERSIZED = "oversized"
REASON_STRUCTURAL = "structural"
REASON_DIRTY = "dirty"
REASON_APPEND_FAILED = "append_failed"
REASON_TIMEOUT = "timeout"
REASON_INTERNAL = "internal_error"

DEAD_LETTER_REASONS = (
    REASON_OVERSIZED,
    REASON_STRUCTURAL,
    REASON_DIRTY,
    REASON_APPEND_FAILED,
    REASON_TIMEOUT,
    REASON_INTERNAL,
)

_SCHEMA = 1


def _jsonable(records: Sequence[object]) -> List[Dict[str, object]]:
    """Best-effort JSON projection of records that resist serialization."""
    out: List[Dict[str, object]] = []
    for record in records:
        try:
            json.dumps(record)
        except (TypeError, ValueError):
            out.append({"__unserializable__": repr(record)})
        else:
            out.append(record)  # type: ignore[arg-type]
    return out


@dataclass(frozen=True)
class DeadLetterEntry:
    """One parked batch: where it is and why it is there."""

    seq: int
    file: str
    source: str
    reason: str
    error: str
    n_records: int
    parked_at: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "file": self.file,
            "source": self.source,
            "reason": self.reason,
            "error": self.error,
            "n_records": self.n_records,
            "parked_at": self.parked_at,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "DeadLetterEntry":
        return cls(
            seq=int(raw["seq"]),                       # type: ignore[arg-type]
            file=str(raw["file"]),
            source=str(raw["source"]),
            reason=str(raw["reason"]),
            error=str(raw.get("error", "")),
            n_records=int(raw["n_records"]),           # type: ignore[arg-type]
            parked_at=float(raw.get("parked_at", 0.0)),  # type: ignore[arg-type]
        )


class DeadLetterStore:
    """Durable, replayable parking lot for poison batches."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self._batches_dir = self.directory / "batches"
        self._manifest_path = self.directory / "manifest.json"

    # ------------------------------------------------------------------
    # manifest plumbing
    # ------------------------------------------------------------------
    def _read_manifest(self) -> Dict[str, object]:
        try:
            raw = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return {"schema": _SCHEMA, "next_seq": 1, "entries": []}
        raw.setdefault("next_seq", 1)
        raw.setdefault("entries", [])
        return raw

    def _write_manifest(self, manifest: Dict[str, object]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.directory), prefix="manifest.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self._manifest_path)
        except BaseException:
            with suppress(OSError):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put(
        self,
        source: str,
        records: Sequence[Dict[str, object]],
        reason: str,
        error: str = "",
        *,
        now: Optional[float] = None,
    ) -> DeadLetterEntry:
        """Park a batch; returns its manifest entry.

        The batch file is fully written (atomically) before the
        manifest references it.
        """
        manifest = self._read_manifest()
        seq = int(manifest["next_seq"])  # type: ignore[arg-type]
        name = f"dl-{seq:06d}.jsonl"
        self._batches_dir.mkdir(parents=True, exist_ok=True)
        try:
            write_jsonl_records(records, self._batches_dir / name)
        except (TypeError, ValueError):
            # Structural garbage can resist JSON; park a repr instead of
            # losing the batch.
            write_jsonl_records(_jsonable(records), self._batches_dir / name)
        entry = DeadLetterEntry(
            seq=seq,
            file=f"batches/{name}",
            source=source,
            reason=reason,
            error=error,
            n_records=len(records),
            parked_at=time.time() if now is None else now,
        )
        manifest["next_seq"] = seq + 1
        manifest["entries"].append(entry.to_dict())  # type: ignore[union-attr]
        self._write_manifest(manifest)
        return entry

    # ------------------------------------------------------------------
    # reading / replay
    # ------------------------------------------------------------------
    def entries(self) -> List[DeadLetterEntry]:
        """Every parked batch, in parking order."""
        manifest = self._read_manifest()
        return [
            DeadLetterEntry.from_dict(raw)
            for raw in manifest["entries"]  # type: ignore[union-attr]
        ]

    def __len__(self) -> int:
        return len(self.entries())

    def counts_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries():
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return counts

    def load_records(self, entry: DeadLetterEntry) -> List[Dict[str, object]]:
        """The raw records of a parked batch, ready to re-submit."""
        path = self.directory / entry.file
        records: List[Dict[str, object]] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    def iter_batches(self) -> Iterator[tuple]:
        """Yields ``(entry, records)`` pairs for replay."""
        for entry in self.entries():
            yield entry, self.load_records(entry)

    def remove(self, seq: int) -> None:
        """Drop a replayed batch: manifest entry first, then the file
        (a crash in between leaves only an orphaned file, never a
        dangling manifest entry)."""
        manifest = self._read_manifest()
        entries = manifest["entries"]  # type: ignore[union-attr]
        kept = [raw for raw in entries if int(raw["seq"]) != seq]
        if len(kept) == len(entries):
            raise KeyError(f"no dead-letter entry with seq {seq}")
        removed = [raw for raw in entries if int(raw["seq"]) == seq]
        manifest["entries"] = kept
        self._write_manifest(manifest)
        for raw in removed:
            with suppress(OSError):
                (self.directory / str(raw["file"])).unlink()


class MemoryDeadLetterStore(DeadLetterStore):
    """In-memory dead letters for tests, the soak bench and routers
    configured without a ``dead_letter_dir``.

    Same surface as :class:`DeadLetterStore` (countable, inspectable,
    replayable) minus durability; ``file`` is empty on its entries.
    """

    def __init__(self) -> None:  # deliberately no super().__init__
        self._entries: List[DeadLetterEntry] = []
        self._records: Dict[int, List[Dict[str, object]]] = {}
        self._next_seq = 1

    def put(
        self,
        source: str,
        records: Sequence[Dict[str, object]],
        reason: str,
        error: str = "",
        *,
        now: Optional[float] = None,
    ) -> DeadLetterEntry:
        seq = self._next_seq
        self._next_seq += 1
        entry = DeadLetterEntry(
            seq=seq,
            file="",
            source=source,
            reason=reason,
            error=error,
            n_records=len(records),
            parked_at=time.time() if now is None else now,
        )
        self._entries.append(entry)
        self._records[seq] = list(records)
        return entry

    def entries(self) -> List[DeadLetterEntry]:
        return list(self._entries)

    def load_records(self, entry: DeadLetterEntry) -> List[Dict[str, object]]:
        return list(self._records[entry.seq])

    def remove(self, seq: int) -> None:
        kept = [e for e in self._entries if e.seq != seq]
        if len(kept) == len(self._entries):
            raise KeyError(f"no dead-letter entry with seq {seq}")
        self._entries = kept
        self._records.pop(seq, None)


__all__ = [
    "DEAD_LETTER_REASONS",
    "REASON_OVERSIZED",
    "REASON_STRUCTURAL",
    "REASON_DIRTY",
    "REASON_APPEND_FAILED",
    "REASON_TIMEOUT",
    "REASON_INTERNAL",
    "DeadLetterEntry",
    "DeadLetterStore",
    "MemoryDeadLetterStore",
]
