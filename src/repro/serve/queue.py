"""Bounded ingest queue with explicit backpressure.

``asyncio.Queue`` blocks producers when full; a streaming ingestion
service must instead *tell* the producer to back off (HTTP 429), so
:class:`IngestQueue` exposes a non-blocking :meth:`try_put` that raises
:class:`QueueFullError` once the high watermark is hit.  The queue also
tracks its high-watermark hit count and peak depth for ``/metrics``.

Implemented over a plain :class:`~collections.deque` with wakeup
futures created inside the running loop, so the queue can be
constructed (and filled) before any event loop exists — unlike
:class:`asyncio.Queue`, which on Python 3.9 binds to whatever loop is
current at construction time.  One consumer task is assumed (the
router's single worker, which keeps append order deterministic).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional


class QueueFullError(RuntimeError):
    """The ingest queue is at its high watermark; back off and retry.

    Maps to HTTP 429 on the wire.
    """

    def __init__(self, depth: int, capacity: int):
        super().__init__(
            f"ingest queue full ({depth}/{capacity} batches); retry later"
        )
        self.depth = depth
        self.capacity = capacity


class IngestQueue:
    """A bounded FIFO of pending batches (single consumer).

    The overflow behavior is explicit (raise, never block the producer)
    and observable.
    """

    def __init__(self, high_watermark: int):
        if high_watermark < 1:
            raise ValueError("high_watermark must be >= 1")
        self.high_watermark = high_watermark
        self._items: Deque[Any] = deque()
        self._unfinished = 0
        self._wakeup: Optional["asyncio.Future[None]"] = None
        self._join_waiters: List["asyncio.Future[None]"] = []
        self.rejections = 0
        self.peak_depth = 0

    # ------------------------------------------------------------------
    def try_put(self, item: Any) -> None:
        """Enqueue ``item`` or raise :class:`QueueFullError` immediately."""
        if len(self._items) >= self.high_watermark:
            self.rejections += 1
            raise QueueFullError(self.depth, self.high_watermark)
        self._items.append(item)
        self._unfinished += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        if self._wakeup is not None and not self._wakeup.done():
            self._wakeup.set_result(None)

    async def get(self) -> Any:
        while not self._items:
            wakeup = asyncio.get_running_loop().create_future()
            self._wakeup = wakeup
            try:
                await wakeup
            finally:
                if self._wakeup is wakeup:
                    self._wakeup = None
        return self._items.popleft()

    def task_done(self) -> None:
        if self._unfinished <= 0:
            raise ValueError("task_done() called too many times")
        self._unfinished -= 1
        if self._unfinished == 0:
            for waiter in self._join_waiters:
                if not waiter.done():
                    waiter.set_result(None)
            self._join_waiters.clear()

    async def join(self) -> None:
        """Wait until every enqueued batch has been marked done."""
        if self._unfinished == 0:
            return
        waiter = asyncio.get_running_loop().create_future()
        self._join_waiters.append(waiter)
        await waiter

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.high_watermark

    def snapshot(self) -> Dict[str, int]:
        return {
            "depth": self.depth,
            "capacity": self.high_watermark,
            "peak_depth": self.peak_depth,
            "rejections": self.rejections,
        }


__all__ = ["IngestQueue", "QueueFullError"]
