"""Per-source circuit breakers with half-open probing.

A source that keeps delivering poison batches (or keeps timing out)
should stop consuming validation budget: after ``failure_threshold``
consecutive failures its breaker opens and submissions are rejected at
the door (HTTP 503).  After ``reset_seconds`` the breaker goes
half-open and admits ``half_open_probes`` probe batches; one success
closes it, one failure re-opens it and restarts the clock.

The clock is injectable so tests (and the deterministic soak bench)
drive transitions without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.config import BreakerConfig

#: Breaker state names (stable strings, surfaced in /metrics).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpenError(RuntimeError):
    """Submission rejected because the source's breaker is open.

    Maps to HTTP 503 on the wire.
    """

    def __init__(self, source: str, retry_after: float):
        super().__init__(
            f"circuit breaker open for source {source!r}; "
            f"retry in {retry_after:.1f}s"
        )
        self.source = source
        self.retry_after = retry_after


class CircuitBreaker:
    """One source's breaker: closed -> open -> half-open -> closed.

    ``on_transition(new_state)`` fires on every state change so the
    metrics surface can count opens/half-opens/closes.
    """

    def __init__(
        self,
        config: BreakerConfig,
        *,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[Callable[[str], None]] = None,
    ):
        self.config = config
        self._clock = clock if clock is not None else time.monotonic
        self._on_transition = on_transition
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.transitions: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------
    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        self.transitions.append((state, self._clock()))
        if self._on_transition is not None:
            self._on_transition(state)

    @property
    def state(self) -> str:
        """Current state, applying the open -> half-open timeout lazily."""
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.config.reset_seconds
        ):
            self._probes_in_flight = 0
            self._transition(HALF_OPEN)

    def retry_after(self) -> float:
        """Seconds until the breaker next admits a probe (0 when it
        already would)."""
        if self._state != OPEN:
            return 0.0
        remaining = self.config.reset_seconds - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a batch from this source enter the pipeline right now?

        Half-open admits at most ``half_open_probes`` in-flight probes;
        their outcomes arrive later via :meth:`record_success` /
        :meth:`record_failure`.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            if self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False
        return False

    def release_probe(self) -> None:
        """Return a half-open probe slot whose batch never entered the
        pipeline (e.g. rejected by queue backpressure), so probing
        cannot deadlock on slots that will never report an outcome."""
        if self._state == HALF_OPEN and self._probes_in_flight > 0:
            self._probes_in_flight -= 1

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state == HALF_OPEN:
            self._probes_in_flight = 0
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == HALF_OPEN:
            self._probes_in_flight = 0
            self._opened_at = self._clock()
            self._transition(OPEN)
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self._opened_at = self._clock()
            self._transition(OPEN)


class BreakerBoard:
    """The per-source breaker registry the router consults."""

    def __init__(
        self,
        config: BreakerConfig,
        *,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[Callable[[str], None]] = None,
    ):
        self.config = config
        self._clock = clock
        self._on_transition = on_transition
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, source: str) -> CircuitBreaker:
        breaker = self._breakers.get(source)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config, clock=self._clock, on_transition=self._on_transition
            )
            self._breakers[source] = breaker
        return breaker

    def states(self) -> Dict[str, str]:
        """``{source: state}`` for the health/metrics surfaces."""
        return {source: b.state for source, b in sorted(self._breakers.items())}


__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerOpenError",
    "CircuitBreaker",
    "BreakerBoard",
]
