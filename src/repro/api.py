"""The single documented entry surface of the toolkit.

Everything a downstream user does — load a ticket dump, simulate a
fleet scenario, run analyses, render the paper report — goes through
four verbs::

    import repro

    trace = repro.simulate(scale=0.05, seed=7)   # jobs="auto" by default
    dataset = repro.load("dump.jsonl", lenient=True)
    results = repro.analyze(dataset, "categories", "components", "mtbf")
    print(repro.full_report(dataset).text())

*How* the verbs execute is carried by one value, an
:class:`~repro.engine.policy.ExecutionPolicy`::

    policy = repro.ExecutionPolicy(
        jobs="auto",                      # or an int, or "serial"
        cache=repro.AnalysisCache(),      # memoize analysis results
        telemetry_sink=repro.engine.InMemoryTelemetrySink(),
    )
    trace = repro.simulate(scale=0.05, seed=7, policy=policy)
    report = repro.full_report(trace.dataset, policy=policy)
    print(policy.telemetry_sink.last.plan.reason)   # why serial/parallel

``jobs="auto"`` (the default) lets the adaptive planner probe usable
cores and per-shard cost, so generation is parallel exactly when that
pays — output is bit-identical to serial either way.  The pre-policy
``jobs=``/``cache=`` kwargs still work but emit ``DeprecationWarning``
pointing at ``policy=``.

The facade wraps the per-module APIs (``repro.analysis.*``,
``repro.core.io``, ``repro.simulation.trace``) without hiding them;
power users can still import the modules directly.
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.config import ScenarioConfig
    from repro.fleet.inventory import Inventory
    from repro.simulation.trace import SyntheticTrace

from repro.analysis import (
    batch,
    compare as _compare_mod,
    concentration,
    correlated,
    overview,
    repeating,
    response,
    tbf,
    temporal,
)
from repro.analysis.compare import DatasetComparison, compare_datasets
from repro.analysis.full_report import (
    FullReport,
    ReportSection,
    full_report as _full_report,
)
from repro.analysis.mining import mine_incidents
from repro.analysis.prediction import predict_and_evaluate
from repro.analysis.report import format_percent, format_table
from repro.core import io as _io
from repro.core.dataset import FOTDataset
from repro.core.types import FOTCategory
from repro.engine import AnalysisCache
from repro.engine.policy import DEFAULT_POLICY, ExecutionPolicy, coerce_jobs
from repro.engine.telemetry import (
    KIND_ANALYZE,
    KIND_COMPARE,
    KIND_REPORT,
    RunTelemetry,
    StageTiming,
)
from repro.robustness.quality import DataQuality
from repro.robustness.quarantine import QuarantineReport
from repro.simulation.trace import generate_trace

__all__ = [
    "load",
    "convert",
    "audit",
    "simulate",
    "analyze",
    "full_report",
    "compare",
    "AuditResult",
    "AnalysisCache",
    "DatasetComparison",
    "ExecutionPolicy",
    "FullReport",
    "ReportSection",
    "compare_datasets",
    "mine_incidents",
    "predict_and_evaluate",
    "format_table",
    "format_percent",
    "ANALYSES",
]


def _warn_deprecated_kwarg(old: str, replacement: str) -> None:
    warnings.warn(
        f"the {old} kwarg is deprecated; pass "
        f"policy=repro.ExecutionPolicy({replacement}) instead",
        DeprecationWarning,
        stacklevel=4,
    )


def _resolve_policy(
    policy: Optional[ExecutionPolicy],
    *,
    jobs: Optional[Union[int, str]] = None,
    cache: Optional[AnalysisCache] = None,
) -> ExecutionPolicy:
    """Fold the deprecated per-verb kwargs into one policy.

    ``None`` legacy values are treated as "not passed" (the historical
    defaults), so only a real legacy value warns; combining a legacy
    value with an explicit ``policy`` is an error rather than a silent
    precedence rule.
    """
    legacy: Dict[str, Any] = {}
    if jobs is not None:
        _warn_deprecated_kwarg("jobs=", "jobs=...")
        legacy["jobs"] = coerce_jobs(jobs)
    if cache is not None:
        _warn_deprecated_kwarg("cache=", "cache=...")
        legacy["cache"] = cache
    if policy is None:
        return DEFAULT_POLICY.with_(**legacy) if legacy else DEFAULT_POLICY
    if legacy:
        raise ValueError(
            "pass execution knobs through policy=..., not alongside it "
            f"(got legacy kwargs: {', '.join(sorted(legacy))})"
        )
    return policy


def load(path: Union[str, Path], *, lenient: bool = False) -> FOTDataset:
    """Load a ticket dump (.jsonl, .csv, or a .fourcol columnar dir).

    Strict by default: malformed lines raise ``ValueError``.  With
    ``lenient=True`` malformed lines are quarantined and the salvageable
    remainder is returned — use :func:`audit` when you also need the
    quarantine report.

    Columnar datasets (written by :func:`convert` or ``fouryears
    convert``) open by memory-mapping in near-constant time; prefer them
    for anything you load more than once.
    """
    if not lenient:
        return _io.load(path)
    dataset, _ = _io.load(path, strict=False)
    return dataset


def convert(
    src: Union[str, Path],
    dst: Union[str, Path],
    *,
    lenient: bool = False,
) -> QuarantineReport:
    """Convert a ticket dump between formats (csv/jsonl ⇄ columnar).

    The common direction is text → ``.fourcol``: pay the parse once,
    then every subsequent :func:`load` of ``dst`` memory-maps instead of
    parsing.  Converting columnar → text exports for interchange.

    With ``lenient=True`` malformed source lines are quarantined rather
    than fatal; the returned :class:`~repro.robustness.quarantine.
    QuarantineReport` says what was skipped or repaired (it is empty for
    a strict conversion).
    """
    if lenient:
        dataset, report = _io.load(src, strict=False)
    else:
        dataset = _io.load(src)
        report = QuarantineReport(str(src))
        report.n_loaded = len(dataset)
    _io.save(dataset, dst)
    return report


@dataclass(frozen=True)
class AuditResult:
    """A lenient load plus its data-quality audit."""

    dataset: FOTDataset
    quarantine: QuarantineReport
    quality: DataQuality

    @property
    def dirty(self) -> bool:
        return self.quarantine.n_skipped > 0 or self.quality.grade == "poor"

    def rows(self) -> List[Tuple[str, str]]:
        return [
            ("tickets", str(len(self.dataset))),
            ("skipped lines", str(self.quarantine.n_skipped)),
            ("quality grade", self.quality.grade),
        ]


def audit(path: Union[str, Path]) -> AuditResult:
    """Leniently load ``path`` and assess what survived.

    Raises ``ValueError`` for structurally unreadable dumps (unknown
    format, missing required CSV columns).
    """
    dataset, quarantine = _io.load(path, strict=False)
    quality = DataQuality.assess(dataset)
    # Probe the degradation-aware analyses so their exclusions show up
    # in the assessment even though the statistics are discarded here.
    for category in (FOTCategory.FIXING, FOTCategory.FALSE_ALARM):
        with contextlib.suppress(ValueError):
            response.rt_distribution(dataset, category, quality=quality)
    return AuditResult(dataset=dataset, quarantine=quarantine, quality=quality)


def simulate(
    scenario: Optional["ScenarioConfig"] = None,
    *,
    scale: float = 1.0,
    seed: int = 20170626,
    policy: Optional[ExecutionPolicy] = None,
    jobs: Optional[Union[int, str]] = None,
) -> "SyntheticTrace":
    """Generate a synthetic FOT trace.

    Args:
        scenario: a :class:`~repro.config.ScenarioConfig`; when omitted,
            the paper scenario at ``scale``/``seed`` is used.
        policy: the :class:`ExecutionPolicy`; defaults to
            ``ExecutionPolicy(jobs="auto")``, which lets the adaptive
            planner probe cores and shard costs and pick serial or a
            sized pool.  Output is bit-identical for every plan; the
            chosen plan and per-shard timings land on
            ``trace.telemetry`` (and the policy's telemetry sink).
        jobs: deprecated; pass ``policy=ExecutionPolicy(jobs=...)``.

    Returns the full trace result (``.dataset``, ``.inventory``,
    ``.fleet``, ``.fms_stats``, ``.telemetry``).
    """
    policy = _resolve_policy(policy, jobs=jobs)
    if scenario is None:
        from repro.config import paper_scenario

        scenario = paper_scenario(scale=scale, seed=seed)
    return generate_trace(scenario, policy=policy)


#: Named analyses runnable through :func:`analyze`: name -> (fn, params).
ANALYSES: Dict[str, Tuple[Any, Dict[str, Any]]] = {
    "categories": (overview.categories, {}),
    "components": (overview.components, {}),
    "detection_sources": (overview.detection_sources, {}),
    "mtbf": (tbf.analyze_tbf, {}),
    "day_of_week": (temporal.day_of_week_summary, {}),
    "concentration": (concentration.failure_concentration, {}),
    "repeats": (repeating.repeating_stats, {}),
    "batches": (batch.batch_failure_frequency, {}),
    "correlated": (correlated.component_pair_counts, {}),
    "response_fixing": (response.rt_distribution,
                        {"category": FOTCategory.FIXING}),
}


def analyze(
    dataset: FOTDataset,
    *analyses: str,
    policy: Optional[ExecutionPolicy] = None,
    cache: Optional[AnalysisCache] = None,
) -> Dict[str, Any]:
    """Run named analyses over ``dataset``; all of them when none named.

    The policy's ``cache`` memoizes results by content fingerprint and
    its ``telemetry_sink`` receives one per-analysis-timed
    :class:`~repro.engine.telemetry.RunTelemetry` document.  ``cache=``
    is the deprecated spelling of ``policy=ExecutionPolicy(cache=...)``.

    Returns ``{name: result}``; see :data:`ANALYSES` for the registry.
    """
    policy = _resolve_policy(policy, cache=cache)
    names = analyses or tuple(ANALYSES)
    unknown = [n for n in names if n not in ANALYSES]
    if unknown:
        raise ValueError(
            f"unknown analyses {unknown}; choose from {sorted(ANALYSES)}"
        )
    results: Dict[str, Any] = {}
    stages: List[StageTiming] = []
    for name in names:
        fn, params = ANALYSES[name]
        wall0, cpu0 = time.perf_counter(), time.process_time()
        if policy.cache is not None:
            results[name] = policy.cache.call(fn, dataset, **params)
        else:
            results[name] = fn(dataset, **params)
        stages.append(
            StageTiming(
                name,
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
            )
        )
    _record_stages(policy, KIND_ANALYZE, stages)
    return results


def _record_stages(
    policy: ExecutionPolicy, kind: str, stages: List[StageTiming]
) -> None:
    """Emit one telemetry document for a timed facade verb (no-op
    without a sink)."""
    if policy.telemetry_sink is None:
        return
    total = StageTiming(
        "total",
        sum(s.wall_seconds for s in stages),
        sum(s.cpu_seconds for s in stages),
    )
    policy.record(
        RunTelemetry(
            kind=kind,
            stages=(*stages, total),
            cache=(
                None if policy.cache is None
                else policy.cache.stats.as_dict()
            ),
        )
    )


def full_report(
    dataset: FOTDataset,
    *,
    inventory: Optional["Inventory"] = None,
    policy: Optional[ExecutionPolicy] = None,
    cache: Optional[AnalysisCache] = None,
    headline_only: bool = False,
) -> FullReport:
    """Render the paper report over ``dataset``.

    Args:
        inventory: fleet inventory; enables the Table IV section.
        policy: the :class:`ExecutionPolicy`; its ``cache`` memoizes
            section bodies on the dataset's content fingerprint and its
            ``telemetry_sink`` receives a timed run document (with the
            cache's hit counters).
        cache: deprecated; pass ``policy=ExecutionPolicy(cache=...)``.
        headline_only: only Tables I/II and the MTBF line (the CLI
            ``report`` subcommand).
    """
    policy = _resolve_policy(policy, cache=cache)
    wall0, cpu0 = time.perf_counter(), time.process_time()
    report = _full_report(
        dataset,
        inventory=inventory,
        cache=policy.cache,
        headline_only=headline_only,
    )
    _record_stages(
        policy,
        KIND_REPORT,
        [
            StageTiming(
                "full_report",
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
            )
        ],
    )
    return report


def compare(
    left: FOTDataset,
    right: FOTDataset,
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> DatasetComparison:
    """Compare two FOT datasets across the paper's dimensions."""
    policy = _resolve_policy(policy)
    wall0, cpu0 = time.perf_counter(), time.process_time()
    result = _compare_mod.compare_datasets(left, right)
    _record_stages(
        policy,
        KIND_COMPARE,
        [
            StageTiming(
                "compare",
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
            )
        ],
    )
    return result
