"""The single documented entry surface of the toolkit.

Everything a downstream user does — load a ticket dump, simulate a
fleet scenario, run analyses, render the paper report — goes through
four verbs::

    import repro

    trace = repro.simulate(scale=0.05, seed=7, jobs=4)
    dataset = repro.load("dump.jsonl", lenient=True)
    results = repro.analyze(dataset, "categories", "components", "mtbf")
    print(repro.full_report(dataset).text())

The facade wraps the per-module APIs (``repro.analysis.*``,
``repro.core.io``, ``repro.simulation.trace``) without hiding them;
power users can still import the modules directly.  ``jobs`` fans trace
generation out over the :mod:`repro.engine` shard pool (bit-identical
to serial), and ``cache`` threads an
:class:`~repro.engine.cache.AnalysisCache` through the report path.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.config import ScenarioConfig
    from repro.simulation.trace import SyntheticTrace

from repro.analysis import (
    batch,
    compare as _compare_mod,
    concentration,
    correlated,
    overview,
    repeating,
    response,
    tbf,
    temporal,
)
from repro.analysis.compare import DatasetComparison, compare_datasets
from repro.analysis.full_report import FullReport, ReportSection, full_report
from repro.analysis.mining import mine_incidents
from repro.analysis.prediction import predict_and_evaluate
from repro.analysis.report import format_percent, format_table
from repro.core import io as _io
from repro.core.dataset import FOTDataset
from repro.core.types import FOTCategory
from repro.engine import AnalysisCache
from repro.robustness.quality import DataQuality
from repro.robustness.quarantine import QuarantineReport
from repro.simulation.trace import generate_trace

__all__ = [
    "load",
    "convert",
    "audit",
    "simulate",
    "analyze",
    "full_report",
    "compare",
    "AuditResult",
    "AnalysisCache",
    "DatasetComparison",
    "FullReport",
    "ReportSection",
    "compare_datasets",
    "mine_incidents",
    "predict_and_evaluate",
    "format_table",
    "format_percent",
    "ANALYSES",
]


def load(path: Union[str, Path], *, lenient: bool = False) -> FOTDataset:
    """Load a ticket dump (.jsonl, .csv, or a .fourcol columnar dir).

    Strict by default: malformed lines raise ``ValueError``.  With
    ``lenient=True`` malformed lines are quarantined and the salvageable
    remainder is returned — use :func:`audit` when you also need the
    quarantine report.

    Columnar datasets (written by :func:`convert` or ``fouryears
    convert``) open by memory-mapping in near-constant time; prefer them
    for anything you load more than once.
    """
    if not lenient:
        return _io.load(path)
    dataset, _ = _io.load(path, strict=False)
    return dataset


def convert(
    src: Union[str, Path],
    dst: Union[str, Path],
    *,
    lenient: bool = False,
) -> QuarantineReport:
    """Convert a ticket dump between formats (csv/jsonl ⇄ columnar).

    The common direction is text → ``.fourcol``: pay the parse once,
    then every subsequent :func:`load` of ``dst`` memory-maps instead of
    parsing.  Converting columnar → text exports for interchange.

    With ``lenient=True`` malformed source lines are quarantined rather
    than fatal; the returned :class:`~repro.robustness.quarantine.
    QuarantineReport` says what was skipped or repaired (it is empty for
    a strict conversion).
    """
    if lenient:
        dataset, report = _io.load(src, strict=False)
    else:
        dataset = _io.load(src)
        report = QuarantineReport(str(src))
        report.n_loaded = len(dataset)
    _io.save(dataset, dst)
    return report


@dataclass(frozen=True)
class AuditResult:
    """A lenient load plus its data-quality audit."""

    dataset: FOTDataset
    quarantine: QuarantineReport
    quality: DataQuality

    @property
    def dirty(self) -> bool:
        return self.quarantine.n_skipped > 0 or self.quality.grade == "poor"

    def rows(self) -> List[Tuple[str, str]]:
        return [
            ("tickets", str(len(self.dataset))),
            ("skipped lines", str(self.quarantine.n_skipped)),
            ("quality grade", self.quality.grade),
        ]


def audit(path: Union[str, Path]) -> AuditResult:
    """Leniently load ``path`` and assess what survived.

    Raises ``ValueError`` for structurally unreadable dumps (unknown
    format, missing required CSV columns).
    """
    dataset, quarantine = _io.load(path, strict=False)
    quality = DataQuality.assess(dataset)
    # Probe the degradation-aware analyses so their exclusions show up
    # in the assessment even though the statistics are discarded here.
    for category in (FOTCategory.FIXING, FOTCategory.FALSE_ALARM):
        with contextlib.suppress(ValueError):
            response.rt_distribution(dataset, category, quality=quality)
    return AuditResult(dataset=dataset, quarantine=quarantine, quality=quality)


def simulate(
    scenario: Optional["ScenarioConfig"] = None,
    *,
    scale: float = 1.0,
    seed: int = 20170626,
    jobs: int = 1,
) -> "SyntheticTrace":
    """Generate a synthetic FOT trace.

    Args:
        scenario: a :class:`~repro.config.ScenarioConfig`; when omitted,
            the paper scenario at ``scale``/``seed`` is used.
        jobs: worker processes for sharded generation.  Output is
            bit-identical to ``jobs=1`` for the same scenario.

    Returns the full trace result (``.dataset``, ``.inventory``,
    ``.fleet``, ``.fms_stats``).
    """
    if scenario is None:
        from repro.config import paper_scenario

        scenario = paper_scenario(scale=scale, seed=seed)
    return generate_trace(scenario, jobs=jobs)


#: Named analyses runnable through :func:`analyze`: name -> (fn, params).
ANALYSES: Dict[str, Tuple[Any, Dict[str, Any]]] = {
    "categories": (overview.categories, {}),
    "components": (overview.components, {}),
    "detection_sources": (overview.detection_sources, {}),
    "mtbf": (tbf.analyze_tbf, {}),
    "day_of_week": (temporal.day_of_week_summary, {}),
    "concentration": (concentration.failure_concentration, {}),
    "repeats": (repeating.repeating_stats, {}),
    "batches": (batch.batch_failure_frequency, {}),
    "correlated": (correlated.component_pair_counts, {}),
    "response_fixing": (response.rt_distribution,
                        {"category": FOTCategory.FIXING}),
}


def analyze(dataset: FOTDataset, *analyses: str,
            cache: Optional[AnalysisCache] = None) -> Dict[str, Any]:
    """Run named analyses over ``dataset``; all of them when none named.

    Returns ``{name: result}``; see :data:`ANALYSES` for the registry.
    """
    names = analyses or tuple(ANALYSES)
    unknown = [n for n in names if n not in ANALYSES]
    if unknown:
        raise ValueError(
            f"unknown analyses {unknown}; choose from {sorted(ANALYSES)}"
        )
    results: Dict[str, Any] = {}
    for name in names:
        fn, params = ANALYSES[name]
        if cache is not None:
            results[name] = cache.call(fn, dataset, **params)
        else:
            results[name] = fn(dataset, **params)
    return results


def compare(left: FOTDataset, right: FOTDataset) -> DatasetComparison:
    """Compare two FOT datasets across the paper's dimensions."""
    return _compare_mod.compare_datasets(left, right)
