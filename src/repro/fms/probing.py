"""Active failure probing — the mechanism Section III-A says the
failure management team was building.

The paper's diagnosis: log-based detection "does not detect failures in
a component until it gets used", so (1) latent failures sit undetected
through quiet hours, and (2) when detection finally happens the workload
is already heavy, maximizing the performance impact of the failure.
Their team's answer is an *active prober* that exercises components on a
fixed cycle regardless of load.

This module simulates both detection paths over synthetic failure
onsets and quantifies the trade-off:

* **log-based**: the component is noticed at the first post-onset "use",
  where uses arrive as an inhomogeneous Poisson process following the
  diurnal workload curve;
* **active probing**: the component is noticed at the next probe tick of
  a fixed period, independent of load.

Outputs: detection-latency distributions and the share of detections
landing in peak-load hours — the two quantities the paper's argument
turns on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.timeutil import DAY, HOUR
from repro.simulation import calibration


@dataclass(frozen=True)
class ProbingComparison:
    """Latency and peak-hour exposure under both detection paths."""

    log_latencies: np.ndarray
    probe_latencies: np.ndarray
    log_peak_share: float
    probe_peak_share: float
    probe_period_hours: float

    @property
    def log_mean_latency_hours(self) -> float:
        return float(self.log_latencies.mean() / HOUR)

    @property
    def probe_mean_latency_hours(self) -> float:
        return float(self.probe_latencies.mean() / HOUR)

    @property
    def log_p99_latency_hours(self) -> float:
        return float(np.quantile(self.log_latencies, 0.99) / HOUR)

    @property
    def probe_p99_latency_hours(self) -> float:
        return float(np.quantile(self.probe_latencies, 0.99) / HOUR)


def _workload_rate(ts: np.ndarray, uses_per_day: float) -> np.ndarray:
    """Instantaneous use rate (per second) at timestamps ``ts``."""
    hours = ((ts % DAY) // HOUR).astype(int)
    curve = np.asarray(calibration.WORKLOAD_BY_HOUR, dtype=float)
    curve = curve / curve.mean()
    return curve[hours] * uses_per_day / DAY


def sample_log_detection(
    onsets: np.ndarray,
    uses_per_day: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """First-use detection times via thinning of the diurnal use process.

    The use process is inhomogeneous Poisson with rate proportional to
    the workload curve; thinning against the curve's maximum yields
    exact first-arrival times.
    """
    if uses_per_day <= 0:
        raise ValueError("uses_per_day must be positive")
    onsets = np.asarray(onsets, dtype=float)
    curve = np.asarray(calibration.WORKLOAD_BY_HOUR, dtype=float)
    peak_rate = curve.max() / curve.mean() * uses_per_day / DAY

    detections = np.empty_like(onsets)
    for i, t0 in enumerate(onsets):
        t = t0
        for _ in range(100_000):  # pragma: no branch - bounded walk
            t += rng.exponential(1.0 / peak_rate)
            accept = rng.random() < float(
                _workload_rate(np.asarray([t]), uses_per_day)[0] / peak_rate
            )
            if accept:
                break
        detections[i] = t
    return detections


def sample_probe_detection(
    onsets: np.ndarray,
    period_hours: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Next-tick detection for a fixed probing period with a random
    per-component phase."""
    if period_hours <= 0:
        raise ValueError("period_hours must be positive")
    onsets = np.asarray(onsets, dtype=float)
    period = period_hours * HOUR
    phase = rng.uniform(0.0, period, size=onsets.size)
    k = np.ceil((onsets - phase) / period)
    return phase + k * period


def peak_share(detections: np.ndarray, top_hours: int = 8) -> float:
    """Fraction of detections landing in the ``top_hours`` busiest
    hours of the workload curve."""
    if not 1 <= top_hours <= 24:
        raise ValueError("top_hours must be in [1, 24]")
    curve = np.asarray(calibration.WORKLOAD_BY_HOUR, dtype=float)
    peak_hours = np.sort(np.argsort(curve)[-top_hours:])
    hours = ((np.asarray(detections) % DAY) // HOUR).astype(int)
    return float(np.isin(hours, peak_hours).mean())


def compare_detection(
    n_failures: int = 5000,
    *,
    uses_per_day: float = 24.0,
    probe_period_hours: float = 4.0,
    horizon_days: float = 30.0,
    rng: Optional[np.random.Generator] = None,
) -> ProbingComparison:
    """Run the full comparison over uniformly random failure onsets.

    ``uses_per_day`` controls how cold the component is (a rarely-read
    archive drive has a small value and a huge log-based latency —
    exactly the case that motivated the prober).
    """
    if n_failures < 10:
        raise ValueError("need at least 10 failures for the comparison")
    rng = rng or np.random.default_rng(0)
    onsets = rng.uniform(0.0, horizon_days * DAY, size=n_failures)
    log_det = sample_log_detection(onsets, uses_per_day, rng)
    probe_det = sample_probe_detection(onsets, probe_period_hours, rng)
    return ProbingComparison(
        log_latencies=log_det - onsets,
        probe_latencies=probe_det - onsets,
        log_peak_share=peak_share(log_det),
        probe_peak_share=peak_share(probe_det),
        probe_period_hours=probe_period_hours,
    )


__all__ = [
    "ProbingComparison",
    "sample_log_detection",
    "sample_probe_detection",
    "peak_share",
    "compare_detection",
]
