"""The FMS pipeline: raw failures in, closed FOTs out.

Runs on the discrete-event queue so that repeat failures — scheduled
*while* processing the ticket that "fixed" them — interleave correctly
with everything else, exactly like the real FMS of Figure 1:

1. a detection agent (or a human) reports a failure;
2. the FMS classifies it: false alarm (1.7 %), out-of-warranty
   (D_error: decommission, no operator response recorded), or D_fixing;
3. for D_fixing / D_falsealarm an operator eventually closes the ticket
   (the response model decides when, and with which user id);
4. an ineffective repair schedules the same failure again.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.columns import ColumnBuilder
from repro.core.dataset import FOTDataset
from repro.core.types import (
    ComponentClass,
    FOTCategory,
    OperatorAction,
)
from repro.fleet.fleet import Fleet
from repro.fms.detectors import DetectionModel
from repro.fms.operators import OperatorModel
from repro.fms.repair import RepairModel
from repro.simulation import calibration
from repro.simulation.engine import EventQueue
from repro.simulation.events import RawFailure

#: Linux block-device letters for drive detail strings.
_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def device_detail(component: ComponentClass, slot: int) -> str:
    """Human-style device identifier, e.g. ``sdc2`` or ``fan_3``."""
    if component is ComponentClass.HDD:
        return f"sd{_ALPHABET[slot % 26]}{slot % 9 + 1}"
    if component is ComponentClass.SSD:
        return f"nvme{slot}n1"
    if component is ComponentClass.MEMORY:
        return f"DIMM_{_ALPHABET[slot % 8].upper()}{slot % 2}"
    if component is ComponentClass.FAN:
        return f"fan_{slot + 1}"
    if component is ComponentClass.POWER:
        return f"psu_{slot + 1}"
    if component is ComponentClass.CPU:
        return f"cpu_{slot}"
    if component is ComponentClass.FLASH_CARD:
        return f"flash_{slot}"
    if component is ComponentClass.RAID_CARD:
        return "raid_ctrl_0"
    if component is ComponentClass.HDD_BACKBOARD:
        return "backboard_0"
    if component is ComponentClass.MOTHERBOARD:
        return "mb_0"
    return "manual_report"


class FMSPipeline:
    """Event-driven ticket processing for one scenario."""

    def __init__(
        self,
        fleet: Fleet,
        horizon_seconds: float,
        rng: np.random.Generator,
        lemon_rows: Optional[set] = None,
        detection: Optional[DetectionModel] = None,
        operators: Optional[OperatorModel] = None,
        repair: Optional[RepairModel] = None,
        chain_id_base: int = 0,
    ):
        """``fleet`` may be any object exposing a ``servers`` sequence
        (the sharded engine passes a per-DC slice); a full
        :class:`~repro.fleet.fleet.Fleet` is only required when
        ``operators`` is left to the default.  ``chain_id_base`` offsets
        FMS-grown repeat-chain ids so shards of one run never collide."""
        self.fleet = fleet
        self.chain_id_base = int(chain_id_base)
        self.horizon = float(horizon_seconds)
        self._rng = rng
        self.lemon_rows = lemon_rows or set()
        self.detection = detection or DetectionModel()
        self.operators = operators or OperatorModel(fleet, rng)
        self.repair = repair or RepairModel(rng)
        self._warranty = None  # set in run() from config via fleet ages

        # Pre-computed per-class type samplers (cumulative probabilities).
        self._type_names: Dict[ComponentClass, List[str]] = {}
        self._type_cum: Dict[ComponentClass, np.ndarray] = {}
        for cls, mix in calibration.TYPE_MIX.items():
            names = sorted(mix)
            probs = np.asarray([mix[n] for n in names], dtype=float)
            self._type_names[cls] = names
            self._type_cum[cls] = np.cumsum(probs / probs.sum())
        # Fatal types per class, for warning -> fatal escalation.
        from repro.core.failure_types import REGISTRY

        self._fatal_types: Dict[ComponentClass, List[str]] = {}
        for cls, mix in calibration.TYPE_MIX.items():
            self._fatal_types[cls] = [
                name for name in mix if REGISTRY[name].fatal
            ]

        self.stats: Dict[str, int] = {
            "events_in": 0,
            "dropped_beyond_horizon": 0,
            "false_alarms": 0,
            "out_of_warranty": 0,
            "repairs": 0,
            "repeats_scheduled": 0,
            "escalations": 0,
        }

    # ------------------------------------------------------------------
    def _sample_type(self, component: ComponentClass) -> str:
        cum = self._type_cum[component]
        idx = int(np.searchsorted(cum, self._rng.random(), side="right"))
        idx = min(idx, len(self._type_names[component]) - 1)
        return self._type_names[component][idx]

    # ------------------------------------------------------------------
    def run(
        self,
        raw_events: Sequence[RawFailure],
        warranty_seconds: float,
    ) -> FOTDataset:
        """Process every raw failure (plus the repeats they spawn) into
        a time-ordered FOT dataset."""
        return FOTDataset.from_store(self.run_store(raw_events, warranty_seconds))

    def run_store(
        self,
        raw_events: Sequence[RawFailure],
        warranty_seconds: float,
    ):
        """Like :meth:`run` but return the raw
        :class:`~repro.core.columns.ColumnStore` — the sharded engine
        ships these arrays between processes and concatenates once."""
        queue = EventQueue()
        for raw in raw_events:
            queue.schedule(raw.time, raw)

        builder = ColumnBuilder()
        fot_id = 0
        next_chain = self.chain_id_base
        chain_lengths: Dict[int, int] = {}
        servers = self.fleet.servers

        for time, raw in queue.drain():
            self.stats["events_in"] += 1
            if time >= self.horizon:
                self.stats["dropped_beyond_horizon"] += 1
                continue
            server = servers[raw.server_row]
            component = raw.component
            error_type = raw.forced_type or self._sample_type(component)
            source = self.detection.source_for(component)
            is_lemon = raw.server_row in self.lemon_rows
            detail: Dict[str, object] = {"tag": raw.tag}
            if raw.chain_id is not None:
                detail["chain_id"] = raw.chain_id

            is_false_alarm = (
                not raw.suppress_repeat
                and self._rng.random() < calibration.FALSE_ALARM_RATE
            )
            in_warranty = server.in_warranty(time, warranty_seconds)

            action: Optional[OperatorAction] = None
            operator_id: Optional[str] = None
            op_time: Optional[float] = None

            if is_false_alarm:
                category = FOTCategory.FALSE_ALARM
                action = OperatorAction.MARK_FALSE_ALARM
                op_time, operator_id = self.operators.close_false_alarm(
                    server.product_line, time
                )
                self.stats["false_alarms"] += 1
            elif not in_warranty:
                # Out-of-warranty: not repaired, set to decommission; the
                # ticket carries no operator-response fields (Table I).
                category = FOTCategory.ERROR
                self.stats["out_of_warranty"] += 1
            else:
                category = FOTCategory.FIXING
                action = OperatorAction.REPAIR_ORDER
                op_time, operator_id = self.operators.close_fixing(
                    component,
                    server.product_line,
                    time,
                    server.age_seconds(time),
                    is_lemon,
                )
                self.stats["repairs"] += 1

            builder.append(
                fot_id=fot_id,
                host_id=server.host_id,
                hostname=server.hostname,
                host_idc=server.idc,
                error_device=component,
                error_type=error_type,
                error_time=time,
                error_position=server.position,
                error_detail=device_detail(component, raw.slot),
                category=category,
                source=source,
                product_line=server.product_line,
                deployed_at=server.deployed_at,
                device_slot=raw.slot,
                action=action,
                operator_id=operator_id,
                op_time=op_time,
                detail=detail,
            )
            fot_id += 1

            # Ineffective repair -> the same failure comes back.
            if (
                category is FOTCategory.FIXING
                and op_time is not None
                and not raw.suppress_repeat
            ):
                if raw.chain_id is not None and raw.chain_id in chain_lengths:
                    chain_id = raw.chain_id
                else:
                    chain_id = next_chain
                    next_chain += 1
                    chain_lengths[chain_id] = 0
                delay = self.repair.repeat_delay(is_lemon, chain_lengths[chain_id])
                if delay is not None:
                    repeat_time = op_time + delay
                    if repeat_time < self.horizon:
                        chain_lengths[chain_id] += 1
                        self.stats["repeats_scheduled"] += 1
                        # A recurring warning often escalates: the SMART
                        # alert that came back becomes a dead drive
                        # (Section III-A: warnings precede fatal
                        # failures — the basis of the team's predictor).
                        repeat_type = error_type
                        fatal_options = self._fatal_types.get(component, [])
                        is_warning = repeat_type not in fatal_options
                        if (
                            is_warning
                            and fatal_options
                            and self._rng.random()
                            < calibration.ESCALATION_PROB
                        ):
                            repeat_type = fatal_options[
                                int(self._rng.integers(len(fatal_options)))
                            ]
                            self.stats["escalations"] += 1
                        queue.schedule(
                            max(repeat_time, time),
                            RawFailure(
                                time=max(repeat_time, time),
                                server_row=raw.server_row,
                                component=component,
                                slot=raw.slot,
                                forced_type=repeat_type,
                                tag="repeat",
                                chain_id=chain_id,
                            ),
                        )

        return builder.build()


__all__ = ["FMSPipeline", "device_detail"]
