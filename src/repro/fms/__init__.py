"""Failure Management System (FMS) substrate.

Implements the workflow of Figure 1 in the paper: detection agents on
the hosts (syslog listeners and status pollers) plus manual operator
reports feed a central ticket store; operators review the failure pool
— often lazily and in batches — and close each ticket with a repair
order, a decommission decision, or a false-alarm mark.

* :mod:`repro.fms.detectors` — detection sources and the hour-of-day /
  day-of-week detection profiles (log-based detection fires under load).
* :mod:`repro.fms.operators` — the operator response-time model.
* :mod:`repro.fms.repair` — repair effectiveness and repeat scheduling.
* :mod:`repro.fms.pipeline` — the event-driven pipeline turning raw
  failures into closed FOTs.
"""

from repro.fms.detectors import DetectionModel
from repro.fms.operators import OperatorModel
from repro.fms.repair import RepairModel
from repro.fms.pipeline import FMSPipeline
from repro.fms import probing

__all__ = ["DetectionModel", "OperatorModel", "RepairModel", "FMSPipeline", "probing"]
