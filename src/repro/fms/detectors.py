"""Detection model: how and *when* failures become tickets.

The paper's FMS detects ~90 % of failures automatically, by listening to
syslogs or by periodically polling device status; the remaining ~10 %
are manual miscellaneous reports (Section II-A).  Detection timing is
not uniform (Figures 3/4) because:

1. log-based detection only fires when the component gets used, so
   workload-coupled classes (HDD, memory, ...) follow the diurnal
   workload curve;
2. polled classes bunch up right after each poll tick;
3. manual reports need the human in the loop, so they follow working
   days and working hours.

:class:`DetectionModel` owns those profiles.  The trace generator asks
it for per-hour and per-day weights when timestamping failures, and for
the detection source recorded on each ticket.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.timeutil import HOUR
from repro.core.types import ComponentClass, DetectionSource
from repro.simulation import calibration


class DetectionModel:
    """Per-class detection sources and temporal detection profiles."""

    #: Classes whose agents listen to syslog (detection gated by use).
    SYSLOG_CLASSES = (
        ComponentClass.HDD,
        ComponentClass.MEMORY,
        ComponentClass.FLASH_CARD,
        ComponentClass.SSD,
    )

    def __init__(self) -> None:
        self._hour_weights: Dict[ComponentClass, np.ndarray] = {}
        self._dow_weights: Dict[ComponentClass, np.ndarray] = {}
        for cls in ComponentClass:
            self._hour_weights[cls] = self._build_hour_profile(cls)
            self._dow_weights[cls] = self._build_dow_profile(cls)

    # ------------------------------------------------------------------
    def source_for(self, component: ComponentClass) -> DetectionSource:
        """Which detector reports failures of this class."""
        if component is ComponentClass.MISC:
            return DetectionSource.MANUAL
        if component in self.SYSLOG_CLASSES:
            return DetectionSource.SYSLOG
        return DetectionSource.POLLING

    # ------------------------------------------------------------------
    def _build_hour_profile(self, cls: ComponentClass) -> np.ndarray:
        if cls is ComponentClass.MISC:
            weights = np.asarray(calibration.MANUAL_HOURS, dtype=float)
        elif cls in calibration.POLLING_CLASSES:
            # Uniform base with a concentration boost at poll-tick hours.
            weights = np.ones(24, dtype=float)
            period = calibration.POLLING_PERIOD_HOURS
            ticks = np.arange(0, 24, period)
            n_ticks = ticks.size
            conc = calibration.POLLING_CONCENTRATION
            # Spread `conc` of the mass over the tick hours, the rest
            # uniformly over all 24 hours.
            weights *= (1.0 - conc) / 24.0
            weights[ticks] += conc / n_ticks
        else:
            coupling = calibration.WORKLOAD_COUPLING[cls]
            workload = np.asarray(calibration.WORKLOAD_BY_HOUR, dtype=float)
            workload = workload / workload.mean()
            weights = (1.0 - coupling) + coupling * workload
        return weights / weights.sum()

    def _build_dow_profile(self, cls: ComponentClass) -> np.ndarray:
        if cls is ComponentClass.MISC:
            weights = np.asarray(calibration.DOW_MANUAL, dtype=float)
        else:
            weights = np.asarray(calibration.DOW_AUTOMATIC, dtype=float)
        return weights / weights.sum()

    # ------------------------------------------------------------------
    def hour_weights(self, component: ComponentClass) -> np.ndarray:
        """Probability of detection landing in each hour 0-23."""
        return self._hour_weights[component]

    def dow_weights(self, component: ComponentClass) -> np.ndarray:
        """Relative detection weight per day of week (Mon..Sun),
        normalized to sum to 1."""
        return self._dow_weights[component]

    def sample_time_of_day(
        self, component: ComponentClass, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Seconds-within-day offsets following the class's hour profile."""
        hours = rng.choice(24, size=size, p=self._hour_weights[component])
        return hours * HOUR + rng.uniform(0.0, HOUR, size=size)


__all__ = ["DetectionModel"]
