"""Operator response model — Section VI of the paper.

The response time ``RT = op_time - error_time`` in the paper is long and
wildly variable because of *behaviour*, not incapacity:

* lines with resilient software (large Hadoop clusters) see no urgency —
  redundancy is restored automatically, so operators batch failures up
  and review the pool periodically;
* the busiest (top 1 %) lines review on long fixed cycles (median HDD RT
  ≈ 47 days), while many *small* lines have nobody watching and median
  RTs beyond 100 days;
* strict online-service lines (the ones that afford SSDs) respond within
  hours;
* miscellaneous tickets filed during the deployment phase are closed
  almost immediately (installation/testing is streamlined);
* flapping ("lemon") components are marked solved by an automatic
  reboot within hours — which is exactly why they repeat.

:class:`OperatorModel` turns those behaviours into per-ticket close
times and operator ids.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.core.timeutil import DAY
from repro.core.types import ComponentClass
from repro.fleet.fleet import Fleet
from repro.simulation import calibration


class OperatorModel:
    """Samples operator close times for tickets."""

    def __init__(self, fleet: Fleet, rng: np.random.Generator):
        self._rng = rng
        self._line_review: Dict[str, float] = {}
        self._line_phase: Dict[str, float] = {}
        self._line_ft: Dict[str, float] = {}
        self._line_ops: Dict[str, Tuple[str, ...]] = {}

        lines = list(fleet.product_lines.values())
        # The "top 1 %" lines by size get long fixed review cycles.
        by_size = sorted(lines, key=lambda pl: pl.expected_servers, reverse=True)
        n_top = max(1, int(math.ceil(len(lines) * calibration.TOP_LINE_FRACTION)))
        top_names = {pl.name for pl in by_size[:n_top]}

        lo, hi = calibration.TOP_LINE_REVIEW_DAYS
        for pl in lines:
            if pl.name in top_names:
                review = float(rng.uniform(lo, hi))
            else:
                review = pl.review_interval_days
            self._line_review[pl.name] = review * DAY
            self._line_phase[pl.name] = float(rng.uniform(0.0, max(review, 1.0) * DAY))
            self._line_ft[pl.name] = pl.fault_tolerance
            self._line_ops[pl.name] = tuple(
                f"op-{pl.name}-{k}" for k in range(calibration.OPERATORS_PER_LINE)
            )

    # ------------------------------------------------------------------
    def with_rng(self, rng: np.random.Generator) -> "OperatorModel":
        """A clone drawing per-ticket randomness from ``rng``.

        The per-line behaviour tables (review cycles, phases, operator
        pools) are *shared* with the parent, not re-drawn — every shard
        of a sharded run must see the same line behaviour or the same
        ticket would close at different times depending on which shard
        processed it.
        """
        clone = object.__new__(OperatorModel)
        clone._rng = rng
        clone._line_review = self._line_review
        clone._line_phase = self._line_phase
        clone._line_ft = self._line_ft
        clone._line_ops = self._line_ops
        return clone

    # ------------------------------------------------------------------
    def _pick_operator(self, line: str) -> str:
        ops = self._line_ops.get(line)
        if not ops:
            return "op-unknown"
        return ops[int(self._rng.integers(len(ops)))]

    def _lognormal(self, median_seconds: float, sigma: float) -> float:
        return float(self._rng.lognormal(np.log(median_seconds), sigma))

    def _next_review(self, line: str, after: float) -> float:
        """First periodic pool-review epoch at or after ``after``."""
        interval = self._line_review.get(line, 0.0)
        if interval <= 0:
            return after
        phase = self._line_phase.get(line, 0.0)
        k = math.ceil((after - phase) / interval)
        return phase + max(k, 0) * interval

    # ------------------------------------------------------------------
    def close_false_alarm(self, line: str, error_time: float) -> Tuple[float, str]:
        """Close time and operator for a false-alarm ticket.

        paper (Fig 9): median 4.9 days, mean 19.1 days.
        """
        rt = self._lognormal(
            calibration.FALSE_ALARM_RT_MEDIAN_DAYS * DAY,
            calibration.FALSE_ALARM_RT_SIGMA,
        )
        return error_time + rt, self._pick_operator(line)

    def close_fixing(
        self,
        component: ComponentClass,
        line: str,
        error_time: float,
        server_age_seconds: float,
        is_lemon: bool,
    ) -> Tuple[float, str]:
        """Close time and operator for a D_fixing ticket (issue the RO)."""
        operator = self._pick_operator(line)

        if is_lemon:
            # Automatic recovery reboots the server and the problem is
            # marked solved within hours (the BBU anecdote).
            rt = self._lognormal(calibration.LEMON_RT_MEDIAN_DAYS * DAY, 0.8)
            return error_time + rt, operator

        if (
            component is ComponentClass.MISC
            and server_age_seconds < calibration.DEPLOYMENT_PHASE_DAYS * DAY
        ):
            rt = self._lognormal(calibration.DEPLOYMENT_RT_MEDIAN_DAYS * DAY, 0.9)
            return error_time + rt, operator

        ft = self._line_ft.get(line, 0.5)
        line_mult = calibration.RT_FT_BASE + calibration.RT_FT_GAIN * ft * ft
        median = calibration.RT_CLASS_MEDIAN_DAYS[component] * DAY * line_mult
        rt = self._lognormal(median, calibration.RT_SIGMA)
        close_at = error_time + rt

        if component is ComponentClass.SSD:
            # Only crucial user-facing services afford SSDs, and their
            # operation guidelines are strict: no pool batching.
            return error_time + rt, operator

        batching_prob = min(
            0.9, calibration.RT_BATCHING_BASE + calibration.RT_BATCHING_FT_GAIN * ft
        )
        # Lines nobody watches closely (very long review cycles) almost
        # always wait for the periodic pool review.
        if self._line_review.get(line, 0.0) > 60 * DAY:
            batching_prob = max(batching_prob, 0.8)
        if self._rng.random() < batching_prob:
            close_at = self._next_review(line, close_at)
        return close_at, operator

    def review_interval_seconds(self, line: str) -> float:
        """Exposed for tests and the operator-behaviour example."""
        return self._line_review.get(line, 0.0)


__all__ = ["OperatorModel"]
