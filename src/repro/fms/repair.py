"""Repair effectiveness and repeat scheduling — Section III-D.

Operators "repair" a component by replacing the whole module, which
works most of the time: over 85 % of fixed components never repeat the
same failure.  When the replacement does not address the root cause
(a flapping BBU, a marginal backboard), the same failure comes back —
and for "lemon" servers it comes back again and again, because each
automatic reboot marks the ticket solved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.timeutil import DAY
from repro.simulation import calibration


class RepairModel:
    """Decides whether a repaired component fails again, and when."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def repeat_delay(self, is_lemon: bool, chain_length: int) -> Optional[float]:
        """Seconds from ticket close to the repeat failure, or ``None``
        when the repair sticks.

        Args:
            is_lemon: Server whose root cause replacements never fix.
            chain_length: How many times this component has already
                repeated (0 = the original failure).
        """
        if chain_length < 0:
            raise ValueError("chain_length must be >= 0")
        if is_lemon:
            if chain_length >= calibration.MAX_CHAIN_LEMON:
                # Someone finally diagnoses the root cause (the BBU).
                return None
            prob = (
                calibration.REPEAT_PROB_LEMON
                if chain_length == 0
                else calibration.REPEAT_PROB_LEMON_CONT
            )
            median = calibration.REPEAT_DELAY_MEDIAN_DAYS_LEMON * DAY
        else:
            if chain_length >= calibration.MAX_CHAIN_NORMAL:
                return None
            prob = (
                calibration.REPEAT_PROB_NORMAL
                if chain_length == 0
                else calibration.REPEAT_PROB_NORMAL_CONT
            )
            median = calibration.REPEAT_DELAY_MEDIAN_DAYS * DAY

        if self._rng.random() >= prob:
            return None
        return float(
            self._rng.lognormal(np.log(median), calibration.REPEAT_DELAY_SIGMA)
        )

    def expected_repeats(self, is_lemon: bool) -> float:
        """Expected chain length (repeats per original failure) — used
        by tests to sanity-check the geometric model."""
        if is_lemon:
            p0, pc = calibration.REPEAT_PROB_LEMON, calibration.REPEAT_PROB_LEMON_CONT
        else:
            p0, pc = calibration.REPEAT_PROB_NORMAL, calibration.REPEAT_PROB_NORMAL_CONT
        return p0 / (1.0 - pc)


__all__ = ["RepairModel"]
