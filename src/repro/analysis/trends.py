"""Calendar-time trends over the study window.

The paper's limitation section (VII-C) warns that the trace is not
stationary: the FMS "incrementally rolled out ... during the four years",
the fleet grows, hardware cohorts age through the window.  Before
trusting any whole-window statistic on a real dump, an analyst should
look at the calendar trends this module computes:

* failures per calendar quarter (fleet growth + aging),
* per-class share drift across the window (cohort/technology shifts),
* detection-source mix over time (monitoring rollout),
* daily-count dispersion per quarter (are batches an era or endemic?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.batch import daily_counts
from repro.core.columns import SOURCE_CODE
from repro.core.dataset import FOTDataset
from repro.core.timeutil import DAY
from repro.core.types import ComponentClass, DetectionSource
from repro.stats.dispersion import DispersionResult, dispersion_test

#: Days per reporting bucket (a calendar quarter, near enough).
QUARTER_DAYS = 90


@dataclass(frozen=True)
class TrendReport:
    """Per-quarter evolution of a ticket stream."""

    quarter_starts_days: np.ndarray
    failures_per_quarter: np.ndarray
    hdd_share_per_quarter: np.ndarray
    manual_share_per_quarter: np.ndarray
    dispersion_per_quarter: List[Optional[DispersionResult]]

    @property
    def n_quarters(self) -> int:
        return int(self.quarter_starts_days.size)

    def growth_factor(self) -> float:
        """Failure volume of the last quarter over the first (fleet
        growth + wear-out compound into > 1 on a growing fleet)."""
        first = float(self.failures_per_quarter[0])
        if first == 0:
            raise ValueError("first quarter has no failures")
        return float(self.failures_per_quarter[-1]) / first


def quarterly_trends(dataset: FOTDataset) -> TrendReport:
    """Compute the per-quarter trend report."""
    failures = dataset.failures()
    if len(failures) == 0:
        raise ValueError("no failures in dataset")
    times = failures.error_times
    n_days = int(times.max() // DAY) + 1
    n_quarters = max(1, n_days // QUARTER_DAYS)

    counts = np.zeros(n_quarters)
    hdd_share = np.zeros(n_quarters)
    manual_share = np.zeros(n_quarters)
    dispersions: List[Optional[DispersionResult]] = []

    hdd_code_mask = failures.component_codes
    from repro.core.dataset import COMPONENT_ORDER

    hdd_idx = COMPONENT_ORDER.index(ComponentClass.HDD)
    quarter_of = (times // (QUARTER_DAYS * DAY)).astype(int)
    quarter_of = np.minimum(quarter_of, n_quarters - 1)

    manual_flags = failures.source_codes == SOURCE_CODE[DetectionSource.MANUAL]

    daily = daily_counts(dataset, ComponentClass.HDD, n_days)
    for q in range(n_quarters):
        mask = quarter_of == q
        total = int(mask.sum())
        counts[q] = total
        if total:
            hdd_share[q] = float((hdd_code_mask[mask] == hdd_idx).mean())
            manual_share[q] = float(manual_flags[mask].mean())
        lo, hi = q * QUARTER_DAYS, min(n_days, (q + 1) * QUARTER_DAYS)
        window = daily[lo:hi]
        if window.size >= 2 and window.sum() > 0:
            dispersions.append(dispersion_test(window))
        else:
            dispersions.append(None)

    return TrendReport(
        quarter_starts_days=np.arange(n_quarters) * QUARTER_DAYS,
        failures_per_quarter=counts,
        hdd_share_per_quarter=hdd_share,
        manual_share_per_quarter=manual_share,
        dispersion_per_quarter=dispersions,
    )


def class_share_drift(
    dataset: FOTDataset, component: ComponentClass, n_buckets: int = 8
) -> np.ndarray:
    """Share of one class per equal-width calendar bucket — a quick
    stationarity check before pooling a whole window."""
    failures = dataset.failures()
    if len(failures) == 0:
        raise ValueError("no failures in dataset")
    if n_buckets < 2:
        raise ValueError("need at least 2 buckets")
    times = failures.error_times
    edges = np.linspace(times.min(), times.max() + 1.0, n_buckets + 1)
    bucket = np.clip(
        np.searchsorted(edges, times, side="right") - 1, 0, n_buckets - 1
    )
    from repro.core.dataset import COMPONENT_ORDER

    target = COMPONENT_ORDER.index(component)
    is_target = failures.component_codes == target
    out = np.zeros(n_buckets)
    for b in range(n_buckets):
        mask = bucket == b
        if mask.any():
            out[b] = float(is_target[mask].mean())
    return out


__all__ = ["QUARTER_DAYS", "TrendReport", "quarterly_trends", "class_share_drift"]
