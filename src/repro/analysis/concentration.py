"""Failure concentration across servers — Figure 7 (Section III-C).

The paper observes that failures are "extremely non-uniformly
distributed among the individual servers": a tiny fraction of the
servers that ever failed accounts for the bulk of all failures.  This
module computes the concentration curve (the CDF of failures against the
fraction of ever-failed servers, most-failing first), top-share
statistics, and a Gini coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.stats.empirical import gini


@dataclass(frozen=True)
class ConcentrationCurve:
    """Failure concentration over ever-failed servers.

    ``server_fraction[i]`` is the fraction of ever-failed servers
    considered (ordered by descending failure count) and
    ``failure_fraction[i]`` the fraction of all failures they hold.
    """

    server_fraction: np.ndarray
    failure_fraction: np.ndarray
    failures_per_server: np.ndarray
    n_failed_servers: int
    n_failures: int
    gini: float

    def share_of_top(self, fraction: float) -> float:
        """Fraction of failures held by the top ``fraction`` of
        ever-failed servers (e.g. ``share_of_top(0.02)``)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        k = max(1, int(np.ceil(fraction * self.n_failed_servers)))
        return float(self.failures_per_server[:k].sum() / self.n_failures)

    def servers_for_share(self, share: float) -> float:
        """Smallest fraction of ever-failed servers holding at least
        ``share`` of all failures."""
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share}")
        idx = int(np.searchsorted(self.failure_fraction, share, side="left"))
        idx = min(idx, self.server_fraction.size - 1)
        return float(self.server_fraction[idx])


def failure_concentration(dataset: FOTDataset) -> ConcentrationCurve:
    """Build Figure 7 from a dataset (failures only)."""
    failures = dataset.failures()
    if len(failures) == 0:
        raise ValueError("no failures in dataset")
    _, counts = np.unique(failures.host_ids, return_counts=True)
    counts = np.sort(counts)[::-1].astype(float)
    n_servers = counts.size
    n_failures = float(counts.sum())
    cum = np.cumsum(counts) / n_failures
    server_frac = np.arange(1, n_servers + 1) / n_servers
    return ConcentrationCurve(
        server_fraction=server_frac,
        failure_fraction=cum,
        failures_per_server=counts,
        n_failed_servers=int(n_servers),
        n_failures=int(n_failures),
        gini=gini(counts),
    )


def ever_failed_fraction(dataset: FOTDataset, n_servers_total: int) -> float:
    """Fraction of the whole fleet that ever failed."""
    if n_servers_total <= 0:
        raise ValueError("fleet size must be positive")
    failures = dataset.failures()
    n_failed = int(np.unique(failures.host_ids).size)
    return n_failed / n_servers_total


def concentration_series(
    curve: ConcentrationCurve, n_points: int = 100
) -> Tuple[np.ndarray, np.ndarray]:
    """Downsampled (server fraction, failure fraction) series for
    reporting — the Figure 7 line."""
    n = curve.server_fraction.size
    if n <= n_points:
        return curve.server_fraction, curve.failure_fraction
    idx = np.unique(np.linspace(0, n - 1, n_points).round().astype(int))
    return curve.server_fraction[idx], curve.failure_fraction[idx]


__all__ = [
    "ConcentrationCurve",
    "failure_concentration",
    "ever_failed_fraction",
    "concentration_series",
]
