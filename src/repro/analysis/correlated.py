"""Correlated component failures — Section V-B (Tables VI and VII).

A *correlated component failure* is two different component classes
failing on the same server within a single day.  The paper finds them
rare (0.49 % of ever-failed servers), never involving more than two
classes, dominated by pairs with a miscellaneous report (71.5 % — the
operator noticed the hardware failure and filed a ticket too), with
hard drives in nearly all the remaining pairs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.columns import COMPONENT_CODE, COMPONENT_ORDER
from repro.core.dataset import FOTDataset
from repro.core.grouping import composite_key, group_slices
from repro.core.ticket import FOT
from repro.core.timeutil import day_index
from repro.core.types import ComponentClass

#: An unordered class pair, stored sorted by enum value for stability.
ClassPair = Tuple[ComponentClass, ComponentClass]


def _pair(a: ComponentClass, b: ComponentClass) -> ClassPair:
    return (a, b) if a.value <= b.value else (b, a)


@dataclass(frozen=True)
class CorrelatedStats:
    """Table VI plus the Section V-B headline ratios."""

    pair_counts: Dict[ClassPair, int]
    n_correlated_servers: int
    n_failed_servers: int
    misc_share: float
    hdd_share_of_non_misc: float

    @property
    def correlated_server_fraction(self) -> float:
        """paper: 0.49 % of all servers that ever failed."""
        if self.n_failed_servers == 0:
            raise ValueError("no failed servers")
        return self.n_correlated_servers / self.n_failed_servers

    def total_pairs(self) -> int:
        return sum(self.pair_counts.values())


def _same_day_pairs(dataset: FOTDataset) -> Dict[Tuple[int, int], set]:
    """(host, day) -> set of component classes failing that day."""
    failures = dataset.failures()
    days = day_index(failures.error_times).astype(np.int64)
    # Dedup (host, day, class) triples in numpy, then expand the much
    # smaller unique set into the dict-of-sets the callers consume.
    n_classes = len(COMPONENT_ORDER)
    triples = np.unique(
        composite_key(failures.host_ids, days) * n_classes
        + failures.component_codes.astype(np.int64)
    )
    day_low = int(days.min()) if days.size else 0
    day_span = (int(days.max()) - day_low + 1) if days.size else 1
    out: Dict[Tuple[int, int], set] = defaultdict(set)
    for triple in triples:
        host_day, code = divmod(int(triple), n_classes)
        host, day = divmod(host_day, day_span)
        out[(host, day + day_low)].add(COMPONENT_ORDER[code])
    return out


def component_pair_counts(dataset: FOTDataset) -> CorrelatedStats:
    """Table VI: count same-server same-day class pairs.

    Days where more than two classes fail contribute every unordered
    pair (the paper observes at most two classes in its data, so this
    matters only for robustness on other datasets).
    """
    failures = dataset.failures()
    if len(failures) == 0:
        raise ValueError("no failures in dataset")
    by_host_day = _same_day_pairs(dataset)

    pair_counts: Dict[ClassPair, int] = defaultdict(int)
    correlated_servers = set()
    misc_pairs = 0
    non_misc_pairs = 0
    non_misc_with_hdd = 0
    for (host, _), classes in by_host_day.items():
        if len(classes) < 2:
            continue
        correlated_servers.add(host)
        ordered = sorted(classes, key=lambda c: c.value)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                pair_counts[_pair(a, b)] += 1
                if ComponentClass.MISC in (a, b):
                    misc_pairs += 1
                else:
                    non_misc_pairs += 1
                    if ComponentClass.HDD in (a, b):
                        non_misc_with_hdd += 1

    total_pairs = misc_pairs + non_misc_pairs
    n_failed = int(np.unique(failures.host_ids).size)
    return CorrelatedStats(
        pair_counts=dict(pair_counts),
        n_correlated_servers=len(correlated_servers),
        n_failed_servers=n_failed,
        misc_share=misc_pairs / total_pairs if total_pairs else 0.0,
        hdd_share_of_non_misc=(
            non_misc_with_hdd / non_misc_pairs if non_misc_pairs else 0.0
        ),
    )


@dataclass(frozen=True)
class PairExample:
    """A concrete correlated-failure instance (Table VII)."""

    host_id: int
    hostname: str
    first: FOT
    second: FOT

    @property
    def gap_seconds(self) -> float:
        return self.second.error_time - self.first.error_time


def find_pair_examples(
    dataset: FOTDataset,
    first_class: ComponentClass,
    second_class: ComponentClass,
    limit: int = 10,
) -> List[PairExample]:
    """Concrete same-server same-day examples of one class pair, like
    Table VII's fan/power incidents; ``first``/``second`` are ordered by
    detection time."""
    failures = dataset.failures()
    wanted = {first_class, second_class}
    wanted_codes = np.array(sorted(COMPONENT_CODE[c] for c in wanted))
    sub = failures.where(
        np.isin(failures.component_codes, wanted_codes)
    )
    days = day_index(sub.error_times).astype(np.int64)
    # Groups come back ordered by (host, day) — the same order the old
    # sorted-dict walk produced.
    order, starts, stops = group_slices(composite_key(sub.host_ids, days))

    examples: List[PairExample] = []
    for start, stop in zip(starts, stops):
        group = sub.take(order[start:stop])
        if np.unique(group.component_codes).size < len(wanted):
            continue
        host = int(group.host_ids[0])
        ordered: List[FOT] = group.sorted_by_time().tickets
        first = ordered[0]
        second = next(
            t for t in ordered if t.error_device in wanted - {first.error_device}
        )
        examples.append(
            PairExample(
                host_id=host,
                hostname=first.hostname,
                first=first,
                second=second,
            )
        )
        if len(examples) >= limit:
            break
    return examples


def independence_baseline(dataset: FOTDataset, n_days: int) -> float:
    """Expected probability that a failed server sees two *independent*
    failures on the same day — the paper's "less than 5 %" argument that
    observed pairs are not coincidences."""
    failures = dataset.failures()
    if len(failures) == 0 or n_days <= 0:
        raise ValueError("need failures and a positive day count")
    _, counts = np.unique(failures.host_ids, return_counts=True)
    # For a server with k failures thrown uniformly over n_days, the
    # chance two land on the same day is 1 - prod(1 - i/n_days).
    probs = []
    for k in counts:
        k = int(min(k, n_days))
        if k < 2:
            probs.append(0.0)
            continue
        log_no_collision = np.sum(np.log1p(-np.arange(k) / n_days))
        probs.append(1.0 - float(np.exp(log_no_collision)))
    return float(np.mean(probs))


__all__ = [
    "ClassPair",
    "CorrelatedStats",
    "component_pair_counts",
    "PairExample",
    "find_pair_examples",
    "independence_baseline",
]
