"""Repeating failures — Section III-D and Table VIII.

A *repeated failure* is a problem marked solved (the operator issued a
repair order, or an automatic reboot closed it) that then happens again:
same server, same component slot, same failure type.  The paper finds
that replacement-style repairs are effective — over 85 % of fixed
components never repeat — but a small population of servers (~4.5 % of
those that ever failed) flaps, with one extreme server reporting 400+
RAID/HDD failures from a single BBU root cause.

Some of those flapping servers repeat *synchronously* with a
near-identical neighbour (Table VIII), which this module detects by
matching failure timestamps across servers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.grouping import group_slices
from repro.core.timeutil import DAY
from repro.core.ticket import FOT
from repro.core.types import FOTCategory

#: A component identity for repeat detection: host, class, slot, type.
RepeatKey = Tuple[int, str, int, str]


@dataclass(frozen=True)
class RepeatingStats:
    """Headline repeat statistics (Section III-D)."""

    n_fixed_components: int
    n_repeating_components: int
    n_failed_servers: int
    n_repeating_servers: int
    max_failures_single_server: int
    max_failures_host_id: int

    @property
    def repeat_free_fraction(self) -> float:
        """Fraction of fixed components that never repeated (paper:
        over 85 %)."""
        if self.n_fixed_components == 0:
            raise ValueError("no fixed components")
        return 1.0 - self.n_repeating_components / self.n_fixed_components

    @property
    def repeating_server_fraction(self) -> float:
        """Fraction of ever-failed servers with repeating failures
        (paper: ~4.5 %)."""
        if self.n_failed_servers == 0:
            raise ValueError("no failed servers")
        return self.n_repeating_servers / self.n_failed_servers


def _repeat_key(ticket: FOT) -> RepeatKey:
    return (
        ticket.host_id,
        ticket.error_device.value,
        ticket.device_slot,
        ticket.error_type,
    )


#: Default linking window: a recurrence more than this long after the
#: previous occurrence is treated as a *new* failure of the replacement
#: module, not a repeat of the "solved" problem.
DEFAULT_REPEAT_WINDOW_DAYS = 60.0


def repeat_chains(
    dataset: FOTDataset,
    window_days: float = DEFAULT_REPEAT_WINDOW_DAYS,
) -> Dict[RepeatKey, List[FOT]]:
    """Group *fixed-then-recurred* failures by component identity.

    Two occurrences of the same (host, class, slot, type) are linked
    into a chain when the later one follows within ``window_days`` of
    the earlier — operators replace the whole module, so a failure of
    the same slot years later is the replacement wearing out, not an
    ineffective repair.  Only chains where a non-final occurrence was
    actually closed as D_fixing count (an unrepaired D_error component
    failing again is expected, not a repeat of a "solved" problem).
    Returned chains are time-ordered and have length >= 2.
    """
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    window = window_days * DAY
    by_key: Dict[RepeatKey, List[FOT]] = defaultdict(list)
    # The chain splitter consumes every FOT object (category flags,
    # per-occurrence gaps), so materializing each row once IS the work.
    for ticket in dataset.failures().sorted_by_time():  # reprolint: disable=RPL301 -- chain splitter consumes each FOT object
        by_key[_repeat_key(ticket)].append(ticket)

    chains: Dict[RepeatKey, List[FOT]] = {}
    for key, tickets in by_key.items():
        if len(tickets) < 2:
            continue
        # Split the occurrence list into runs with gaps <= window.
        run: List[FOT] = [tickets[0]]
        best: List[FOT] = []

        def consider(candidate: List[FOT]) -> None:
            nonlocal best
            if len(candidate) < 2:
                return
            if not any(t.category is FOTCategory.FIXING for t in candidate[:-1]):
                return
            if len(candidate) > len(best):
                best = list(candidate)

        for prev, cur in zip(tickets, tickets[1:]):
            if cur.error_time - prev.error_time <= window:
                run.append(cur)
            else:
                consider(run)
                run = [cur]
        consider(run)
        if best:
            chains[key] = best
    return chains


def repeating_stats(dataset: FOTDataset) -> RepeatingStats:
    """Compute the Section III-D headline numbers."""
    failures = dataset.failures()
    if len(failures) == 0:
        raise ValueError("no failures in dataset")

    fixed_components = {
        _repeat_key(t) for t in failures if t.category is FOTCategory.FIXING
    }
    chains = repeat_chains(dataset)
    repeating_components = set(chains) & fixed_components
    repeating_servers = {key[0] for key in chains}

    host_ids, counts = np.unique(failures.host_ids, return_counts=True)
    worst = int(np.argmax(counts))
    return RepeatingStats(
        n_fixed_components=len(fixed_components),
        n_repeating_components=len(repeating_components),
        n_failed_servers=int(host_ids.size),
        n_repeating_servers=len(repeating_servers),
        max_failures_single_server=int(counts[worst]),
        max_failures_host_id=int(host_ids[worst]),
    )


@dataclass(frozen=True)
class SynchronousGroup:
    """Servers whose failures repeatedly co-occur (Table VIII)."""

    host_ids: Tuple[int, ...]
    n_synchronized: int
    example_times: Tuple[float, ...]


def synchronous_groups(
    dataset: FOTDataset,
    window_seconds: float = 60.0,
    min_matches: int = 3,
    min_failures: int = 3,
) -> List[SynchronousGroup]:
    """Find pairs of servers that fail in lockstep.

    Two servers are synchronized when at least ``min_matches`` of their
    failure timestamps fall into the same ``window_seconds`` bucket.
    Only servers with at least ``min_failures`` failures are considered
    (singleton coincidences are unavoidable at fleet scale — the paper's
    point is the *repeated* alignment).
    """
    if window_seconds <= 0:
        raise ValueError("window must be positive")
    failures = dataset.failures()
    order, starts, stops = group_slices(failures.host_ids)
    eligible: Dict[int, np.ndarray] = {}
    for start, stop in zip(starts, stops):
        if stop - start < min_failures:
            continue
        rows = order[start:stop]
        eligible[int(failures.host_ids[rows[0]])] = failures.error_times[
            rows
        ]

    bucket_hosts: Dict[int, set] = defaultdict(set)
    for host, host_times in eligible.items():
        buckets = np.unique((host_times // window_seconds).astype(np.int64))
        for b in buckets:
            bucket_hosts[int(b)].add(host)

    pair_buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for bucket, hosts in bucket_hosts.items():
        if len(hosts) < 2 or len(hosts) > 50:
            # Very crowded buckets are batch failures, not synchronous
            # repeats; skip them (the batch analysis covers those).
            continue
        ordered = sorted(hosts)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                pair_buckets[(a, b)].append(bucket)

    groups: List[SynchronousGroup] = []
    for (a, b), buckets in pair_buckets.items():
        if len(buckets) >= min_matches:
            groups.append(
                SynchronousGroup(
                    host_ids=(a, b),
                    n_synchronized=len(buckets),
                    example_times=tuple(
                        float(bucket * window_seconds) for bucket in sorted(buckets)[:5]
                    ),
                )
            )
    groups.sort(key=lambda g: g.n_synchronized, reverse=True)
    return groups


__all__ = [
    "RepeatKey",
    "RepeatingStats",
    "repeat_chains",
    "repeating_stats",
    "SynchronousGroup",
    "synchronous_groups",
]
