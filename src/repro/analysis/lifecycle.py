"""Lifecycle failure rates — Figure 6 (Section III-C).

The paper computes the monthly failure rate of each component class as a
function of its *service age*: failures in service-month ``m`` divided
by the number of properly-working components that spent month ``m``
inside the observation window.  Component counts per server are known
for HDD/SSD/CPU; for other classes the paper assumes one per server.
All rates are normalized (confidentiality), so only the *shape* is
compared: infant mortality, stable period, wear-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.timeutil import month_of_service
from repro.core.types import ComponentClass
from repro.fleet.inventory import Inventory


@dataclass(frozen=True)
class LifecycleCurve:
    """Normalized monthly failure rate over service months."""

    component: ComponentClass
    months: np.ndarray
    #: Raw failure counts per service month.
    counts: np.ndarray
    #: Component-month exposure per service month (None = counts only).
    exposure: Optional[np.ndarray]
    #: Failure rate normalized to its maximum (the paper's presentation).
    normalized_rate: np.ndarray

    def share_before(self, month: int) -> float:
        """Fraction of observed failures before service month ``month``
        (e.g. RAID infant mortality: 47.4 % within the first six)."""
        total = self.counts.sum()
        if total == 0:
            raise ValueError("no failures in curve")
        return float(self.counts[:month].sum() / total)

    def share_after(self, month: int) -> float:
        """Fraction of observed failures at or after ``month`` (e.g.
        72.1 % of motherboard failures occur 3+ years in)."""
        return 1.0 - self.share_before(month)

    def mean_rate(self, lo: int, hi: int) -> float:
        """Mean (exposure-normalized) rate over months [lo, hi)."""
        if not 0 <= lo < hi <= self.normalized_rate.size:
            raise ValueError(f"bad month range [{lo}, {hi})")
        window = self.normalized_rate[lo:hi]
        return float(window.mean())


def monthly_failure_rates(
    dataset: FOTDataset,
    component: ComponentClass,
    inventory: Optional[Inventory] = None,
    n_months: int = 48,
    window: Optional[tuple] = None,
) -> LifecycleCurve:
    """Figure 6 for one component class.

    Args:
        dataset: The tickets.
        component: Class to analyze.
        inventory: Per-server metadata for the exposure denominator;
            without it the curve is count-based only (the denominator is
            assumed flat — acceptable for shape comparisons on fleets
            with stationary deployment).
        n_months: How many service months to report (the paper shows the
            first four years).
        window: (start, end) observation window in trace seconds;
            defaults to the dataset's own span.
    """
    failures = dataset.failures().of_component(component)
    if len(failures) == 0:
        raise ValueError(f"no failures for component {component}")
    months = month_of_service(failures.error_times, failures.deployed_ats).astype(int)
    counts = np.bincount(
        np.clip(months, 0, n_months - 1), minlength=n_months
    ).astype(float)
    # Months beyond the requested horizon were clipped into the last
    # bucket; drop them instead of inflating it.
    overflow = months >= n_months
    if overflow.any():
        counts[n_months - 1] -= float(overflow.sum())

    exposure = None
    if inventory is not None:
        if window is None:
            times = dataset.error_times
            window = (float(times.min()), float(times.max()) + 1.0)
        exposure = inventory.component_month_exposure(
            component, n_months, window[0], window[1]
        )

    if exposure is not None:
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(exposure > 0, counts / np.maximum(exposure, 1e-12), 0.0)
    else:
        rate = counts.copy()
    peak = rate.max()
    normalized = rate / peak if peak > 0 else rate
    return LifecycleCurve(
        component=component,
        months=np.arange(n_months),
        counts=counts,
        exposure=exposure,
        normalized_rate=normalized,
    )


def lifecycle_summary(
    dataset: FOTDataset,
    inventory: Optional[Inventory] = None,
    n_months: int = 48,
    min_failures: int = 50,
) -> Dict[ComponentClass, LifecycleCurve]:
    """Figure 6 across all classes with enough failures ("some
    components are omitted because the numbers of samples are small")."""
    out: Dict[ComponentClass, LifecycleCurve] = {}
    for cls, subset in dataset.failures().by_component().items():
        if len(subset) < min_failures:
            continue
        out[cls] = monthly_failure_rates(dataset, cls, inventory, n_months)
    return out


def infant_mortality_uplift(
    curve: LifecycleCurve, infant_months: int = 3, reference: tuple = (3, 9)
) -> float:
    """Relative uplift of the infant-mortality window over the reference
    window — the paper quotes ~20 % for HDDs (months 0-3 vs 4-9)."""
    infant = curve.mean_rate(0, infant_months)
    ref = curve.mean_rate(*reference)
    if ref == 0:
        raise ValueError("reference window has zero rate")
    return infant / ref - 1.0


__all__ = [
    "LifecycleCurve",
    "monthly_failure_rates",
    "lifecycle_summary",
    "infant_mortality_uplift",
]
