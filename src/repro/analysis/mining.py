"""Incident mining — the tool Section VII-B of the paper calls for.

The paper's FMS is stateless: every FOT is an island, so operators
re-diagnose repeating and batch failures from scratch ("the correlation
information is lost in FMS, and thus operators have to treat each FOT
independently").  The authors propose a data-mining tool that surfaces
the connections; this module is that tool:

* :func:`mine_incidents` clusters a ticket stream into *incidents* —
  repeat chains on one component, correlated multi-component events on
  one server, and fleet-level batch events — using only ticket fields
  (never the simulator's ground-truth tags).
* :func:`component_context` assembles the history an operator should see
  when a new FOT arrives: prior tickets on the same component, the same
  server, and any fleet-level batch in flight.

The miner is deliberately simple (union-find over pairwise linking
rules) so its behaviour is auditable — the quality the paper demands
from operator-facing tooling.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


import numpy as np

from repro.core.columns import COMPONENT_CODE
from repro.core.dataset import FOTDataset
from repro.core.ticket import FOT
from repro.core.timeutil import DAY, HOUR
from repro.core.types import ComponentClass
from repro.analysis.batch import detect_batches


@dataclass(frozen=True)
class Incident:
    """A group of FOTs the miner believes share one root cause.

    Attributes:
        incident_id: Stable index within this mining run.
        kind: ``"repeat"`` (one component flapping), ``"multi_component"``
            (several classes on one server, same day) or ``"batch"``
            (many servers, one class, short window).
        tickets: Member tickets, time-ordered.
        servers: Distinct host ids involved.
        span_seconds: Time from first to last member ticket.
        summary: One-line operator-facing description.
    """

    incident_id: int
    kind: str
    tickets: Tuple[FOT, ...]
    servers: Tuple[int, ...]
    span_seconds: float
    summary: str

    def __len__(self) -> int:
        return len(self.tickets)


class _UnionFind:
    """Minimal union-find over ticket indices."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _link_repeats(
    tickets: Sequence[FOT], uf: _UnionFind, window_seconds: float
) -> None:
    """Link consecutive tickets on the same (host, class, slot, type)."""
    by_component: Dict[tuple, List[int]] = defaultdict(list)
    for i, t in enumerate(tickets):
        by_component[(t.host_id, t.error_device, t.device_slot, t.error_type)].append(i)
    for indices in by_component.values():
        for a, b in zip(indices, indices[1:]):
            if tickets[b].error_time - tickets[a].error_time <= window_seconds:
                uf.union(a, b)


def _link_same_server_same_day(
    tickets: Sequence[FOT], uf: _UnionFind, window_seconds: float
) -> None:
    """Link different-class tickets on one server within a day."""
    by_host: Dict[int, List[int]] = defaultdict(list)
    for i, t in enumerate(tickets):
        by_host[t.host_id].append(i)
    for indices in by_host.values():
        for a, b in zip(indices, indices[1:]):
            close = tickets[b].error_time - tickets[a].error_time <= window_seconds
            different = tickets[a].error_device is not tickets[b].error_device
            if close and different:
                uf.union(a, b)


def _link_batches(
    tickets: Sequence[FOT],
    uf: _UnionFind,
    dataset: FOTDataset,
    min_batch: int,
) -> List[Tuple[float, float, ComponentClass]]:
    """Link tickets falling inside a detected fleet-level batch window."""
    windows: List[Tuple[float, float, ComponentClass]] = []
    for cls in (ComponentClass.HDD, ComponentClass.POWER,
                ComponentClass.MOTHERBOARD, ComponentClass.MEMORY):
        for event in detect_batches(dataset, cls, min_failures=min_batch):
            windows.append((event.start, event.end, cls))
    for start, end, cls in windows:
        members = [
            i for i, t in enumerate(tickets)
            if t.error_device is cls and start <= t.error_time <= end
        ]
        for a, b in zip(members, members[1:]):
            uf.union(a, b)
    return windows


def mine_incidents(
    dataset: FOTDataset,
    *,
    repeat_window_days: float = 60.0,
    same_server_window_hours: float = 24.0,
    min_batch: int = 25,
    min_incident_size: int = 2,
) -> List[Incident]:
    """Cluster a ticket stream into incidents.

    Three linking rules run over the failures (false alarms excluded),
    and connected components of the resulting graph become incidents:

    1. repeats: same component identity within ``repeat_window_days``;
    2. correlated components: different classes on one server within
       ``same_server_window_hours``;
    3. batches: same class inside a detected fleet-level batch window.

    Singleton tickets are not reported (they are the normal case — the
    whole point is surfacing the connected minority).
    """
    failures = dataset.failures().sorted_by_time()
    tickets = list(failures)
    if not tickets:
        return []
    uf = _UnionFind(len(tickets))
    _link_repeats(tickets, uf, repeat_window_days * DAY)
    _link_same_server_same_day(tickets, uf, same_server_window_hours * HOUR)
    _link_batches(tickets, uf, failures, min_batch)

    groups: Dict[int, List[int]] = defaultdict(list)
    for i in range(len(tickets)):
        groups[uf.find(i)].append(i)

    incidents: List[Incident] = []
    for members in groups.values():
        if len(members) < min_incident_size:
            continue
        group = [tickets[i] for i in members]
        group.sort(key=lambda t: t.error_time)
        servers = tuple(sorted({t.host_id for t in group}))
        classes = {t.error_device for t in group}
        span = group[-1].error_time - group[0].error_time

        if len(servers) >= 5:
            kind = "batch"
            top = max(classes, key=lambda c: sum(t.error_device is c for t in group))
            summary = (
                f"batch: {len(group)} {top.value} tickets across "
                f"{len(servers)} servers in {span / HOUR:.1f} h"
            )
        elif len(classes) > 1:
            kind = "multi_component"
            names = "+".join(sorted(c.value for c in classes))
            summary = (
                f"correlated {names} failures on host {servers[0]}"
            )
        else:
            kind = "repeat"
            t0 = group[0]
            summary = (
                f"repeating {t0.error_type} on host {t0.host_id} "
                f"{t0.error_detail} ({len(group)} occurrences over "
                f"{span / DAY:.1f} d)"
            )
        incidents.append(
            Incident(
                incident_id=len(incidents),
                kind=kind,
                tickets=tuple(group),
                servers=servers,
                span_seconds=span,
                summary=summary,
            )
        )
    incidents.sort(key=len, reverse=True)
    # Re-number after sorting so ids are stable and ordered by size.
    return [
        Incident(
            incident_id=i,
            kind=inc.kind,
            tickets=inc.tickets,
            servers=inc.servers,
            span_seconds=inc.span_seconds,
            summary=inc.summary,
        )
        for i, inc in enumerate(incidents)
    ]


@dataclass(frozen=True)
class TicketContext:
    """What an operator should see next to a fresh FOT (Section VII-B:
    "the history of the component, the server, its environment")."""

    ticket: FOT
    same_component_history: Tuple[FOT, ...]
    same_server_history: Tuple[FOT, ...]
    active_batch: Optional[str]
    is_probable_repeat: bool

    @property
    def prior_component_failures(self) -> int:
        return len(self.same_component_history)


def component_context(
    dataset: FOTDataset,
    ticket: FOT,
    *,
    history_days: float = 365.0,
    batch_window_hours: float = 12.0,
    batch_threshold: int = 30,
) -> TicketContext:
    """Assemble the operator-facing context for one ticket."""
    horizon = ticket.error_time - history_days * DAY
    failures = dataset.failures()
    times = failures.error_times
    not_self = failures.fot_ids != ticket.fot_id
    same_device = (
        failures.component_codes == COMPONENT_CODE[ticket.error_device]
    )
    batch_like = same_device & (
        np.abs(times - ticket.error_time) <= batch_window_hours * HOUR
    )
    in_window = (times >= horizon) & (times <= ticket.error_time)

    batch_count = int(
        np.count_nonzero(
            not_self & batch_like & (failures.host_ids != ticket.host_id)
        )
    )

    server_mask = (
        not_self
        & (in_window | batch_like)
        & (times <= ticket.error_time)
        & (failures.host_ids == ticket.host_id)
    )
    same_server = list(failures.where(server_mask).tickets)

    try:
        type_code = failures.error_type_table.index(ticket.error_type)
    except ValueError:
        type_code = -1
    component_view = failures.where(
        server_mask
        & same_device
        & (failures.device_slots == ticket.device_slot)
        & (failures.error_type_codes == type_code)
    )
    same_component = list(component_view.tickets)

    active_batch = None
    if batch_count >= batch_threshold:
        active_batch = (
            f"{batch_count} other {ticket.error_device.value} failures "
            f"within {batch_window_hours:.0f} h — possible batch event"
        )
    recent_repeat = bool(
        np.any(ticket.error_time - component_view.error_times <= 60 * DAY)
    )
    return TicketContext(
        ticket=ticket,
        same_component_history=tuple(same_component),
        same_server_history=tuple(same_server),
        active_batch=active_batch,
        is_probable_repeat=recent_repeat,
    )


__all__ = [
    "Incident",
    "mine_incidents",
    "TicketContext",
    "component_context",
]
