"""Dataset overview — Tables I, II, III and Figure 2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.failure_types import table_iii_rows
from repro.core.types import ComponentClass, DetectionSource, FOTCategory
from repro.robustness.quality import InsufficientDataError


@dataclass(frozen=True)
class CategoryBreakdown:
    """Table I: share of FOTs per handling category."""

    counts: Dict[FOTCategory, int]
    fractions: Dict[FOTCategory, float]
    total: int

    def fraction(self, category: FOTCategory) -> float:
        return self.fractions.get(category, 0.0)


def category_breakdown(dataset: FOTDataset) -> CategoryBreakdown:
    """Table I: D_fixing / D_error / D_falsealarm shares.

    paper: 70.3 % / 28.0 % / 1.7 %.
    """
    if len(dataset) == 0:
        raise InsufficientDataError("empty dataset")
    counts = {cat: len(sub) for cat, sub in dataset.by_category().items()}
    total = len(dataset)
    for cat in FOTCategory:
        counts.setdefault(cat, 0)
    fractions = {cat: counts[cat] / total for cat in counts}
    return CategoryBreakdown(counts=counts, fractions=fractions, total=total)


def component_breakdown(dataset: FOTDataset) -> Dict[ComponentClass, float]:
    """Table II: failure share per component class, over failures only
    (D_fixing + D_error, excluding false alarms), sorted descending.

    paper: HDD 81.84 %, miscellaneous 10.20 %, memory 3.06 %, ...
    """
    failures = dataset.failures()
    if len(failures) == 0:
        raise InsufficientDataError("no failures in dataset")
    shares = {
        cls: len(sub) / len(failures)
        for cls, sub in failures.by_component().items()
    }
    return dict(sorted(shares.items(), key=lambda kv: kv[1], reverse=True))


def failure_type_breakdown(
    dataset: FOTDataset, component: ComponentClass
) -> Dict[str, float]:
    """Figure 2: failure-type shares within one component class, over
    failures only, sorted descending."""
    subset = dataset.failures().of_component(component)
    if len(subset) == 0:
        raise InsufficientDataError(f"no failures for component {component}")
    shares = {
        name: len(sub) / len(subset)
        for name, sub in subset.by_failure_type().items()
    }
    return dict(sorted(shares.items(), key=lambda kv: kv[1], reverse=True))


def detection_source_breakdown(dataset: FOTDataset) -> Dict[DetectionSource, float]:
    """Share of tickets per detection source.

    paper: agents detect ~90 % automatically (syslog + polling), ~10 %
    are manual miscellaneous reports.
    """
    if len(dataset) == 0:
        raise InsufficientDataError("empty dataset")
    counts = np.bincount(dataset.source_codes, minlength=len(DetectionSource))
    return {
        src: int(counts[code]) / len(dataset)
        for code, src in enumerate(DetectionSource)
    }


def table_iii() -> List[Tuple[str, str, str]]:
    """Table III: documented failure types with explanations."""
    return table_iii_rows()


__all__ = [
    "CategoryBreakdown",
    "category_breakdown",
    "component_breakdown",
    "failure_type_breakdown",
    "detection_source_breakdown",
    "table_iii",
]
