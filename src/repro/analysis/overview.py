"""Dataset overview — Tables I, II, III and Figure 2 of the paper.

Every entry point takes the :class:`~repro.core.dataset.FOTDataset` as
its first positional argument and returns a frozen dataclass with a
``.rows()`` method, so results render uniformly through
:func:`repro.analysis.report.format_table`.  The share-style results
also implement the ``Mapping`` protocol over their natural keys, so
dict-style callers (``shares[ComponentClass.HDD]``, ``shares.values()``)
keep working.

The pre-1.1 names (``category_breakdown`` & friends) remain as thin
deprecated aliases.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.analysis.report import format_percent
from repro.core.dataset import FOTDataset
from repro.core.failure_types import table_iii_rows
from repro.core.types import ComponentClass, DetectionSource, FOTCategory
from repro.robustness.quality import InsufficientDataError


def _label(key) -> str:
    return key.value if hasattr(key, "value") else str(key)


@dataclass(frozen=True)
class _Shares(Mapping):
    """Ordered ``key -> fraction`` result with tabular rendering."""

    shares: Dict[object, float]
    total: int

    def __getitem__(self, key) -> float:
        return self.shares[key]

    def __iter__(self) -> Iterator:
        return iter(self.shares)

    def __len__(self) -> int:
        return len(self.shares)

    def rows(self) -> List[Tuple[str, str]]:
        """``(label, percent)`` rows for ``report.format_table``."""
        return [(_label(k), format_percent(v)) for k, v in self.shares.items()]


@dataclass(frozen=True)
class ComponentShares(_Shares):
    """Table II: failure share per component class, descending."""


@dataclass(frozen=True)
class FailureTypeShares(_Shares):
    """Figure 2: failure-type shares within one component class."""

    component: ComponentClass = ComponentClass.HDD


@dataclass(frozen=True)
class DetectionSourceShares(_Shares):
    """Share of tickets per detection source."""


@dataclass(frozen=True)
class CategoryBreakdown:
    """Table I: share of FOTs per handling category."""

    counts: Dict[FOTCategory, int]
    fractions: Dict[FOTCategory, float]
    total: int

    def fraction(self, category: FOTCategory) -> float:
        return self.fractions.get(category, 0.0)

    def rows(self) -> List[Tuple[str, str]]:
        return [
            (cat.value, format_percent(self.fractions.get(cat, 0.0)))
            for cat in FOTCategory
        ]


def categories(dataset: FOTDataset) -> CategoryBreakdown:
    """Table I: D_fixing / D_error / D_falsealarm shares.

    paper: 70.3 % / 28.0 % / 1.7 %.
    """
    if len(dataset) == 0:
        raise InsufficientDataError("empty dataset")
    counts = {cat: len(sub) for cat, sub in dataset.by_category().items()}
    total = len(dataset)
    for cat in FOTCategory:
        counts.setdefault(cat, 0)
    fractions = {cat: counts[cat] / total for cat in counts}
    return CategoryBreakdown(counts=counts, fractions=fractions, total=total)


def components(dataset: FOTDataset) -> ComponentShares:
    """Table II: failure share per component class, over failures only
    (D_fixing + D_error, excluding false alarms), sorted descending.

    paper: HDD 81.84 %, miscellaneous 10.20 %, memory 3.06 %, ...
    """
    failures = dataset.failures()
    if len(failures) == 0:
        raise InsufficientDataError("no failures in dataset")
    shares = {
        cls: len(sub) / len(failures)
        for cls, sub in failures.by_component().items()
    }
    ordered = dict(sorted(shares.items(), key=lambda kv: kv[1], reverse=True))
    return ComponentShares(shares=ordered, total=len(failures))


def failure_types(
    dataset: FOTDataset, component: ComponentClass
) -> FailureTypeShares:
    """Figure 2: failure-type shares within one component class, over
    failures only, sorted descending."""
    subset = dataset.failures().of_component(component)
    if len(subset) == 0:
        raise InsufficientDataError(f"no failures for component {component}")
    shares = {
        name: len(sub) / len(subset)
        for name, sub in subset.by_failure_type().items()
    }
    ordered = dict(sorted(shares.items(), key=lambda kv: kv[1], reverse=True))
    return FailureTypeShares(shares=ordered, total=len(subset), component=component)


def detection_sources(dataset: FOTDataset) -> DetectionSourceShares:
    """Share of tickets per detection source.

    paper: agents detect ~90 % automatically (syslog + polling), ~10 %
    are manual miscellaneous reports.
    """
    if len(dataset) == 0:
        raise InsufficientDataError("empty dataset")
    counts = np.bincount(dataset.source_codes, minlength=len(DetectionSource))
    shares = {
        src: int(counts[code]) / len(dataset)
        for code, src in enumerate(DetectionSource)
    }
    return DetectionSourceShares(shares=shares, total=len(dataset))


def table_iii() -> List[Tuple[str, str, str]]:
    """Table III: documented failure types with explanations."""
    return table_iii_rows()


# ---------------------------------------------------------------------------
# Deprecated pre-1.1 names.

def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.analysis.overview.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def category_breakdown(dataset: FOTDataset) -> CategoryBreakdown:
    """Deprecated alias for :func:`categories`."""
    _warn("category_breakdown", "categories")
    return categories(dataset)


def component_breakdown(dataset: FOTDataset) -> ComponentShares:
    """Deprecated alias for :func:`components`."""
    _warn("component_breakdown", "components")
    return components(dataset)


def failure_type_breakdown(
    dataset: FOTDataset, component: ComponentClass
) -> FailureTypeShares:
    """Deprecated alias for :func:`failure_types`."""
    _warn("failure_type_breakdown", "failure_types")
    return failure_types(dataset, component)


def detection_source_breakdown(dataset: FOTDataset) -> DetectionSourceShares:
    """Deprecated alias for :func:`detection_sources`."""
    _warn("detection_source_breakdown", "detection_sources")
    return detection_sources(dataset)


__all__ = [
    "CategoryBreakdown",
    "ComponentShares",
    "FailureTypeShares",
    "DetectionSourceShares",
    "categories",
    "components",
    "failure_types",
    "detection_sources",
    "table_iii",
    "category_breakdown",
    "component_breakdown",
    "failure_type_breakdown",
    "detection_source_breakdown",
]
