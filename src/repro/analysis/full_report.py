"""The full paper report as one composable, cacheable artifact.

Each section of the CLI report/analyze output is built by a named
module-level function ``fn(dataset) -> str`` (rendered body text).
Named top-level builders matter: the
:class:`~repro.engine.cache.AnalysisCache` keys entries by function
``module.qualname`` plus the dataset view fingerprint, so a warm cache
re-renders a full report with zero analysis recompute while a filter
tweak invalidates exactly the sections that read the changed view.

Sections that cannot be sustained by the data raise
:class:`~repro.robustness.quality.InsufficientDataError`; the report
records them as skipped instead of aborting.  ``table_iv`` additionally
needs the fleet :class:`~repro.fleet.inventory.Inventory`, which has no
content fingerprint — it is always computed, never cached.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis import (
    batch,
    concentration,
    correlated,
    overview,
    repeating,
    response,
    spatial,
    tbf,
    temporal,
)
from repro.analysis.report import format_percent, format_profile, format_table
from repro.core.dataset import FOTDataset
from repro.core.types import ComponentClass, FOTCategory
from repro.robustness.quality import DataQuality, InsufficientDataError


@dataclass(frozen=True)
class ReportSection:
    """One rendered block of the report."""

    name: str
    body: str
    headline: bool = False
    skipped: bool = False

    def text(self) -> str:
        return f"[skipped] {self.body}" if self.skipped else self.body

    def rows(self) -> List[Tuple[str, str]]:
        status = "skipped" if self.skipped else "ok"
        return [(self.name, status)]


@dataclass(frozen=True)
class FullReport:
    """An ordered tuple of report sections."""

    sections: Tuple[ReportSection, ...]

    def text(self) -> str:
        return "\n\n".join(s.text() for s in self.sections)

    def rows(self) -> List[Tuple[str, str]]:
        return [row for s in self.sections for row in s.rows()]

    def __iter__(self):
        return iter(self.sections)

    def __len__(self) -> int:
        return len(self.sections)


# ---------------------------------------------------------------------------
# Section builders.  Keep these module-level and dataset-only so the
# analysis cache can key them; bodies reproduce the historical CLI text.

def table_i(dataset: FOTDataset) -> str:
    cats = overview.categories(dataset)
    return format_table(
        ["category", "share"], cats.rows(), title="Table I — FOT categories"
    )


def table_ii(dataset: FOTDataset) -> str:
    comp = overview.components(dataset)
    return format_table(
        ["component", "share"], comp.rows(),
        title="Table II — failures by component",
    )


def mtbf(dataset: FOTDataset) -> str:
    analysis = tbf.analyze_tbf(dataset)
    rejected = {name: t.reject_at(0.05) for name, t in analysis.tests.items()}
    return (
        f"MTBF: {analysis.mtbf_minutes:.1f} minutes over "
        f"{analysis.n_gaps + 1} failures\n"
        f"TBF fits rejected at 0.05: {rejected}"
    )


def fig3(dataset: FOTDataset) -> str:
    blocks = []
    for cls, profile in temporal.day_of_week_summary(dataset, 4).items():
        blocks.append(
            format_profile(
                profile.labels,
                profile.fractions,
                title=f"Figure 3 — {cls.value} by day of week ({profile.test})",
            )
        )
    return "\n\n".join(blocks)


def fig7(dataset: FOTDataset) -> str:
    curve = concentration.failure_concentration(dataset)
    rep = repeating.repeating_stats(dataset)
    return (
        f"Figure 7 — concentration: top 2 % of ever-failed servers hold "
        f"{format_percent(curve.share_of_top(0.02))} of failures "
        f"(gini {curve.gini:.3f})\n"
        f"Repeats: {format_percent(rep.repeat_free_fraction)} of fixed "
        f"components never repeat; "
        f"{format_percent(rep.repeating_server_fraction)} of failed "
        f"servers repeat; worst server has {rep.max_failures_single_server} failures"
    )


def table_v(dataset: FOTDataset) -> str:
    freq = batch.batch_failure_frequency(dataset)
    rows = [
        (cls.value,)
        + tuple(format_percent(freq[cls][n]) for n in batch.TABLE_V_THRESHOLDS)
        for cls in ComponentClass
    ]
    return format_table(
        ["component", "r100", "r200", "r500"],
        rows,
        title="Table V — batch failure frequency",
    )


def table_vi(dataset: FOTDataset) -> str:
    corr = correlated.component_pair_counts(dataset)
    return (
        f"Correlated pairs: {corr.total_pairs()} "
        f"({format_percent(corr.correlated_server_fraction)} of failed "
        f"servers; misc share {format_percent(corr.misc_share)})"
    )


def fig9(dataset: FOTDataset) -> str:
    quality = DataQuality.assess(dataset)
    fixing = response.rt_distribution(dataset, FOTCategory.FIXING, quality=quality)
    return (
        f"RT (D_fixing): median {fixing.median_days:.1f} d, mean "
        f"{fixing.mean_days:.1f} d, >140 d: {format_percent(fixing.tail_140d)}"
    )


def quality_notes(dataset: FOTDataset) -> str:
    """Data-quality assessment; empty string when the data is clean."""
    quality = DataQuality.assess(dataset)
    # Probe the degradation-aware analyses so their exclusions show up.
    for category in (FOTCategory.FIXING, FOTCategory.FALSE_ALARM):
        with contextlib.suppress(ValueError):
            response.rt_distribution(dataset, category, quality=quality)
    if quality.grade == "ok" and not quality.exclusions:
        return ""
    return quality.format()


def table_iv(dataset: FOTDataset, inventory) -> str:
    """Rack-position chi-square tests; needs the inventory (uncached)."""
    quality = DataQuality.assess(dataset)
    summary = spatial.rack_position_tests(dataset, inventory, quality=quality)
    return format_table(
        ["p-value bucket", "data centers"],
        list(summary.bucket_counts().items()),
        title="Table IV — rack-position chi-square results",
    )


#: (name, builder, part of the headline-only report?)
_SECTIONS = (
    ("table_i", table_i, True),
    ("table_ii", table_ii, True),
    ("mtbf", mtbf, True),
    ("fig3", fig3, False),
    ("fig7", fig7, False),
    ("table_v", table_v, False),
    ("table_vi", table_vi, False),
    ("fig9", fig9, False),
)


def full_report(
    dataset: FOTDataset,
    *,
    inventory=None,
    cache=None,
    headline_only: bool = False,
) -> FullReport:
    """Render the paper report over ``dataset``.

    Args:
        inventory: fleet inventory; enables the Table IV section.
        cache: an :class:`~repro.engine.cache.AnalysisCache`; section
            bodies are memoized on the dataset's content fingerprint.
        headline_only: only Tables I/II and the MTBF line (the CLI
            ``report`` subcommand).
    """
    sections: List[ReportSection] = []

    def build(name: str, fn, headline: bool, *args) -> None:
        try:
            if cache is not None and not args:
                body = cache.call(fn, dataset)
            else:
                body = fn(dataset, *args)
        except InsufficientDataError as exc:
            sections.append(
                ReportSection(name=name, body=str(exc), headline=headline,
                              skipped=True)
            )
            return
        if body:
            sections.append(ReportSection(name=name, body=body, headline=headline))

    for name, fn, headline in _SECTIONS:
        if headline_only and not headline:
            continue
        build(name, fn, headline)
    if inventory is not None and not headline_only:
        build("table_iv", table_iv, False, inventory)
    if not headline_only:
        build("quality", quality_notes, False)
    return FullReport(sections=tuple(sections))


__all__ = ["FullReport", "ReportSection", "full_report"]
