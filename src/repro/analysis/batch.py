"""Batch failures — Table V and the Section V-A case studies.

The paper quantifies batch failures with the relative frequency

    r_N = (#days with >= N failures of a class) / D

over the D days of the trace, for N in {100, 200, 500}; batch HDD
failures turn out to be *common* (r_500 = 2.5 %: 35 of 1411 days saw
500+ drive failures).  This module computes r_N, daily count series, and
detects individual batch events (a burst of same-class failures within
a short window) the way an operator would, without access to the
simulator's ground-truth tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.timeutil import HOUR, day_index
from repro.core.types import ComponentClass

#: The thresholds Table V reports.
TABLE_V_THRESHOLDS: Tuple[int, ...] = (100, 200, 500)


def daily_counts(
    dataset: FOTDataset,
    component: Optional[ComponentClass] = None,
    n_days: Optional[int] = None,
) -> np.ndarray:
    """Failures per trace day, optionally for one component class."""
    failures = dataset.failures()
    if component is not None:
        failures = failures.of_component(component)
    if n_days is None:
        if len(dataset) == 0:
            raise ValueError("empty dataset and no n_days given")
        n_days = int(day_index(dataset.error_times.max())) + 1
    if len(failures) == 0:
        return np.zeros(n_days)
    days = day_index(failures.error_times).astype(int)
    return np.bincount(days, minlength=n_days).astype(float)[:n_days]


def batch_frequency(counts: Sequence[float], threshold: int) -> float:
    """r_N for one daily-count series: fraction of days with >= N
    failures."""
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        raise ValueError("empty daily-count series")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    return float((counts >= threshold).mean())


def batch_failure_frequency(
    dataset: FOTDataset,
    thresholds: Sequence[int] = TABLE_V_THRESHOLDS,
    n_days: Optional[int] = None,
) -> Dict[ComponentClass, Dict[int, float]]:
    """Table V: r_N per component class for each threshold."""
    if n_days is None:
        if len(dataset) == 0:
            raise ValueError("empty dataset")
        n_days = int(day_index(dataset.error_times.max())) + 1
    out: Dict[ComponentClass, Dict[int, float]] = {}
    for cls in ComponentClass:
        counts = daily_counts(dataset, cls, n_days)
        out[cls] = {
            int(n): batch_frequency(counts, int(n)) for n in thresholds
        }
    return out


@dataclass(frozen=True)
class BatchEvent:
    """One detected batch: many same-class failures in a short window."""

    component: ComponentClass
    start: float
    end: float
    n_failures: int
    n_servers: int
    #: Most common failure type in the batch and its share.
    dominant_type: str
    dominant_type_share: float
    #: Most affected product line and its share of the batch.
    dominant_line: str
    dominant_line_share: float

    @property
    def duration_hours(self) -> float:
        return (self.end - self.start) / HOUR


def detect_batches(
    dataset: FOTDataset,
    component: ComponentClass,
    *,
    spike_factor: float = 6.0,
    min_failures: int = 20,
) -> List[BatchEvent]:
    """Detect batch events as hourly spikes over the class baseline.

    Hours whose failure count exceeds ``spike_factor`` times the class's
    mean hourly rate (and at least ``min_failures / 24`` per hour) are
    flagged; adjacent flagged hours merge into one event, and events
    smaller than ``min_failures`` are dropped.  This mimics how the
    paper's operators characterize batches ("a number of servers above a
    threshold N failing during a short period of time t; both N and t
    are user-specific") without needing the simulator's ground truth.
    """
    if spike_factor <= 1:
        raise ValueError("spike_factor must exceed 1")
    failures = dataset.failures().of_component(component).sorted_by_time()
    if len(failures) == 0:
        return []
    times = failures.error_times
    hours = (times // HOUR).astype(int)
    n_hours = int(hours.max()) + 1
    counts = np.bincount(hours, minlength=n_hours).astype(float)
    baseline = counts.mean()
    hour_floor = max(1.0, min_failures / 24.0)
    flagged = counts >= max(spike_factor * baseline, hour_floor)

    events: List[BatchEvent] = []
    h = 0
    while h < n_hours:
        if not flagged[h]:
            h += 1
            continue
        start_h = h
        while h < n_hours and flagged[h]:
            h += 1
        lo, hi = start_h * HOUR, h * HOUR
        mask = (times >= lo) & (times < hi)
        size = int(mask.sum())
        if size < min_failures:
            continue
        window = failures.where(mask)
        type_codes, type_counts = np.unique(
            window.error_type_codes, return_counts=True
        )
        line_codes, line_counts = np.unique(
            window.product_line_codes, return_counts=True
        )
        top_type = window.error_type_table[
            int(type_codes[int(np.argmax(type_counts))])
        ]
        top_line = window.product_line_table[
            int(line_codes[int(np.argmax(line_counts))])
        ]
        events.append(
            BatchEvent(
                component=component,
                start=float(window.error_times.min()),
                end=float(window.error_times.max()),
                n_failures=size,
                n_servers=int(np.unique(window.host_ids).size),
                dominant_type=top_type,
                dominant_type_share=int(type_counts.max()) / size,
                dominant_line=top_line,
                dominant_line_share=int(line_counts.max()) / size,
            )
        )
    events.sort(key=lambda e: e.n_failures, reverse=True)
    return events


__all__ = [
    "TABLE_V_THRESHOLDS",
    "daily_counts",
    "batch_frequency",
    "batch_failure_frequency",
    "BatchEvent",
    "detect_batches",
]
