"""Temporal profiles — Figures 3/4 and Hypotheses 1/2 (Section III-A).

The paper plots the *fraction* of failures per day-of-week and per
hour-of-day for the component classes with the most failures, then
rejects uniformity with chi-squared tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.timeutil import DAY_NAMES, day_of_week, hour_of_day
from repro.core.types import ComponentClass
from repro.stats.chisquare import ChiSquareResult
from repro.stats.empirical import fraction_profile
from repro.stats.hypotheses import (
    test_uniform_day_of_week,
    test_uniform_hour_of_day,
)


@dataclass(frozen=True)
class TemporalProfile:
    """Fraction of failures per facet plus the uniformity test."""

    component: ComponentClass
    fractions: np.ndarray
    test: ChiSquareResult
    n_failures: int

    @property
    def labels(self) -> List[str]:
        if self.fractions.size == 7:
            return list(DAY_NAMES)
        return [f"{h:02d}" for h in range(self.fractions.size)]


def day_of_week_profile(
    dataset: FOTDataset, component: ComponentClass
) -> TemporalProfile:
    """Figure 3 for one component class: fraction of failures per day of
    the week, with the Hypothesis 1 chi-squared test."""
    subset = dataset.failures().of_component(component)
    if len(subset) == 0:
        raise ValueError(f"no failures for component {component}")
    dows = day_of_week(subset.error_times).astype(int)
    return TemporalProfile(
        component=component,
        fractions=fraction_profile(dows, 7),
        test=test_uniform_day_of_week(subset),
        n_failures=len(subset),
    )


def hour_of_day_profile(
    dataset: FOTDataset, component: ComponentClass
) -> TemporalProfile:
    """Figure 4 for one component class: fraction of failures per hour
    of the day, with the Hypothesis 2 chi-squared test."""
    subset = dataset.failures().of_component(component)
    if len(subset) == 0:
        raise ValueError(f"no failures for component {component}")
    hours = hour_of_day(subset.error_times).astype(int)
    return TemporalProfile(
        component=component,
        fractions=fraction_profile(hours, 24),
        test=test_uniform_hour_of_day(subset),
        n_failures=len(subset),
    )


def top_components(dataset: FOTDataset, n: int = 8) -> List[ComponentClass]:
    """The ``n`` component classes with the most failures — the paper
    plots only these ("due to limited space")."""
    failures = dataset.failures()
    by_component = failures.by_component()
    ranked = sorted(by_component.items(), key=lambda kv: len(kv[1]), reverse=True)
    return [cls for cls, _ in ranked[:n]]


def day_of_week_summary(
    dataset: FOTDataset, n_components: int = 4
) -> Dict[ComponentClass, TemporalProfile]:
    """Figure 3: day-of-week profiles for the top component classes."""
    return {
        cls: day_of_week_profile(dataset, cls)
        for cls in top_components(dataset, n_components)
    }


def hour_of_day_summary(
    dataset: FOTDataset, n_components: int = 8
) -> Dict[ComponentClass, TemporalProfile]:
    """Figure 4: hour-of-day profiles for the top component classes."""
    return {
        cls: hour_of_day_profile(dataset, cls)
        for cls in top_components(dataset, n_components)
    }


def weekday_robustness_test(dataset: FOTDataset) -> ChiSquareResult:
    """The paper's robustness check for Hypothesis 1: exclude weekends
    and re-test uniformity over Monday-Friday (still rejected at 0.02)."""
    return test_uniform_day_of_week(dataset, exclude_weekends=True)


__all__ = [
    "TemporalProfile",
    "day_of_week_profile",
    "hour_of_day_profile",
    "top_components",
    "day_of_week_summary",
    "hour_of_day_summary",
    "weekday_robustness_test",
]
