"""Spatial distribution of failures — Section IV (Table IV, Figure 8).

The paper tests, per data center, whether the failure rate at each rack
position is independent of the position (Hypothesis 5), normalizing by
the number of servers at each slot and filtering out repeating failures
first.  Even in DCs where uniformity cannot be rejected, individual
"bad spots" (slots next to the rack power module, slots at the top of
under-floor-cooled racks) stick out beyond mu ± 2 sigma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.dataset import FOTDataset
from repro.fleet.inventory import Inventory
from repro.robustness.quality import (
    DEFAULT_MAX_POSITION,
    DataQuality,
    InsufficientDataError,
)
from repro.stats.chisquare import ChiSquareResult
from repro.stats.hypotheses import test_rack_position_uniform


#: Structured fallback key for the repeat-failure identity when the
#: packed-int64 fast path would overflow (pathological slot ranges).
_REPEAT_KEY_DTYPE = np.dtype(
    [
        ("host", np.int64),
        ("component", np.int8),
        ("slot", np.int64),
        ("error_type", np.int32),
    ]
)


def _first_occurrence_indices(columns) -> np.ndarray:
    """Positions of the first row of each distinct column tuple, in
    ascending position order.

    Fast path: rank each column (dense codes), pack the ranks into one
    int64 key and ``np.unique(return_index=True)`` it — much faster than
    sorting a structured dtype with element-wise void comparisons.
    """
    ranked = []
    radix = 1
    overflow = False
    for col in columns:
        col = np.asarray(col)
        inv = np.unique(col, return_inverse=True)[1].astype(np.int64)
        width = int(inv.max()) + 1 if inv.size else 1
        if radix > (2**62) // max(width, 1):
            overflow = True
            break
        ranked.append((inv, width))
        radix *= width
    if not overflow:
        key = np.zeros(len(np.asarray(columns[0])), dtype=np.int64)
        for inv, width in ranked:
            key = key * width + inv
        _, first = np.unique(key, return_index=True)
        return np.sort(first)
    keys = np.empty(len(np.asarray(columns[0])), dtype=_REPEAT_KEY_DTYPE)
    for name, col in zip(_REPEAT_KEY_DTYPE.names, columns):
        keys[name] = col
    _, first = np.unique(keys, return_index=True)
    return np.sort(first)


def deduplicate_repeats(dataset: FOTDataset) -> FOTDataset:
    """Keep only the first occurrence of each (host, component, slot,
    type) — the paper filters out repeating failures "to minimize their
    impact on the statistics".

    Vectorized: one packed-key ``np.unique(return_index=True)`` over the
    time-sorted failures replaces the per-ticket seen-set walk, and the
    result is a zero-copy view.
    """
    subset = dataset.failures().sorted_by_time()
    if len(subset) == 0:
        return subset
    first = _first_occurrence_indices(
        (
            subset.host_ids,
            subset.component_codes,
            subset.device_slots,
            subset.error_type_codes,
        )
    )
    return subset.take(first)


@dataclass(frozen=True)
class RackPositionProfile:
    """Per-slot failure ratio for one data center (Figure 8)."""

    idc: str
    positions: np.ndarray
    failures: np.ndarray
    servers: np.ndarray
    #: Failures per server at each occupied slot; nan where unoccupied.
    ratio: np.ndarray
    test: ChiSquareResult

    def outlier_positions(self, n_sigma: float = 2.0) -> List[int]:
        """Slots whose failure ratio falls outside mu ± n_sigma — the
        paper's anomaly check that exposes slots 22 and 35 in DC A even
        though uniformity is not rejected there."""
        occupied = self.servers > 0
        values = self.ratio[occupied]
        if values.size < 3:
            return []
        mu = float(values.mean())
        sigma = float(values.std())
        if sigma == 0:
            return []
        flags = np.abs(self.ratio - mu) > n_sigma * sigma
        return [int(p) for p in self.positions[occupied & flags]]


def rack_position_profile(
    dataset: FOTDataset,
    inventory: Inventory,
    idc: str,
    *,
    filter_repeats: bool = True,
    granularity: str = "servers",
    max_position: int = DEFAULT_MAX_POSITION,
    quality: Optional[DataQuality] = None,
) -> RackPositionProfile:
    """Per-slot failure ratio and the Hypothesis 5 test for one DC.

    ``granularity="servers"`` (default) counts distinct failed *servers*
    per slot — the paper "count[s] a server failure if any of its
    components fail", and server-level counting keeps the chi-squared
    test valid despite the extreme per-server failure concentration
    (one flapping server would otherwise reject uniformity on its own).
    ``granularity="failures"`` counts raw tickets instead.

    Tickets with implausible rack positions (outside
    ``[0, max_position]`` — inventory glitches in a real dump) are
    excluded and reported into ``quality`` rather than corrupting the
    chi-squared binning.
    """
    if granularity not in ("servers", "failures"):
        raise ValueError(f"unknown granularity: {granularity!r}")
    subset = dataset.failures().of_idc(idc)
    if len(subset) == 0:
        raise InsufficientDataError(f"no failures in data center {idc!r}")
    positions = subset.positions
    valid = (positions >= 0) & (positions <= max_position)
    if not valid.all():
        if quality is not None:
            quality.note_exclusion(
                f"spatial.rack_position_profile[{idc}]",
                f"rack position outside [0, {max_position}]",
                n_excluded=int((~valid).sum()),
                n_used=int(valid.sum()),
            )
        subset = subset.where(valid)
    if len(subset) == 0:
        raise InsufficientDataError(
            f"no failures with plausible rack positions in data center {idc!r}"
        )
    if filter_repeats:
        subset = deduplicate_repeats(subset)
    if granularity == "servers":
        _, first = np.unique(subset.host_ids, return_index=True)
        subset = subset.take(np.sort(first))
    servers = inventory.servers_per_position(idc)
    n_positions = max(int(subset.positions.max()) + 1, servers.size)
    servers = np.pad(servers, (0, n_positions - servers.size))
    counts = np.bincount(subset.positions, minlength=n_positions).astype(float)

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(servers > 0, counts / np.maximum(servers, 1e-12), np.nan)
    test = test_rack_position_uniform(
        subset, servers_per_position=servers, n_positions=n_positions
    )
    return RackPositionProfile(
        idc=idc,
        positions=np.arange(n_positions),
        failures=counts,
        servers=servers,
        ratio=ratio,
        test=test,
    )


@dataclass(frozen=True)
class SpatialSummary:
    """Table IV: Hypothesis 5 chi-squared outcomes across data centers."""

    results: Dict[str, ChiSquareResult]

    @property
    def n_datacenters(self) -> int:
        return len(self.results)

    def bucket_counts(self) -> Dict[str, int]:
        """The paper's three p-value buckets."""
        buckets = {"p<0.01": 0, "0.01<=p<0.05": 0, "p>=0.05": 0}
        for result in self.results.values():
            if result.p_value < 0.01:
                buckets["p<0.01"] += 1
            elif result.p_value < 0.05:
                buckets["0.01<=p<0.05"] += 1
            else:
                buckets["p>=0.05"] += 1
        return buckets

    def rejected_at(self, alpha: float) -> List[str]:
        return sorted(
            idc for idc, r in self.results.items() if r.reject_at(alpha)
        )


def rack_position_tests(
    dataset: FOTDataset,
    inventory: Inventory,
    *,
    min_failures: int = 100,
    filter_repeats: bool = True,
    granularity: str = "servers",
    max_position: int = DEFAULT_MAX_POSITION,
    quality: Optional[DataQuality] = None,
) -> SpatialSummary:
    """Hypothesis 5 per data center (Table IV).

    DCs with fewer than ``min_failures`` deduplicated failed servers are
    skipped — a chi-squared test over ~40 slots needs volume.
    """
    results: Dict[str, ChiSquareResult] = {}
    for idc in sorted(dataset.failures().by_idc()):
        try:
            profile = rack_position_profile(
                dataset,
                inventory,
                idc,
                filter_repeats=filter_repeats,
                granularity=granularity,
                max_position=max_position,
                quality=quality,
            )
        except ValueError:
            continue
        if int(profile.failures.sum()) < min_failures:
            continue
        results[idc] = profile.test
    if not results:
        raise InsufficientDataError("no data center has enough failures for the test")
    return SpatialSummary(results=results)


__all__ = [
    "deduplicate_repeats",
    "RackPositionProfile",
    "rack_position_profile",
    "SpatialSummary",
    "rack_position_tests",
]
