"""The paper's analyses, one module per dimension.

Every function takes a :class:`~repro.core.dataset.FOTDataset` (plus,
where the paper normalizes by fleet metadata, an
:class:`~repro.fleet.inventory.Inventory`) and returns plain dataclasses
/ dicts / numpy arrays — no plotting; the benchmarks render them as the
paper's tables and figure series.

* :mod:`repro.analysis.overview` — Tables I/II/III, Figure 2.
* :mod:`repro.analysis.temporal` — Figures 3/4, Hypotheses 1/2.
* :mod:`repro.analysis.tbf` — Figure 5, Hypotheses 3/4, MTBF stats.
* :mod:`repro.analysis.lifecycle` — Figure 6 monthly failure rates.
* :mod:`repro.analysis.concentration` — Figure 7 failure concentration.
* :mod:`repro.analysis.repeating` — Section III-D, Table VIII.
* :mod:`repro.analysis.spatial` — Table IV, Figure 8, Hypothesis 5.
* :mod:`repro.analysis.batch` — Table V batch-failure frequency r_N.
* :mod:`repro.analysis.correlated` — Tables VI/VII.
* :mod:`repro.analysis.response` — Figures 9/10/11, MTTR statistics.
* :mod:`repro.analysis.report` — ASCII rendering of tables and series.

Extension modules implement the tooling the paper *proposes* plus the
derived views a reliability engineer needs:

* :mod:`repro.analysis.mining` — the incident/correlation miner of
  Section VII-B (stateless-FMS problem).
* :mod:`repro.analysis.prediction` — the early-warning predictor of
  Section VII-A, with a leakage-free evaluation harness.
* :mod:`repro.analysis.survival` — Kaplan-Meier survival and annualized
  failure rates (the disk-study view of Figure 6).
* :mod:`repro.analysis.compare` — dataset-vs-dataset comparison for
  validating a real ticket dump against the synthetic trace.
* :mod:`repro.analysis.trends` — calendar-time stationarity checks
  (the Section VII-C limitations, made quantitative).
"""

from repro.analysis import (
    batch,
    compare,
    concentration,
    correlated,
    full_report,
    lifecycle,
    mining,
    overview,
    prediction,
    repeating,
    report,
    response,
    spatial,
    survival,
    tbf,
    temporal,
    trends,
)

__all__ = [
    "overview",
    "full_report",
    "temporal",
    "tbf",
    "lifecycle",
    "concentration",
    "repeating",
    "spatial",
    "batch",
    "correlated",
    "response",
    "report",
    "mining",
    "prediction",
    "survival",
    "compare",
    "trends",
]
