"""Time between failures — Figure 5 and Hypotheses 3/4 (Section III-B).

The paper fits exponential, Weibull, gamma and lognormal distributions
to the TBF by maximum likelihood and rejects all of them with Pearson's
chi-squared test; the culprit is the mass of tiny TBF values produced by
batch failures.  It also quotes an overall MTBF of 6.8 minutes across
all data centers and 32-390 minutes per data center.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.timeutil import MINUTE, unit
from repro.core.types import ComponentClass
from repro.robustness.quality import InsufficientDataError
from repro.stats.chisquare import ChiSquareResult
from repro.stats.distributions import Distribution, fit_all
from repro.stats.empirical import ECDF, ecdf
from repro.stats.hypotheses import (
    test_tbf_all_families,
    test_tbf_per_component,
)


@unit("seconds")
def tbf_values(dataset: FOTDataset) -> np.ndarray:
    """Gaps between consecutive failure detections, in seconds.

    Zero gaps (several failures in the same second — batches) are kept
    at a one-second floor so log-scale plots and positive-support fits
    still see them.
    """
    times = np.sort(dataset.failures().error_times)
    if times.size < 2:
        raise InsufficientDataError("need at least 2 failures to compute TBF")
    return np.maximum(np.diff(times), 1.0)


@dataclass(frozen=True)
class TBFAnalysis:
    """Figure 5 bundle: empirical TBF, the fitted families and their
    goodness-of-fit tests."""

    empirical: ECDF
    fits: Dict[str, Distribution]
    tests: Dict[str, ChiSquareResult]
    mtbf_seconds: float
    n_gaps: int

    @property
    def mtbf_minutes(self) -> float:
        return self.mtbf_seconds / MINUTE

    def all_rejected_at(self, alpha: float = 0.05) -> bool:
        """True when every candidate family is rejected — the paper's
        headline TBF result."""
        if not self.tests:
            return False
        return all(t.reject_at(alpha) for t in self.tests.values())

    def cdf_series(
        self, n_points: int = 120
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """(x, CDF) series for the empirical data and every fit, on the
        empirical support — this is Figure 5 as data."""
        xs, ps = self.empirical.series(n_points)
        out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {"data": (xs, ps)}
        for name, dist in self.fits.items():
            out[name] = (xs, np.asarray(dist.cdf(xs)))
        return out


def analyze_tbf(dataset: FOTDataset) -> TBFAnalysis:
    """Hypothesis 3 on one dataset: fit and test every family."""
    gaps = tbf_values(dataset)
    return TBFAnalysis(
        empirical=ecdf(gaps),
        fits=fit_all(gaps),
        tests=test_tbf_all_families(dataset),
        mtbf_seconds=float(gaps.mean()),
        n_gaps=int(gaps.size),
    )


def tbf_per_component(
    dataset: FOTDataset, min_failures: int = 100
) -> Dict[ComponentClass, Dict[str, ChiSquareResult]]:
    """Hypothesis 4: per-component-class family tests."""
    return test_tbf_per_component(dataset, min_failures=min_failures)


@unit("seconds")
def mtbf_by_idc(dataset: FOTDataset) -> Dict[str, float]:
    """MTBF in seconds per data center (paper: 32-390 minutes)."""
    out: Dict[str, float] = {}
    for idc, subset in dataset.failures().by_idc().items():
        if len(subset) < 2:
            continue
        out[idc] = float(tbf_values(subset).mean())
    if not out:
        raise InsufficientDataError("no data center has enough failures for an MTBF")
    return out


def mtbf_range_minutes(dataset: FOTDataset) -> Tuple[float, float]:
    """(min, max) per-DC MTBF in minutes."""
    values = np.asarray(list(mtbf_by_idc(dataset).values()))
    return float(values.min() / MINUTE), float(values.max() / MINUTE)


__all__ = [
    "tbf_values",
    "TBFAnalysis",
    "analyze_tbf",
    "tbf_per_component",
    "mtbf_by_idc",
    "mtbf_range_minutes",
]
