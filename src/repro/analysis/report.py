"""ASCII rendering of the paper's tables and figure series.

The analyses return data; this module turns them into the rows the
paper prints, so benchmarks and the CLI can show "paper vs. measured"
side by side without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with column auto-sizing."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 1e6):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_percent(value: float, digits: int = 2) -> str:
    return f"{100.0 * value:.{digits}f} %"


def comparison_table(
    rows: Iterable[Tuple[str, object, object]],
    title: Optional[str] = None,
) -> str:
    """Three-column "metric / paper / measured" table."""
    return format_table(
        ["metric", "paper", "measured"],
        [(name, _cell(paper), _cell(measured)) for name, paper, measured in rows],
        title=title,
    )


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line bar rendering of a series (for figure-shaped output)."""
    blocks = " ▁▂▃▄▅▆▇█"
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("empty series")
    if values.size > width:
        # Downsample by averaging fixed-size chunks.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.asarray(
            [values[lo:hi].mean() for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]
        )
    top = values.max()
    if top <= 0:
        return " " * values.size
    scaled = np.clip((values / top) * (len(blocks) - 1), 0, len(blocks) - 1)
    return "".join(blocks[int(round(v))] for v in scaled)


def format_profile(
    labels: Sequence[str], fractions: Sequence[float], title: Optional[str] = None
) -> str:
    """Figure 3/4 style rendering: label, fraction, bar."""
    fractions = np.asarray(list(fractions), dtype=float)
    top = fractions.max() if fractions.size else 1.0
    rows = []
    for label, frac in zip(labels, fractions):
        bar = "#" * int(round(40 * frac / top)) if top > 0 else ""
        rows.append((label, format_percent(frac), bar))
    return format_table(["facet", "share", ""], rows, title=title)


def format_cdf_series(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    probes: Sequence[float],
    unit: str = "",
) -> str:
    """Figure 5/9/10 style rendering: CDF values of several curves at
    probe points on the x axis."""
    names = list(series)
    rows = []
    for probe in probes:
        row: List[object] = [f"{probe:g}{unit}"]
        for name in names:
            xs, ps = series[name]
            idx = np.searchsorted(xs, probe, side="right") - 1
            row.append(f"{ps[idx]:.3f}" if idx >= 0 else "0.000")
        rows.append(row)
    return format_table(["x"] + names, rows)


__all__ = [
    "format_table",
    "format_percent",
    "comparison_table",
    "sparkline",
    "format_profile",
    "format_cdf_series",
]
