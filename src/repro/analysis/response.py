"""Operator response times — Section VI (Figures 9, 10, 11).

``RT = op_time - error_time`` is defined only for tickets the operators
actually closed (D_fixing and D_falsealarm); out-of-warranty D_error
tickets carry no response.  The paper's headline numbers: MTTR 42.2 days
for D_fixing (median 6.1) and 19.1 days for false alarms (median 4.9);
10 % of tickets wait more than 140 days and 2 % more than 200 — yet the
tickets are eventually closed, not abandoned.

Real dumps often lack ``op_time`` on a slice of closed tickets (§VII's
incomplete-field caveat); every function here degrades gracefully by
excluding those tickets, and — when passed a
:class:`~repro.robustness.quality.DataQuality` — *reporting* how many
were excluded instead of silently shrinking the sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.timeutil import DAY, unit
from repro.core.types import ComponentClass, FOTCategory
from repro.robustness.quality import (
    DataQuality,
    InsufficientDataError,
    clean_response_times,
)
from repro.stats.empirical import ECDF, ecdf


@unit("seconds")
def response_times_seconds(
    dataset: FOTDataset, quality: Optional[DataQuality] = None
) -> np.ndarray:
    """RT values (seconds) for all tickets that have one; exclusions are
    reported into ``quality`` when given."""
    rts = clean_response_times(dataset, "response", quality)
    if rts.size == 0:
        raise InsufficientDataError("no tickets with an operator response")
    return rts


@dataclass(frozen=True)
class RTStats:
    """Summary of one RT sample, in days (the paper's unit)."""

    n: int
    mean_days: float
    median_days: float
    p90_days: float
    p99_days: float
    tail_140d: float
    tail_200d: float
    cdf: ECDF

    @classmethod
    def from_seconds(cls, rts: np.ndarray) -> "RTStats":
        days = np.asarray(rts, dtype=float) / DAY
        return cls(
            n=int(days.size),
            mean_days=float(days.mean()),
            median_days=float(np.median(days)),
            p90_days=float(np.quantile(days, 0.90)),
            p99_days=float(np.quantile(days, 0.99)),
            tail_140d=float((days > 140).mean()),
            tail_200d=float((days > 200).mean()),
            cdf=ecdf(days),
        )


def rt_distribution(
    dataset: FOTDataset,
    category: FOTCategory = FOTCategory.FIXING,
    quality: Optional[DataQuality] = None,
) -> RTStats:
    """Figure 9 for one ticket category."""
    subset = dataset.of_category(category)
    if len(subset) == 0:
        raise InsufficientDataError(f"no tickets in category {category}")
    return RTStats.from_seconds(response_times_seconds(subset, quality=quality))


def rt_by_component(
    dataset: FOTDataset,
    min_tickets: int = 30,
    quality: Optional[DataQuality] = None,
) -> Dict[ComponentClass, RTStats]:
    """Figure 10: RT statistics per component class (closed tickets of
    any category, as in the paper's "covering all FOTs" phrasing)."""
    out: Dict[ComponentClass, RTStats] = {}
    for cls, subset in dataset.by_component().items():
        rts = clean_response_times(
            subset, f"response.rt_by_component[{cls.value}]", quality
        )
        if rts.size < min_tickets:
            continue
        out[cls] = RTStats.from_seconds(rts)
    if not out:
        raise InsufficientDataError("no component class has enough closed tickets")
    return out


@dataclass(frozen=True)
class ProductLinePoint:
    """One point of Figure 11: a product line's HDD failure volume vs.
    its median response time."""

    product_line: str
    n_failures: int
    median_rt_days: float


def rt_by_product_line(
    dataset: FOTDataset,
    component: Optional[ComponentClass] = ComponentClass.HDD,
    min_tickets: int = 10,
    quality: Optional[DataQuality] = None,
) -> List[ProductLinePoint]:
    """Figure 11: per-product-line median RT against failure count.

    The paper plots HDD tickets over a year; pass ``component=None`` for
    all classes.  Points are sorted by failure count descending.
    """
    subset = dataset if component is None else dataset.of_component(component)
    points: List[ProductLinePoint] = []
    for line, tickets in subset.by_product_line().items():
        rts = clean_response_times(
            tickets, f"response.rt_by_product_line[{line}]", quality
        )
        if rts.size < min_tickets:
            continue
        points.append(
            ProductLinePoint(
                product_line=line,
                n_failures=len(tickets.failures()),
                median_rt_days=float(np.median(rts) / DAY),
            )
        )
    points.sort(key=lambda p: p.n_failures, reverse=True)
    return points


@dataclass(frozen=True)
class ProductLineRTSummary:
    """The Figure 11 headline comparisons."""

    points: List[ProductLinePoint]
    top_percent_median_days: float
    small_line_slow_fraction: float
    rt_std_days: float

    @property
    def n_lines(self) -> int:
        return len(self.points)


def product_line_rt_summary(
    dataset: FOTDataset,
    component: Optional[ComponentClass] = ComponentClass.HDD,
    top_fraction: float = 0.01,
    small_line_max_failures: int = 100,
    slow_median_days: float = 100.0,
    quality: Optional[DataQuality] = None,
) -> ProductLineRTSummary:
    """Compute the paper's Figure 11 quotes:

    * median RT of the top ``top_fraction`` busiest lines (paper: 47 d);
    * fraction of small lines (< 100 failures) whose median RT exceeds
      100 days (paper: 21 %);
    * standard deviation of per-line median RT (paper: 30.2 d).
    """
    points = rt_by_product_line(dataset, component, quality=quality)
    if not points:
        raise InsufficientDataError("no product line has enough tickets")
    n_top = max(1, int(np.ceil(top_fraction * len(points))))
    top_median = float(np.median([p.median_rt_days for p in points[:n_top]]))
    small = [p for p in points if p.n_failures < small_line_max_failures]
    slow_fraction = (
        float(np.mean([p.median_rt_days > slow_median_days for p in small]))
        if small
        else 0.0
    )
    rt_std = float(np.std([p.median_rt_days for p in points]))
    return ProductLineRTSummary(
        points=points,
        top_percent_median_days=top_median,
        small_line_slow_fraction=slow_fraction,
        rt_std_days=rt_std,
    )


@unit("days")
def mttr_days(
    dataset: FOTDataset,
    category: FOTCategory,
    quality: Optional[DataQuality] = None,
) -> Tuple[float, float]:
    """(mean, median) RT in days for one category — the paper's MTTR
    presentation."""
    stats = rt_distribution(dataset, category, quality=quality)
    return stats.mean_days, stats.median_days


__all__ = [
    "response_times_seconds",
    "RTStats",
    "rt_distribution",
    "rt_by_component",
    "ProductLinePoint",
    "rt_by_product_line",
    "ProductLineRTSummary",
    "product_line_rt_summary",
    "mttr_days",
]
