"""Survival analysis of component lifetimes.

Figure 6's monthly failure-rate curves are one view of component aging;
the disk-reliability literature the paper cites (Pinheiro et al.,
Schroeder & Gibson, Yang & Sun) works with two complementary views that
this module provides:

* a **Kaplan-Meier survival estimator** over time-to-first-failure per
  component, with right-censoring for components that never failed
  inside the observation window (most of the fleet);
* **annualized failure rates (AFR)** per component class and per service
  year, the industry-standard reliability headline.

Both need the fleet inventory for the population at risk — tickets only
record the failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dataset import FOTDataset
from repro.core.grouping import composite_key
from repro.core.timeutil import MONTH, YEAR
from repro.core.types import ComponentClass
from repro.fleet.inventory import Inventory


@dataclass(frozen=True)
class SurvivalCurve:
    """Kaplan-Meier estimate of P[component survives beyond t].

    ``months`` are event times (months of service); ``survival`` the KM
    estimate just after each; ``at_risk`` the risk-set size just before.
    """

    component: ComponentClass
    months: np.ndarray
    survival: np.ndarray
    at_risk: np.ndarray
    n_components: int
    n_failures: int

    def probability_beyond(self, months: float) -> float:
        """Survival probability beyond ``months`` of service."""
        idx = int(np.searchsorted(self.months, months, side="right")) - 1
        if idx < 0:
            return 1.0
        return float(self.survival[idx])

    def median_lifetime_months(self) -> Optional[float]:
        """Service months at which half the population has failed, or
        ``None`` when the curve never drops to 0.5 (the usual case for
        reliable hardware in a four-year window)."""
        below = np.flatnonzero(self.survival <= 0.5)
        if below.size == 0:
            return None
        return float(self.months[below[0]])


def _first_failure_ages(
    dataset: FOTDataset, component: ComponentClass
) -> Dict[Tuple[int, int], float]:
    """(host, slot) -> age in months at first failure."""
    sub = dataset.failures().of_component(component).sorted_by_time()
    hosts = sub.host_ids
    slots = sub.device_slots
    if hosts.size == 0:
        return {}
    # np.unique returns the index of the *first* occurrence of each
    # key; the view is time-sorted, so that is the earliest failure.
    _, first = np.unique(composite_key(hosts, slots), return_index=True)
    ages_months = (sub.error_times - sub.deployed_ats) / MONTH
    return {
        (int(hosts[i]), int(slots[i])): float(ages_months[i])
        for i in first
    }


def kaplan_meier(
    dataset: FOTDataset,
    inventory: Inventory,
    component: ComponentClass,
    *,
    window_end: Optional[float] = None,
) -> SurvivalCurve:
    """Kaplan-Meier over time-to-first-failure for one component class.

    Every physical component in the inventory enters the risk set at
    age 0; a component is an *event* at its first failure age and a
    *censoring* at its observed age when the window closes first.
    """
    if window_end is None:
        if len(dataset) == 0:
            raise ValueError("empty dataset and no window_end")
        window_end = float(dataset.error_times.max())

    failure_ages = _first_failure_ages(dataset, component)
    ages_by_host: Dict[int, List[float]] = {}
    for (host, _), age in failure_ages.items():
        ages_by_host.setdefault(host, []).append(age)
    counts = inventory.counts_for(component)
    deployed = inventory.deployed_ats

    event_times: List[float] = []
    censor_times: List[float] = []
    n_components = 0
    for i in range(len(inventory)):
        host = int(inventory.host_ids[i])
        observed_months = max(0.0, (window_end - deployed[i]) / MONTH)
        if observed_months <= 0:
            continue
        per_server = int(counts[i])
        if per_server == 0:
            continue
        n_components += per_server
        # Slots with a recorded first failure are events; the rest of
        # the server's components are censored at the window edge.
        failed_slots = ages_by_host.get(host, [])[:per_server]
        event_times.extend(min(a, observed_months) for a in failed_slots)
        censor_times.extend(
            [observed_months] * (per_server - len(failed_slots))
        )

    if not event_times:
        raise ValueError(f"no failures for component {component}")

    events = np.sort(np.asarray(event_times))
    censors = np.sort(np.asarray(censor_times))
    unique_times, event_counts = np.unique(events, return_counts=True)
    # Risk set just before t: events and censorings at >= t.
    events_before = np.searchsorted(events, unique_times, side="left")
    censors_before = np.searchsorted(censors, unique_times, side="left")
    at_risk_arr = (
        (events.size - events_before) + (censors.size - censors_before)
    ).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        factors = np.where(
            at_risk_arr > 0, 1.0 - event_counts / at_risk_arr, 1.0
        )
    survival = np.cumprod(factors)
    return SurvivalCurve(
        component=component,
        months=unique_times,
        survival=survival,
        at_risk=at_risk_arr,
        n_components=n_components,
        n_failures=int(events.size),
    )


@dataclass(frozen=True)
class AFRTable:
    """Annualized failure rates per service year."""

    component: ComponentClass
    years: np.ndarray
    afr: np.ndarray
    failures: np.ndarray
    exposure_years: np.ndarray

    def overall(self) -> float:
        total_exposure = float(self.exposure_years.sum())
        if total_exposure == 0:
            raise ValueError("no exposure")
        return float(self.failures.sum()) / total_exposure


def annualized_failure_rates(
    dataset: FOTDataset,
    inventory: Inventory,
    component: ComponentClass,
    *,
    n_years: int = 5,
    window: Optional[Tuple[float, float]] = None,
) -> AFRTable:
    """AFR per service year: failures / component-years of exposure.

    This is the Figure 6 computation re-based to the industry's annual
    granularity, without the confidentiality normalization.
    """
    failures = dataset.failures().of_component(component)
    if len(failures) == 0:
        raise ValueError(f"no failures for component {component}")
    if window is None:
        times = dataset.error_times
        window = (float(times.min()), float(times.max()) + 1.0)

    ages_years = (failures.error_times - failures.deployed_ats) / YEAR
    fail_counts = np.bincount(
        np.clip(ages_years.astype(int), 0, n_years - 1), minlength=n_years
    ).astype(float)
    overflow = (ages_years >= n_years).sum()
    if overflow:
        fail_counts[n_years - 1] -= float(overflow)

    monthly = inventory.component_month_exposure(
        component, n_years * 12, window[0], window[1]
    )
    exposure_years = monthly.reshape(n_years, 12).sum(axis=1) / 12.0

    with np.errstate(divide="ignore", invalid="ignore"):
        afr = np.where(exposure_years > 0, fail_counts / np.maximum(exposure_years, 1e-12), 0.0)
    return AFRTable(
        component=component,
        years=np.arange(n_years),
        afr=afr,
        failures=fail_counts,
        exposure_years=exposure_years,
    )


__all__ = [
    "SurvivalCurve",
    "kaplan_meier",
    "AFRTable",
    "annualized_failure_rates",
]
