"""Dataset comparison — validating one FOT trace against another.

Two uses:

* checking the synthetic trace against the paper's published numbers
  (the benchmarks do this with scalar targets);
* checking a *real* ticket dump against the synthetic one, or two
  periods/fleets against each other — the "does our fleet behave like
  the paper's?" question a downstream user actually has.

The comparison covers the study's dimensions with scale-free statistics
(shares, shapes, normalized profiles) so differently-sized datasets
compare cleanly.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis import overview, response, tbf, temporal
from repro.core.dataset import FOTDataset
from repro.core.types import ComponentClass, FOTCategory


@dataclass(frozen=True)
class MetricComparison:
    """One scale-free metric measured on both datasets."""

    name: str
    left: float
    right: float

    @property
    def abs_difference(self) -> float:
        return abs(self.left - self.right)

    @property
    def ratio(self) -> float:
        if self.right == 0:
            return float("inf") if self.left else 1.0
        return self.left / self.right


@dataclass(frozen=True)
class DatasetComparison:
    """The full comparison report."""

    metrics: List[MetricComparison]
    component_share_l1: float
    dow_profile_l1: float
    hour_profile_l1: float

    def worst_ratio(self) -> MetricComparison:
        return max(
            self.metrics,
            key=lambda m: max(m.ratio, 1.0 / m.ratio if m.ratio else 1.0),
        )

    def within(self, rel_tolerance: float) -> bool:
        """True when every scalar metric matches within the relative
        tolerance and the profile distances stay small."""
        if rel_tolerance <= 0:
            raise ValueError("tolerance must be positive")
        for m in self.metrics:
            hi = 1.0 + rel_tolerance
            if not (1.0 / hi <= m.ratio <= hi):
                return False
        return (
            self.component_share_l1 < rel_tolerance
            and self.dow_profile_l1 < rel_tolerance
        )

    def rows(self) -> List[Tuple[str, str, str]]:
        """Rows for :func:`repro.analysis.report.format_table`."""
        rows = [
            (m.name, f"{m.left:.4g}", f"{m.right:.4g}") for m in self.metrics
        ]
        rows.append(("component share L1", f"{self.component_share_l1:.3f}", "-"))
        rows.append(("day-of-week profile L1", f"{self.dow_profile_l1:.3f}", "-"))
        rows.append(("hour-of-day profile L1", f"{self.hour_profile_l1:.3f}", "-"))
        return rows


def _l1(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(np.asarray(a) - np.asarray(b)).sum())


def _profile_or_uniform(dataset, cls, fn, size) -> np.ndarray:
    try:
        return fn(dataset, cls).fractions
    except ValueError:
        return np.full(size, 1.0 / size)


def compare_datasets(left: FOTDataset, right: FOTDataset) -> DatasetComparison:
    """Compare two FOT datasets across the paper's dimensions."""
    if len(left) == 0 or len(right) == 0:
        raise ValueError("both datasets must be non-empty")

    metrics: List[MetricComparison] = []

    cats_l = overview.categories(left)
    cats_r = overview.categories(right)
    for cat in FOTCategory:
        metrics.append(
            MetricComparison(
                f"share:{cat.value}",
                cats_l.fraction(cat),
                cats_r.fraction(cat),
            )
        )

    comp_l = overview.components(left)
    comp_r = overview.components(right)
    share_l = np.asarray([comp_l.get(c, 0.0) for c in ComponentClass])
    share_r = np.asarray([comp_r.get(c, 0.0) for c in ComponentClass])
    metrics.append(
        MetricComparison(
            "share:hdd",
            comp_l.get(ComponentClass.HDD, 0.0),
            comp_r.get(ComponentClass.HDD, 0.0),
        )
    )

    # Normalized MTBF: mean gap divided by span per failure, so the
    # comparison is volume-independent (1.0 = perfectly regular).
    def normalized_mtbf(ds: FOTDataset) -> float:
        failures = ds.failures()
        gaps = tbf.tbf_values(ds)
        expected = failures.span_seconds / max(len(failures) - 1, 1)
        return float(np.median(gaps) / expected) if expected else 0.0

    metrics.append(
        MetricComparison(
            "tbf:median_over_mean_gap",
            normalized_mtbf(left),
            normalized_mtbf(right),
        )
    )

    def rt_shape(ds: FOTDataset) -> float:
        stats = response.rt_distribution(ds, FOTCategory.FIXING)
        return stats.mean_days / max(stats.median_days, 1e-9)

    with contextlib.suppress(ValueError):
        metrics.append(
            MetricComparison("rt:mean_over_median", rt_shape(left), rt_shape(right))
        )

    dow_l = _profile_or_uniform(left, ComponentClass.HDD,
                                temporal.day_of_week_profile, 7)
    dow_r = _profile_or_uniform(right, ComponentClass.HDD,
                                temporal.day_of_week_profile, 7)
    hour_l = _profile_or_uniform(left, ComponentClass.HDD,
                                 temporal.hour_of_day_profile, 24)
    hour_r = _profile_or_uniform(right, ComponentClass.HDD,
                                 temporal.hour_of_day_profile, 24)

    return DatasetComparison(
        metrics=metrics,
        component_share_l1=_l1(share_l, share_r),
        dow_profile_l1=_l1(dow_l, dow_r),
        hour_profile_l1=_l1(hour_l, hour_r),
    )


def comparison_rows(result: DatasetComparison) -> List[Tuple[str, str, str]]:
    """Deprecated alias for :meth:`DatasetComparison.rows`."""
    warnings.warn(
        "repro.analysis.compare.comparison_rows is deprecated; use "
        "DatasetComparison.rows() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return result.rows()


__all__ = [
    "MetricComparison",
    "DatasetComparison",
    "compare_datasets",
    "comparison_rows",
]
