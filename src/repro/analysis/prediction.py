"""Failure prediction — the early-warning tool the paper describes.

Section VII-A: the hardware team "designed a tool to predict component
failures a couple of days early, hoping the operators to react before
the failure actually happens" — and then observes that operators ignore
it.  This module implements such a predictor over the FOT stream and an
evaluation harness, so the trade-off the paper discusses (high-precision
warnings vs. operator attention) can be studied quantitatively.

The predictor is intentionally classic: *warning-type* tickets
(SMARTFail, DIMMCE, HighMaxBbRate, ...) predict a *fatal* failure of the
same component class on the same server within a horizon.  Evaluation
walks the trace in time order, so there is no look-ahead leakage.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.columns import COMPONENT_ORDER
from repro.core.dataset import FOTDataset
from repro.core.failure_types import REGISTRY
from repro.core.grouping import composite_key, group_slices
from repro.core.timeutil import DAY


@dataclass(frozen=True)
class Warning_:
    """One emitted prediction: host X will see a fatal ``component``
    failure within ``horizon_days`` of ``issued_at``."""

    host_id: int
    component: str
    issued_at: float
    trigger_fot_id: int


@dataclass(frozen=True)
class PredictionReport:
    """Evaluation of the warning stream against what actually happened."""

    n_warnings: int
    n_hits: int
    n_fatal_failures: int
    n_fatal_covered: int
    mean_lead_days: float

    @property
    def precision(self) -> float:
        """Warnings followed by a fatal failure in the horizon."""
        if self.n_warnings == 0:
            raise ValueError("no warnings were issued")
        return self.n_hits / self.n_warnings

    @property
    def recall(self) -> float:
        """Fatal failures that had a warning in time."""
        if self.n_fatal_failures == 0:
            raise ValueError("no fatal failures to predict")
        return self.n_fatal_covered / self.n_fatal_failures


def warning_types() -> Set[str]:
    """Failure types that are predictive alerts rather than hard stops."""
    return {name for name, entry in REGISTRY.items() if not entry.fatal}


def fatal_types() -> Set[str]:
    return {name for name, entry in REGISTRY.items() if entry.fatal}


def issue_warnings(
    dataset: FOTDataset,
    *,
    min_warnings: int = 1,
    dedup_days: float = 14.0,
) -> List[Warning_]:
    """Emit predictions from warning-type tickets.

    A (host, component) emits a prediction once it has accumulated
    ``min_warnings`` warning tickets; re-warnings within ``dedup_days``
    are suppressed so operators are not spammed (the paper's FMS prides
    itself on low false-alarm noise).
    """
    if min_warnings < 1:
        raise ValueError("min_warnings must be >= 1")
    warn_set = warning_types()
    counts: Dict[Tuple[int, str], int] = defaultdict(int)
    last_issued: Dict[Tuple[int, str], float] = {}
    out: List[Warning_] = []
    # Each emission depends on counts/last_issued updated by every
    # prior row, so the walk is inherently sequential.
    for ticket in dataset.failures().sorted_by_time():  # reprolint: disable=RPL301 -- stateful dedup scan
        if ticket.error_type not in warn_set:
            continue
        key = (ticket.host_id, ticket.error_device.value)
        counts[key] += 1
        if counts[key] < min_warnings:
            continue
        prev = last_issued.get(key)
        if prev is not None and ticket.error_time - prev < dedup_days * DAY:
            continue
        last_issued[key] = ticket.error_time
        out.append(
            Warning_(
                host_id=ticket.host_id,
                component=ticket.error_device.value,
                issued_at=ticket.error_time,
                trigger_fot_id=ticket.fot_id,
            )
        )
    return out


def evaluate(
    dataset: FOTDataset,
    warnings: Sequence[Warning_],
    *,
    horizon_days: float = 30.0,
) -> PredictionReport:
    """Score a warning stream: did a fatal same-class failure follow?"""
    if horizon_days <= 0:
        raise ValueError("horizon must be positive")
    horizon = horizon_days * DAY
    fatal = fatal_types()
    failures = dataset.failures()
    fatal_codes = np.flatnonzero(
        np.array(
            [name in fatal for name in failures.error_type_table], dtype=bool
        )
    )
    sub = failures.where(
        np.isin(failures.error_type_codes, fatal_codes)
    ).sorted_by_time()
    # Stable grouping over the time-sorted view keeps each group's
    # times ascending, so no per-group sort is needed.
    order, starts, stops = group_slices(
        composite_key(sub.host_ids, sub.component_codes)
    )
    fatal_events: Dict[Tuple[int, str], np.ndarray] = {}
    for start, stop in zip(starts, stops):
        rows = order[start:stop]
        key = (
            int(sub.host_ids[rows[0]]),
            COMPONENT_ORDER[int(sub.component_codes[rows[0]])].value,
        )
        fatal_events[key] = sub.error_times[rows]

    no_times = np.empty(0)
    n_hits = 0
    lead_times: List[float] = []
    covered: Set[Tuple[int, str, float]] = set()
    for warning in warnings:
        times = fatal_events.get(
            (warning.host_id, warning.component), no_times
        )
        idx = int(np.searchsorted(times, warning.issued_at, side="right"))
        hit: Optional[float] = None
        if idx < times.size and times[idx] <= warning.issued_at + horizon:
            hit = float(times[idx])
        if hit is not None:
            n_hits += 1
            lead_times.append(hit - warning.issued_at)
            covered.add((warning.host_id, warning.component, hit))

    n_fatal = int(len(sub))
    mean_lead = (
        sum(lead_times) / len(lead_times) / DAY if lead_times else 0.0
    )
    return PredictionReport(
        n_warnings=len(warnings),
        n_hits=n_hits,
        n_fatal_failures=n_fatal,
        n_fatal_covered=len(covered),
        mean_lead_days=mean_lead,
    )


def predict_and_evaluate(
    dataset: FOTDataset,
    *,
    min_warnings: int = 1,
    horizon_days: float = 30.0,
) -> PredictionReport:
    """Convenience wrapper: issue warnings, then score them."""
    return evaluate(
        dataset,
        issue_warnings(dataset, min_warnings=min_warnings),
        horizon_days=horizon_days,
    )


__all__ = [
    "Warning_",
    "PredictionReport",
    "warning_types",
    "fatal_types",
    "issue_warnings",
    "evaluate",
    "predict_and_evaluate",
]
