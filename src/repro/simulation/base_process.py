"""The base failure process — the bulk of the trace.

Sampling is hierarchical, with each level implementing one observation
from the paper:

* **per server-month intensity** = component count × per-server frailty
  (Fig 7 concentration) × slot-risk multiplier (Fig 8 spatial effects)
  × lifecycle shape at the server's service age (Fig 6);
* **per day** the month's intensity is modulated by the day-of-week
  detection weight (Fig 3) and a lognormal day effect (mean 1) that
  makes daily counts overdispersed (Table V, and the reason no smooth
  distribution fits the TBF in Fig 5);
* **within the day** timestamps follow the class's detection hour
  profile (Fig 4).

Counts are Poisson given the intensity, and the per-class total is
budget-scaled so the realized mix matches Table II.

The sampler is **shard-aware**: :func:`sample_shard_failures` draws the
failures of any server subset (one data center, in the sharded engine)
given the *global* per-class budget scale from
:func:`class_budget_scales` and the *fleet-wide* daily shock series from
:func:`day_effect_series`.  Because daily counts are Poisson, sharding
the fleet and summing per-shard draws leaves the distribution of every
aggregate untouched (Poisson superposition), while the shared day
effects preserve the fleet-wide common shocks behind Table V.
:func:`sample_base_failures` keeps the original whole-fleet signature on
top of the shard-aware core.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.timeutil import DAY, MONTH, day_of_week
from repro.core.types import ComponentClass
from repro.fleet.fleet import Fleet
from repro.fms.detectors import DetectionModel
from repro.simulation import calibration
from repro.simulation.events import RawFailure
from repro.simulation.hazards import build_shapes

#: Days per simulation month (see :data:`repro.core.timeutil.MONTH`).
_DAYS_PER_MONTH = int(MONTH // DAY)


def draw_frailty(n_servers: int, rng: np.random.Generator) -> np.ndarray:
    """Per-server lognormal frailty multipliers with mean 1.

    A handful of servers end up an order of magnitude more failure-prone
    than the median — the paper's "extremely non-uniform" distribution of
    failures over servers.
    """
    sigma = calibration.FRAILTY_SIGMA
    raw = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_servers)
    return np.minimum(raw, calibration.FRAILTY_CLIP)


def permute_frailty(
    frailty: np.ndarray,
    budgets: Mapping[ComponentClass, float],
    rng: np.random.Generator,
) -> Dict[ComponentClass, np.ndarray]:
    """Per-class frailty vectors: the values of ``frailty`` permuted
    independently per class.

    Frailty is drawn per (class, server): a server with lemon drives
    does not also have lemon DIMMs.  Keeping the *values* and permuting
    per class preserves each class's concentration (Figure 7) while
    keeping cross-class same-day coincidences rare — the paper finds
    genuinely correlated component failures on only 0.49 % of failed
    servers (Table VI).  HDD keeps the base draw (it dominates the
    server-level concentration).
    """
    frailty_by_class = {cls: rng.permutation(frailty) for cls in budgets}
    frailty_by_class[ComponentClass.HDD] = frailty
    return frailty_by_class


def horizon_months(horizon_seconds: float) -> int:
    """Number of (possibly partial) simulation months in the horizon."""
    n_days = int(horizon_seconds // DAY)
    if n_days < _DAYS_PER_MONTH:
        raise ValueError("horizon shorter than one month")
    return (n_days + _DAYS_PER_MONTH - 1) // _DAYS_PER_MONTH  # reprolint: disable=RPL101 -- day count ceil-divided by days-per-month is months by construction


def day_effect_series(
    budgets: Mapping[ComponentClass, float],
    horizon_seconds: float,
    rng: np.random.Generator,
) -> Dict[ComponentClass, np.ndarray]:
    """Fleet-wide lognormal day effects (mean 1) per class and day.

    These are the *common shocks* that overdisperse daily counts
    (Table V); in a sharded run every shard must see the same series,
    so they are drawn once by the planner, not per shard.
    """
    n_days = int(horizon_seconds // DAY)
    out: Dict[ComponentClass, np.ndarray] = {}
    for cls in budgets:
        sigma = calibration.DAY_EFFECT_SIGMA[cls]
        out[cls] = rng.lognormal(-0.5 * sigma**2, sigma, size=n_days)
    return out


def _month_age_service(
    m: int, deployed: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Server ages (months) at mid-month ``m`` and the in-service
    fraction of that month.  The deploy month is prorated, otherwise
    mid-month deployments concentrate a full month of hazard into half a
    month of exposure and fake an infant-mortality spike."""
    month_mid = (m + 0.5) * MONTH
    age_months = np.floor((month_mid - deployed) / MONTH)
    in_service = np.clip(((m + 1) * MONTH - deployed) / MONTH, 0.0, 1.0)
    return age_months, in_service


def class_budget_scales(
    deployed: np.ndarray,
    slot_risk: np.ndarray,
    counts_by_class: Mapping[ComponentClass, np.ndarray],
    frailty_by_class: Mapping[ComponentClass, np.ndarray],
    horizon_seconds: float,
    budgets: Mapping[ComponentClass, float],
) -> Dict[ComponentClass, float]:
    """Global budget-to-intensity scale per class.

    ``scale[cls] * lam`` turns the unnormalized per-server intensity
    into an expected failure count whose fleet-wide total matches the
    class budget.  Shards must all use this *global* scale — a per-shard
    renormalization would force every shard to the same mix and erase
    the real cross-DC variation.
    """
    n_months = horizon_months(horizon_seconds)
    shapes = build_shapes()
    static: Dict[ComponentClass, np.ndarray] = {}
    for cls, budget in budgets.items():
        if budget <= 0:
            continue
        weight = (
            counts_by_class[cls].astype(float)
            * frailty_by_class[cls]
            * slot_risk
        )
        if float(weight.sum()) > 0.0:
            static[cls] = weight
    totals = {cls: 0.0 for cls in static}
    for m in range(n_months):
        age_months, in_service = _month_age_service(m, deployed)
        for cls, weight in static.items():
            lam = weight * shapes[cls](age_months) * in_service
            totals[cls] += float(lam.sum())
    return {
        cls: budgets[cls] / total
        for cls, total in totals.items()
        if total > 0.0
    }


def sample_shard_failures(
    *,
    deployed: np.ndarray,
    slot_risk: np.ndarray,
    counts_by_class: Mapping[ComponentClass, np.ndarray],
    frailty_by_class: Mapping[ComponentClass, np.ndarray],
    horizon_seconds: float,
    scales: Mapping[ComponentClass, float],
    day_effects: Mapping[ComponentClass, np.ndarray],
    detection: DetectionModel,
    rng: np.random.Generator,
) -> List[RawFailure]:
    """Sample the smooth (non-injected) failures of one server subset.

    ``server_row`` in the returned events indexes the *local* arrays
    (``deployed`` etc.); the whole-fleet wrapper passes full-length
    arrays so local == global there.

    Args:
        deployed / slot_risk / counts_by_class / frailty_by_class:
            per-server columns of the subset.
        horizon_seconds: Trace length.
        scales: Global per-class budget scales
            (:func:`class_budget_scales`).
        day_effects: Fleet-wide daily shock series
            (:func:`day_effect_series`).
        detection: Supplies the temporal detection profiles.
        rng: The shard's random stream.

    Returns:
        Unordered list of raw failures (callers sort or heapify).
    """
    n_servers = int(deployed.size)
    n_days = int(horizon_seconds // DAY)
    n_months = horizon_months(horizon_seconds)
    events: List[RawFailure] = []
    if n_servers == 0:
        return events
    shapes = build_shapes()

    day_indices = np.arange(n_days)
    dows = day_of_week(day_indices * DAY).astype(int)

    for cls, scale in scales.items():
        shape = shapes[cls]
        counts = counts_by_class[cls].astype(float)
        static_weight = counts * frailty_by_class[cls] * slot_risk
        if float(static_weight.sum()) == 0.0:
            continue

        # Month-resolved per-server intensities (unnormalized).
        lam_by_month = []
        month_totals = np.zeros(n_months)
        for m in range(n_months):
            age_months, in_service = _month_age_service(m, deployed)
            lam = static_weight * shape(age_months) * in_service
            lam_by_month.append(lam)
            month_totals[m] = lam.sum()
        if month_totals.sum() == 0.0:
            continue

        dow_w = detection.dow_weights(cls) * 7.0  # mean 1 over the week
        effect_series = day_effects[cls]

        for m in range(n_months):
            if month_totals[m] == 0.0:
                continue
            d_lo = m * _DAYS_PER_MONTH
            d_hi = min(n_days, d_lo + _DAYS_PER_MONTH)
            days = day_indices[d_lo:d_hi]
            rates = (
                month_totals[m]
                * scale
                / _DAYS_PER_MONTH
                * dow_w[dows[d_lo:d_hi]]
                * effect_series[d_lo:d_hi]
            )
            n_per_day = rng.poisson(rates)
            n_month = int(n_per_day.sum())
            if n_month == 0:
                continue

            lam = lam_by_month[m]
            cum = np.cumsum(lam)
            rows = np.searchsorted(
                cum, rng.random(n_month) * cum[-1], side="right"
            )
            rows = np.minimum(rows, n_servers - 1)

            day_for_event = np.repeat(days, n_per_day)
            tod = detection.sample_time_of_day(cls, n_month, rng)
            times = day_for_event * DAY + tod
            # Month-level age rounding can land an event a few days
            # before its server was racked; respread those uniformly
            # over the server's actual in-service part of the month
            # (clamping them all onto day one would fake an infant-
            # mortality spike).
            month_end = (d_hi) * DAY
            too_early = times < deployed[rows]
            if too_early.any():
                dep = deployed[rows[too_early]]
                times[too_early] = dep + rng.random(
                    int(too_early.sum())
                ) * np.maximum(month_end - dep, 1.0)
            times = np.minimum(times, horizon_seconds - 1.0)

            max_slots = counts[rows].astype(int)
            slots = (rng.random(n_month) * max_slots).astype(int)

            events.extend(
                RawFailure(
                    time=float(t),
                    server_row=int(r),
                    component=cls,
                    slot=int(s),
                )
                for t, r, s in zip(times, rows, slots)
            )
    return events


def sample_base_failures(
    fleet: Fleet,
    horizon_seconds: float,
    budgets: Dict[ComponentClass, float],
    frailty: np.ndarray,
    detection: DetectionModel,
    rng: np.random.Generator,
    frailty_by_class: Optional[Dict[ComponentClass, np.ndarray]] = None,
) -> List[RawFailure]:
    """Sample the smooth (non-injected) part of the failure trace for a
    whole fleet — the original single-process entry point, now a thin
    wrapper over the shard-aware core.

    Args:
        fleet: The fleet to fail.
        horizon_seconds: Trace length.
        budgets: Expected number of failures per component class.
        frailty: Per-server multipliers from :func:`draw_frailty`.
        detection: Supplies the temporal detection profiles.
        rng: Random source.
        frailty_by_class: Pre-permuted per-class frailty (optional; drawn
            from ``rng`` via :func:`permute_frailty` when omitted).

    Returns:
        Unordered list of raw failures (callers sort or heapify).
    """
    if frailty.shape != (len(fleet),):
        raise ValueError("frailty must have one entry per server")
    horizon_months(horizon_seconds)  # validates the horizon
    if frailty_by_class is None:
        frailty_by_class = permute_frailty(frailty, budgets, rng)
    counts_by_class = {cls: fleet.counts_for(cls) for cls in budgets}
    day_effects = day_effect_series(budgets, horizon_seconds, rng)
    scales = class_budget_scales(
        fleet.deployed_ats,
        fleet.slot_risk,
        counts_by_class,
        frailty_by_class,
        horizon_seconds,
        budgets,
    )
    return sample_shard_failures(
        deployed=fleet.deployed_ats,
        slot_risk=fleet.slot_risk,
        counts_by_class=counts_by_class,
        frailty_by_class=frailty_by_class,
        horizon_seconds=horizon_seconds,
        scales=scales,
        day_effects=day_effects,
        detection=detection,
        rng=rng,
    )


__all__ = [
    "sample_base_failures",
    "sample_shard_failures",
    "class_budget_scales",
    "day_effect_series",
    "permute_frailty",
    "horizon_months",
    "draw_frailty",
]
