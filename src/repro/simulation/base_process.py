"""The base failure process — the bulk of the trace.

Sampling is hierarchical, with each level implementing one observation
from the paper:

* **per server-month intensity** = component count × per-server frailty
  (Fig 7 concentration) × slot-risk multiplier (Fig 8 spatial effects)
  × lifecycle shape at the server's service age (Fig 6);
* **per day** the month's intensity is modulated by the day-of-week
  detection weight (Fig 3) and a lognormal day effect (mean 1) that
  makes daily counts overdispersed (Table V, and the reason no smooth
  distribution fits the TBF in Fig 5);
* **within the day** timestamps follow the class's detection hour
  profile (Fig 4).

Counts are Poisson given the intensity, and the per-class total is
budget-scaled so the realized mix matches Table II.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.timeutil import DAY, MONTH, day_of_week
from repro.core.types import ComponentClass
from repro.fleet.fleet import Fleet
from repro.fms.detectors import DetectionModel
from repro.simulation import calibration
from repro.simulation.events import RawFailure
from repro.simulation.hazards import build_shapes

#: Days per simulation month (see :data:`repro.core.timeutil.MONTH`).
_DAYS_PER_MONTH = int(MONTH // DAY)


def draw_frailty(n_servers: int, rng: np.random.Generator) -> np.ndarray:
    """Per-server lognormal frailty multipliers with mean 1.

    A handful of servers end up an order of magnitude more failure-prone
    than the median — the paper's "extremely non-uniform" distribution of
    failures over servers.
    """
    sigma = calibration.FRAILTY_SIGMA
    raw = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_servers)
    return np.minimum(raw, calibration.FRAILTY_CLIP)


def sample_base_failures(
    fleet: Fleet,
    horizon_seconds: float,
    budgets: Dict[ComponentClass, float],
    frailty: np.ndarray,
    detection: DetectionModel,
    rng: np.random.Generator,
) -> List[RawFailure]:
    """Sample the smooth (non-injected) part of the failure trace.

    Args:
        fleet: The fleet to fail.
        horizon_seconds: Trace length.
        budgets: Expected number of failures per component class.
        frailty: Per-server multipliers from :func:`draw_frailty`.
        detection: Supplies the temporal detection profiles.
        rng: Random source.

    Returns:
        Unordered list of raw failures (callers sort or heapify).
    """
    if frailty.shape != (len(fleet),):
        raise ValueError("frailty must have one entry per server")
    n_days = int(horizon_seconds // DAY)
    if n_days < _DAYS_PER_MONTH:
        raise ValueError("horizon shorter than one month")
    n_months = (n_days + _DAYS_PER_MONTH - 1) // _DAYS_PER_MONTH

    shapes = build_shapes()
    deployed = fleet.deployed_ats
    slot_risk = fleet.slot_risk
    # Frailty is drawn per (class, server): a server with lemon drives
    # does not also have lemon DIMMs.  Keeping the *values* and permuting
    # per class preserves each class's concentration (Figure 7) while
    # keeping cross-class same-day coincidences rare — the paper finds
    # genuinely correlated component failures on only 0.49 % of failed
    # servers (Table VI).  HDD keeps the base draw (it dominates the
    # server-level concentration).
    frailty_by_class = {cls: rng.permutation(frailty) for cls in budgets}
    frailty_by_class[ComponentClass.HDD] = frailty
    events: List[RawFailure] = []

    day_indices = np.arange(n_days)
    dows = day_of_week(day_indices * DAY).astype(int)

    for cls, budget in budgets.items():
        if budget <= 0:
            continue
        shape = shapes[cls]
        counts = fleet.counts_for(cls).astype(float)
        static_weight = counts * frailty_by_class[cls] * slot_risk
        if float(static_weight.sum()) == 0.0:
            continue

        # Month-resolved per-server intensities (unnormalized).  The
        # deploy month is prorated by the in-service fraction, otherwise
        # mid-month deployments concentrate a full month of hazard into
        # half a month of exposure and fake an infant-mortality spike.
        lam_by_month = []
        month_totals = np.zeros(n_months)
        for m in range(n_months):
            month_mid = (m + 0.5) * MONTH
            age_months = np.floor((month_mid - deployed) / MONTH)
            in_service = np.clip(((m + 1) * MONTH - deployed) / MONTH, 0.0, 1.0)
            lam = static_weight * shape(age_months) * in_service
            lam_by_month.append(lam)
            month_totals[m] = lam.sum()
        grand_total = month_totals.sum()
        if grand_total == 0.0:
            continue
        scale = budget / grand_total

        dow_w = detection.dow_weights(cls) * 7.0  # mean 1 over the week
        sigma = calibration.DAY_EFFECT_SIGMA[cls]

        for m in range(n_months):
            if month_totals[m] == 0.0:
                continue
            d_lo = m * _DAYS_PER_MONTH
            d_hi = min(n_days, d_lo + _DAYS_PER_MONTH)
            days = day_indices[d_lo:d_hi]
            day_effect = rng.lognormal(-0.5 * sigma**2, sigma, size=days.size)
            rates = (
                month_totals[m]
                * scale
                / _DAYS_PER_MONTH
                * dow_w[dows[d_lo:d_hi]]
                * day_effect
            )
            n_per_day = rng.poisson(rates)
            n_month = int(n_per_day.sum())
            if n_month == 0:
                continue

            lam = lam_by_month[m]
            cum = np.cumsum(lam)
            rows = np.searchsorted(
                cum, rng.random(n_month) * cum[-1], side="right"
            )
            rows = np.minimum(rows, len(fleet) - 1)

            day_for_event = np.repeat(days, n_per_day)
            tod = detection.sample_time_of_day(cls, n_month, rng)
            times = day_for_event * DAY + tod
            # Month-level age rounding can land an event a few days
            # before its server was racked; respread those uniformly
            # over the server's actual in-service part of the month
            # (clamping them all onto day one would fake an infant-
            # mortality spike).
            month_end = (d_hi) * DAY
            too_early = times < deployed[rows]
            if too_early.any():
                dep = deployed[rows[too_early]]
                times[too_early] = dep + rng.random(
                    int(too_early.sum())
                ) * np.maximum(month_end - dep, 1.0)
            times = np.minimum(times, horizon_seconds - 1.0)

            max_slots = counts[rows].astype(int)
            slots = (rng.random(n_month) * max_slots).astype(int)

            events.extend(
                RawFailure(
                    time=float(t),
                    server_row=int(r),
                    component=cls,
                    slot=int(s),
                )
                for t, r, s in zip(times, rows, slots)
            )
    return events


__all__ = ["sample_base_failures", "draw_frailty"]
