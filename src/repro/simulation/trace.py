"""Top-level trace generation.

:func:`generate_trace` wires the whole substrate together:

1. build the fleet from the (scaled) config;
2. draw per-server frailty and pick the lemon servers;
3. sample the base failure process (lifecycle × workload × day effects);
4. inject batch storms, correlated pairs, the flapping BBU server and
   the synchronous repeat groups;
5. run everything through the FMS pipeline, which categorizes tickets,
   samples operator responses and grows repeat chains.

The result bundles the dataset with the fleet, the inventory table the
analyses need for normalization, and the injectors' ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.config import ScenarioConfig, paper_scenario
from repro.core.dataset import FOTDataset
from repro.core.timeutil import YEAR
from repro.core.types import ComponentClass
from repro.fleet.builder import build_fleet
from repro.fleet.fleet import Fleet
from repro.fleet.inventory import Inventory
from repro.fms.detectors import DetectionModel
from repro.fms.pipeline import FMSPipeline
from repro.simulation import calibration
from repro.simulation.base_process import draw_frailty, sample_base_failures
from repro.simulation.batch_events import StormRecord, inject_batch_events
from repro.simulation.correlated import (
    InjectionRecord,
    inject_correlated_pairs,
    inject_flapping_server,
    inject_synchronous_groups,
)
from repro.simulation.events import RawFailure


@dataclass
class SyntheticTrace:
    """A generated trace plus everything needed to analyze it.

    Attributes:
        dataset: The FOTs, time-ordered.  Built columnar by the FMS
            pipeline (``ColumnBuilder``) — no ``FOT`` objects are
            allocated unless the trace is iterated ticket-by-ticket.
        fleet: The full fleet object graph.
        inventory: Per-server metadata table (analysis denominators).
        config: The scenario that produced the trace.
        storms: Ground truth of injected batch events.
        injections: Ground truth of correlated/repeat injections.
        fms_stats: Pipeline counters (events in, repeats scheduled, ...).
    """

    dataset: FOTDataset
    fleet: Fleet
    inventory: Inventory
    config: ScenarioConfig
    storms: List[StormRecord] = field(default_factory=list)
    injections: List[InjectionRecord] = field(default_factory=list)
    fms_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def horizon_seconds(self) -> float:
        return self.config.horizon_seconds


def _class_budgets(config: ScenarioConfig) -> Dict[ComponentClass, float]:
    """Expected base-process failures per class: the Table II mix times
    the target volume, minus the share reserved for injectors and
    FMS-grown repeats."""
    target = config.scaled_target_failures
    return {
        cls: target * share * calibration.BASE_BUDGET_FACTOR[cls]
        for cls, share in calibration.COMPONENT_MIX.items()
    }


def apply_monitoring_rollout(
    events: List[RawFailure],
    fleet: Fleet,
    config: ScenarioConfig,
    rng: np.random.Generator,
) -> List[RawFailure]:
    """Drop automatic detections on servers the FMS does not watch yet.

    Models the paper's Section VII-C limitation: agent coverage ramps
    from ``monitoring_initial_coverage`` to 1.0 linearly over
    ``monitoring_rollout_years``.  Each server gets a monitored-since
    time consistent with that ramp; automatic-class failures before it
    are lost (nobody saw them), manual miscellaneous reports survive
    (humans do not need agents).
    """
    if config.monitoring_rollout_years <= 0:
        return events
    c0 = config.monitoring_initial_coverage
    ramp_seconds = config.monitoring_rollout_years * YEAR
    u = rng.random(len(fleet))
    monitored_since = np.where(
        u < c0,
        0.0,
        ramp_seconds * (u - c0) / max(1.0 - c0, 1e-12),
    )
    kept = [
        e
        for e in events
        if e.component is ComponentClass.MISC
        or e.time >= monitored_since[e.server_row]
    ]
    return kept


def generate_trace(config: ScenarioConfig) -> SyntheticTrace:
    """Generate one synthetic four-year trace from a scenario config."""
    rng = np.random.default_rng(config.seed)
    fleet = build_fleet(config.scaled_fleet(), rng)
    detection = DetectionModel()

    frailty = draw_frailty(len(fleet), rng)
    n_lemons = max(1, int(round(calibration.LEMON_FRACTION * len(fleet))))
    lemon_rows = set(
        int(r) for r in rng.choice(len(fleet), size=n_lemons, replace=False)
    )

    events: List[RawFailure] = sample_base_failures(
        fleet,
        config.horizon_seconds,
        _class_budgets(config),
        frailty,
        detection,
        rng,
    )

    storm_events, storms = inject_batch_events(
        fleet, config.horizon_seconds, config.scale, rng
    )
    events.extend(storm_events)

    injections: List[InjectionRecord] = []
    pair_events, pair_records = inject_correlated_pairs(
        fleet, config.horizon_seconds, config.scale, rng
    )
    events.extend(pair_events)
    injections.extend(pair_records)

    flap_events, flap_record = inject_flapping_server(
        fleet, config.horizon_seconds, config.scale, rng
    )
    events.extend(flap_events)
    if flap_record is not None:
        injections.append(flap_record)

    sync_events, sync_records = inject_synchronous_groups(
        fleet, config.horizon_seconds, config.scale, rng
    )
    events.extend(sync_events)
    injections.extend(sync_records)

    events = apply_monitoring_rollout(events, fleet, config, rng)

    pipeline = FMSPipeline(
        fleet,
        config.horizon_seconds,
        rng,
        lemon_rows=lemon_rows,
        detection=detection,
    )
    warranty_seconds = config.fleet.warranty_years * YEAR
    dataset = pipeline.run(events, warranty_seconds)

    return SyntheticTrace(
        dataset=dataset,
        fleet=fleet,
        inventory=fleet.to_inventory(),
        config=config,
        storms=storms,
        injections=injections,
        fms_stats=dict(pipeline.stats),
    )


def generate_paper_trace(
    scale: float = 1.0, seed: int = 20170626
) -> SyntheticTrace:
    """Generate the calibrated paper scenario (optionally scaled down).

    ``scale=1.0`` yields ~290k FOTs over ~230k servers in 24 data
    centers; ``scale=0.05`` is a comfortable laptop-sized trace with the
    same per-server statistics.
    """
    return generate_trace(paper_scenario(scale=scale, seed=seed))


__all__ = [
    "SyntheticTrace",
    "generate_trace",
    "generate_paper_trace",
    "apply_monitoring_rollout",
]
