"""Top-level trace generation, sharded by data center.

:func:`generate_trace` wires the whole substrate together in three
phases that together form the execution engine's unit of work:

1. **plan** (:func:`plan_trace`) — build the fleet, the operator model
   and every fleet-wide random input (frailty, lemons, budget scales,
   daily common shocks, injected storms/pairs/flaps/sync groups,
   monitoring rollout), then split the fleet into one
   :class:`ShardTask` per data center.  Every shard gets its own child
   seed from a :class:`numpy.random.SeedSequence` spawn tree rooted at
   the scenario seed.
2. **execute** (:func:`run_shard`) — sample the shard's base failures,
   merge in its injected events, and run its FMS pipeline; each shard
   returns raw :class:`~repro.core.columns.ColumnStore` arrays.
3. **assemble** (:func:`finish_trace`) — concatenate the shard stores
   once, time-sort, renumber ticket ids, and bundle the result.

Because a shard is *always* one data center — ``jobs`` only decides how
many worker processes execute them — the sharded output is bit-identical
to the serial output for the same scenario seed.  Fleet-wide couplings
survive sharding by construction: the per-class budget scale and the
daily lognormal shocks are computed once in the plan and shared by all
shards (Poisson superposition keeps every aggregate's distribution
intact), and the operator model's per-line behaviour tables are drawn
once and cloned per shard with :meth:`OperatorModel.with_rng`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import ScenarioConfig, paper_scenario
from repro.core.columns import COLUMN_NAMES, TABLE_NAMES, ColumnBuilder, ColumnStore
from repro.core.dataset import FOTDataset
from repro.core.timeutil import YEAR
from repro.core.types import ComponentClass
from repro.fleet.builder import build_fleet
from repro.fleet.fleet import Fleet
from repro.fleet.inventory import Inventory
from repro.fleet.server import Server
from repro.fms.detectors import DetectionModel
from repro.fms.operators import OperatorModel
from repro.fms.pipeline import FMSPipeline
from repro.fms.repair import RepairModel
from repro.simulation import calibration
from repro.simulation.base_process import (
    class_budget_scales,
    day_effect_series,
    draw_frailty,
    permute_frailty,
    sample_shard_failures,
)
from repro.simulation.batch_events import StormRecord, inject_batch_events
from repro.simulation.correlated import (
    InjectionRecord,
    inject_correlated_pairs,
    inject_flapping_server,
    inject_synchronous_groups,
)
from repro.simulation.events import RawFailure

if TYPE_CHECKING:
    from repro.engine.policy import ExecutionPolicy
    from repro.engine.telemetry import RunTelemetry

#: FMS-grown repeat chains of shard *i* are numbered from
#: ``i * CHAIN_ID_STRIDE`` so chain ids stay globally unique.
CHAIN_ID_STRIDE = 1_000_000_000


@dataclass
class SyntheticTrace:
    """A generated trace plus everything needed to analyze it.

    Attributes:
        dataset: The FOTs, time-ordered.  Built columnar by the FMS
            pipeline (``ColumnBuilder``) — no ``FOT`` objects are
            allocated unless the trace is iterated ticket-by-ticket.
        fleet: The full fleet object graph.
        inventory: Per-server metadata table (analysis denominators).
        config: The scenario that produced the trace.
        storms: Ground truth of injected batch events.
        injections: Ground truth of correlated/repeat injections.
        fms_stats: Pipeline counters (events in, repeats scheduled, ...),
            summed over shards.
        telemetry: The run's structured execution telemetry (plan
            decision, per-stage and per-shard timings); ``None`` for
            traces assembled outside :func:`generate_trace`.
            Observational only — never part of the dataset content.
    """

    dataset: FOTDataset
    fleet: Fleet
    inventory: Inventory
    config: ScenarioConfig
    storms: List[StormRecord] = field(default_factory=list)
    injections: List[InjectionRecord] = field(default_factory=list)
    fms_stats: Dict[str, int] = field(default_factory=dict)
    telemetry: Optional["RunTelemetry"] = None

    @property
    def horizon_seconds(self) -> float:
        return self.config.horizon_seconds


def _class_budgets(config: ScenarioConfig) -> Dict[ComponentClass, float]:
    """Expected base-process failures per class: the Table II mix times
    the target volume, minus the share reserved for injectors and
    FMS-grown repeats."""
    target = config.scaled_target_failures
    return {
        cls: target * share * calibration.BASE_BUDGET_FACTOR[cls]
        for cls, share in calibration.COMPONENT_MIX.items()
    }


def apply_monitoring_rollout(
    events: List[RawFailure],
    fleet: Fleet,
    config: ScenarioConfig,
    rng: np.random.Generator,
) -> List[RawFailure]:
    """Drop automatic detections on servers the FMS does not watch yet.

    Models the paper's Section VII-C limitation: agent coverage ramps
    from ``monitoring_initial_coverage`` to 1.0 linearly over
    ``monitoring_rollout_years``.  Each server gets a monitored-since
    time consistent with that ramp; automatic-class failures before it
    are lost (nobody saw them), manual miscellaneous reports survive
    (humans do not need agents).
    """
    monitored_since = _monitored_since(len(fleet), config, rng)
    if monitored_since is None:
        return events
    return _filter_monitored(events, monitored_since)


def _monitored_since(
    n_servers: int, config: ScenarioConfig, rng: np.random.Generator
) -> Optional[np.ndarray]:
    """Per-server monitored-since times, or ``None`` without a rollout."""
    if config.monitoring_rollout_years <= 0:
        return None
    c0 = config.monitoring_initial_coverage
    ramp_seconds = config.monitoring_rollout_years * YEAR
    u = rng.random(n_servers)
    return np.where(
        u < c0,
        0.0,
        ramp_seconds * (u - c0) / max(1.0 - c0, 1e-12),
    )


def _filter_monitored(
    events: List[RawFailure], monitored_since: np.ndarray
) -> List[RawFailure]:
    return [
        e
        for e in events
        if e.component is ComponentClass.MISC
        or e.time >= monitored_since[e.server_row]
    ]


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
@dataclass
class ShardShared:
    """Fleet-wide inputs every shard reads (one object, shared)."""

    horizon_seconds: float
    warranty_seconds: float
    scales: Dict[ComponentClass, float]
    day_effects: Dict[ComponentClass, np.ndarray]
    detection: DetectionModel
    operators: OperatorModel


@dataclass
class ShardTask:
    """Everything one data-center shard needs, self-contained so a
    worker process can execute it without the fleet object graph."""

    index: int
    idc: str
    rows: np.ndarray  # global server rows of this DC, ascending
    servers: Tuple[Server, ...]
    deployed: np.ndarray
    slot_risk: np.ndarray
    counts_by_class: Dict[ComponentClass, np.ndarray]
    frailty_by_class: Dict[ComponentClass, np.ndarray]
    lemon_local: Tuple[int, ...]
    monitored_since: Optional[np.ndarray]
    injected: Tuple[RawFailure, ...]  # server_row already shard-local
    seed: np.random.SeedSequence


@dataclass
class ShardResult:
    """One executed shard: raw columns plus pipeline counters.

    ``wall_seconds``/``cpu_seconds`` time the shard's own execution
    (measured inside :func:`run_shard`, so they are per-worker under a
    pool).  Telemetry only — the trace content never depends on them.
    """

    index: int
    n: int
    arrays: Dict[str, np.ndarray]
    tables: Dict[str, Tuple[str, ...]]
    stats: Dict[str, int]
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0


@dataclass
class TracePlan:
    """The planned run: fleet-wide state plus one task per data center."""

    config: ScenarioConfig
    fleet: Fleet
    shared: ShardShared
    tasks: List[ShardTask]
    storms: List[StormRecord]
    injections: List[InjectionRecord]


class _ServerSlice:
    """Minimal fleet stand-in for the FMS pipeline: just the servers."""

    __slots__ = ("servers",)

    def __init__(self, servers: Tuple[Server, ...]):
        self.servers = servers


def plan_trace(config: ScenarioConfig) -> TracePlan:
    """Phase 1: build the fleet and all fleet-wide random state, then
    split the run into one :class:`ShardTask` per data center.

    The seed tree is spawned from ``SeedSequence(config.seed)``:
    children 0-2 seed the fleet builder, the operator model and the
    global stream (frailty, lemons, day effects, injections, rollout);
    children 3.. seed one shard each.  Identical for any ``jobs``.
    """
    root = np.random.SeedSequence(config.seed)
    fleet_seed, model_seed, global_seed = root.spawn(3)

    fleet = build_fleet(config.scaled_fleet(), np.random.default_rng(fleet_seed))
    detection = DetectionModel()
    operators = OperatorModel(fleet, np.random.default_rng(model_seed))

    grng = np.random.default_rng(global_seed)
    frailty = draw_frailty(len(fleet), grng)
    n_lemons = max(1, int(round(calibration.LEMON_FRACTION * len(fleet))))
    lemon_rows = set(
        int(r) for r in grng.choice(len(fleet), size=n_lemons, replace=False)
    )

    budgets = _class_budgets(config)
    frailty_by_class = permute_frailty(frailty, budgets, grng)
    day_effects = day_effect_series(budgets, config.horizon_seconds, grng)

    injected: List[RawFailure] = []
    storm_events, storms = inject_batch_events(
        fleet, config.horizon_seconds, config.scale, grng
    )
    injected.extend(storm_events)

    injections: List[InjectionRecord] = []
    pair_events, pair_records = inject_correlated_pairs(
        fleet, config.horizon_seconds, config.scale, grng
    )
    injected.extend(pair_events)
    injections.extend(pair_records)

    flap_events, flap_record = inject_flapping_server(
        fleet, config.horizon_seconds, config.scale, grng
    )
    injected.extend(flap_events)
    if flap_record is not None:
        injections.append(flap_record)

    sync_events, sync_records = inject_synchronous_groups(
        fleet, config.horizon_seconds, config.scale, grng
    )
    injected.extend(sync_events)
    injections.extend(sync_records)

    monitored_since = _monitored_since(len(fleet), config, grng)

    counts_by_class = {cls: fleet.counts_for(cls) for cls in budgets}
    scales = class_budget_scales(
        fleet.deployed_ats,
        fleet.slot_risk,
        counts_by_class,
        frailty_by_class,
        config.horizon_seconds,
        budgets,
    )

    shared = ShardShared(
        horizon_seconds=config.horizon_seconds,
        warranty_seconds=config.fleet.warranty_years * YEAR,
        scales=scales,
        day_effects=day_effects,
        detection=detection,
        operators=operators,
    )

    # ------------------------------------------------------------------
    # split by data center
    # ------------------------------------------------------------------
    idc_codes = fleet.idc_codes
    n_dcs = len(fleet.datacenters)
    local_pos = np.empty(len(fleet), dtype=np.int64)
    rows_by_dc: List[np.ndarray] = []
    for i in range(n_dcs):
        rows = np.flatnonzero(idc_codes == i)
        local_pos[rows] = np.arange(rows.size)
        rows_by_dc.append(rows)

    injected_by_dc: List[List[RawFailure]] = [[] for _ in range(n_dcs)]
    for event in injected:
        dc = int(idc_codes[event.server_row])
        injected_by_dc[dc].append(
            dataclasses.replace(event, server_row=int(local_pos[event.server_row]))
        )

    shard_seeds = root.spawn(n_dcs)
    tasks: List[ShardTask] = []
    for i, dc in enumerate(fleet.datacenters):
        rows = rows_by_dc[i]
        tasks.append(
            ShardTask(
                index=i,
                idc=dc.name,
                rows=rows,
                servers=tuple(fleet.servers[r] for r in rows),
                deployed=fleet.deployed_ats[rows],
                slot_risk=fleet.slot_risk[rows],
                counts_by_class={
                    cls: counts[rows] for cls, counts in counts_by_class.items()
                },
                frailty_by_class={
                    cls: values[rows] for cls, values in frailty_by_class.items()
                },
                lemon_local=tuple(
                    int(local_pos[r]) for r in sorted(lemon_rows) if idc_codes[r] == i
                ),
                monitored_since=(
                    None if monitored_since is None else monitored_since[rows]
                ),
                injected=tuple(injected_by_dc[i]),
                seed=shard_seeds[i],
            )
        )

    return TracePlan(
        config=config,
        fleet=fleet,
        shared=shared,
        tasks=tasks,
        storms=storms,
        injections=injections,
    )


# ----------------------------------------------------------------------
# execute
# ----------------------------------------------------------------------
def run_shard(task: ShardTask, shared: ShardShared) -> ShardResult:
    """Phase 2: execute one data-center shard.

    Deterministic given (task, shared): the shard rng comes from the
    task's spawned seed, so results do not depend on which process (or
    in which order) shards run.
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    rng = np.random.default_rng(task.seed)
    events = sample_shard_failures(
        deployed=task.deployed,
        slot_risk=task.slot_risk,
        counts_by_class=task.counts_by_class,
        frailty_by_class=task.frailty_by_class,
        horizon_seconds=shared.horizon_seconds,
        scales=shared.scales,
        day_effects=shared.day_effects,
        detection=shared.detection,
        rng=rng,
    )
    events.extend(task.injected)
    if task.monitored_since is not None:
        events = _filter_monitored(events, task.monitored_since)

    pipeline = FMSPipeline(
        _ServerSlice(task.servers),
        shared.horizon_seconds,
        rng,
        lemon_rows=set(task.lemon_local),
        detection=shared.detection,
        operators=shared.operators.with_rng(rng),
        repair=RepairModel(rng),
        chain_id_base=task.index * CHAIN_ID_STRIDE,
    )
    store = pipeline.run_store(events, shared.warranty_seconds)
    return ShardResult(
        index=task.index,
        n=store.n,
        arrays={name: store.column(name) for name in COLUMN_NAMES},
        tables={name: store.table(name) for name in TABLE_NAMES},
        stats=dict(pipeline.stats),
        wall_seconds=time.perf_counter() - wall0,
        cpu_seconds=time.process_time() - cpu0,
    )


# ----------------------------------------------------------------------
# assemble
# ----------------------------------------------------------------------
def assemble_store(results: Sequence[ShardResult]) -> ColumnStore:
    """Phase 3a: merge shard columns into one time-ordered store.

    Shards are concatenated in index order (so the sort is reproducible
    regardless of completion order), stable-sorted by error time, and
    ticket ids renumbered 0..n-1 over the merged trace.
    """
    ordered = sorted(results, key=lambda r: r.index)
    parts = []
    for r in ordered:
        if r.n == 0:
            continue
        store = ColumnStore.from_columns(r.n, dict(r.arrays), dict(r.tables))
        parts.append((store, np.arange(r.n, dtype=np.int64)))
    if not parts:
        return ColumnBuilder().build()
    merged = ColumnStore.concatenate(parts)
    order = np.argsort(merged.column("error_times"), kind="stable")
    arrays: Dict[str, np.ndarray] = {}
    for name in COLUMN_NAMES:
        if name == "fot_ids":
            arrays[name] = np.arange(merged.n, dtype=np.int64)
        else:
            arrays[name] = merged.column(name)[order]
    tables = {name: merged.table(name) for name in TABLE_NAMES}
    return ColumnStore.from_columns(merged.n, arrays, tables)


def finish_trace(plan: TracePlan, results: Sequence[ShardResult]) -> SyntheticTrace:
    """Phase 3b: bundle assembled shard results into a trace."""
    stats: Dict[str, int] = {}
    for r in results:
        for key, value in r.stats.items():
            stats[key] = stats.get(key, 0) + value
    store = assemble_store(results)
    return SyntheticTrace(
        dataset=FOTDataset.from_store(store),
        fleet=plan.fleet,
        inventory=plan.fleet.to_inventory(),
        config=plan.config,
        storms=plan.storms,
        injections=plan.injections,
        fms_stats=stats,
    )


def generate_trace(
    config: ScenarioConfig,
    jobs: Optional[Union[int, str]] = None,
    *,
    policy: Optional["ExecutionPolicy"] = None,
) -> SyntheticTrace:
    """Generate one synthetic four-year trace from a scenario config.

    Execution is planned by :func:`repro.engine.adaptive.plan_execution`
    from the policy's ``jobs`` request (default ``"auto"``): the
    planner probes usable cores, estimates per-shard cost, and runs the
    per-DC shards either in-process or on a sized process pool.  Every
    plan produces bit-identical output for the same scenario seed, so
    the choice is purely about speed — and ``"auto"`` falls back to
    serial whenever a pool could not pay for itself (one usable core, a
    single shard, or a workload below the payoff threshold).  The
    chosen plan, the reason, and per-stage/per-shard timings are
    recorded on ``trace.telemetry`` (and the policy's telemetry sink).

    ``jobs`` is the positional shorthand for
    ``policy=ExecutionPolicy(jobs=...)``; pass one or the other.
    """
    from repro.engine.adaptive import plan_execution
    from repro.engine.policy import ExecutionPolicy, coerce_jobs
    from repro.engine.telemetry import (
        KIND_TRACE,
        RunTelemetry,
        ShardTelemetry,
        StageTiming,
    )

    if policy is None:
        policy = ExecutionPolicy(
            jobs="auto" if jobs is None else coerce_jobs(jobs)
        )
    elif jobs is not None:
        raise ValueError("pass either jobs= or policy=, not both")

    wall0, cpu0 = time.perf_counter(), time.process_time()
    plan = plan_trace(config)
    xplan = plan_execution(
        plan.tasks,
        requested=policy.jobs,
        shard_strategy=policy.shard_strategy,
    )
    plan_wall = time.perf_counter() - wall0
    plan_cpu = time.process_time() - cpu0

    wall1, cpu1 = time.perf_counter(), time.process_time()
    if xplan.parallel:
        from repro.engine.parallel import run_shards

        results = run_shards(
            plan.tasks, plan.shared, jobs=xplan.jobs,
            order=xplan.dispatch_order,
        )
    else:
        results = [run_shard(task, plan.shared) for task in plan.tasks]
    execute_wall = time.perf_counter() - wall1
    execute_cpu = time.process_time() - cpu1

    wall2, cpu2 = time.perf_counter(), time.process_time()
    trace = finish_trace(plan, results)
    assemble_wall = time.perf_counter() - wall2
    assemble_cpu = time.process_time() - cpu2

    position_of = {
        index: pos for pos, index in enumerate(xplan.dispatch_order)
    }
    trace.telemetry = RunTelemetry(
        kind=KIND_TRACE,
        plan=xplan.decision,
        stages=(
            StageTiming("plan", plan_wall, plan_cpu),
            StageTiming("execute", execute_wall, execute_cpu),
            StageTiming("assemble", assemble_wall, assemble_cpu),
            StageTiming(
                "total",
                plan_wall + execute_wall + assemble_wall,
                plan_cpu + execute_cpu + assemble_cpu,
            ),
        ),
        shards=tuple(
            ShardTelemetry(
                index=result.index,
                idc=plan.tasks[result.index].idc,
                n_servers=len(plan.tasks[result.index].rows),
                n_tickets=result.n,
                estimated_cost=xplan.costs[result.index],
                dispatch_order=position_of[result.index],
                queue_depth=xplan.queue_depth_at(position_of[result.index]),
                wall_seconds=result.wall_seconds,
                cpu_seconds=result.cpu_seconds,
            )
            for result in sorted(results, key=lambda r: r.index)
        ),
    )
    policy.record(trace.telemetry)
    return trace


def generate_paper_trace(
    scale: float = 1.0,
    seed: int = 20170626,
    jobs: Optional[Union[int, str]] = None,
    *,
    policy: Optional["ExecutionPolicy"] = None,
) -> SyntheticTrace:
    """Generate the calibrated paper scenario (optionally scaled down).

    ``scale=1.0`` yields ~290k FOTs over ~230k servers in 24 data
    centers; ``scale=0.05`` is a comfortable laptop-sized trace with the
    same per-server statistics.
    """
    return generate_trace(
        paper_scenario(scale=scale, seed=seed), jobs, policy=policy
    )


__all__ = [
    "SyntheticTrace",
    "TracePlan",
    "ShardTask",
    "ShardShared",
    "ShardResult",
    "CHAIN_ID_STRIDE",
    "plan_trace",
    "run_shard",
    "assemble_store",
    "finish_trace",
    "generate_trace",
    "generate_paper_trace",
    "apply_monitoring_rollout",
]
