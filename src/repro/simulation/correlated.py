"""Correlated-failure injectors — Sections V-B, V-C and III-D.

* :func:`inject_correlated_pairs` — two components of the *same server*
  failing within a day (Table VI).  The first class in each calibrated
  pair is the cause, the second the effect (a PSU failure takes the fans
  down, Table VII); pairs involving ``MISC`` are the operator noticing a
  hardware failure and filing a manual ticket right away (71.5 % of
  two-component failures have a miscellaneous report).
* :func:`inject_flapping_server` — the 400-failure web-service server of
  Section III-D: a BBU root cause makes the RAID card flap, each
  automatic reboot "solves" the ticket, and the drive fails again hours
  later, for about a year.
* :func:`inject_synchronous_groups` — near-identical neighbours whose
  repeating failures line up to the second (Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.timeutil import DAY, HOUR, MINUTE, YEAR
from repro.core.types import ComponentClass
from repro.fleet.fleet import Fleet
from repro.simulation import calibration
from repro.simulation.events import RawFailure


@dataclass(frozen=True)
class InjectionRecord:
    """Ground truth for one injected correlation structure."""

    tag: str
    kind: str
    server_rows: Tuple[int, ...]
    n_events: int
    description: str


def _rows_with_component(fleet: Fleet, cls: ComponentClass) -> np.ndarray:
    counts = fleet.counts_for(cls)
    return np.flatnonzero(counts > 0)


def inject_correlated_pairs(
    fleet: Fleet,
    horizon_seconds: float,
    scale: float,
    rng: np.random.Generator,
) -> Tuple[List[RawFailure], List[InjectionRecord]]:
    """Materialize the Table VI pair matrix (scaled)."""
    events: List[RawFailure] = []
    records: List[InjectionRecord] = []
    pair_id = 0
    for (cause, effect), paper_count in calibration.CORRELATED_PAIR_COUNTS.items():
        n = int(round(paper_count * scale))
        if paper_count > 0 and scale >= 0.005:
            n = max(1, n)
        if n == 0:
            continue
        eligible = np.intersect1d(
            _rows_with_component(fleet, cause), _rows_with_component(fleet, effect)
        )
        if eligible.size == 0:
            continue
        rows = rng.choice(eligible, size=n, replace=eligible.size < n)
        for row in rows:
            tag = f"corr_pair:{pair_id}"
            pair_id += 1
            earliest = max(0.0, float(fleet.deployed_ats[row]))
            if earliest >= horizon_seconds - DAY:
                continue
            t0 = float(rng.uniform(earliest, horizon_seconds - DAY))
            if cause is ComponentClass.MISC:
                # Operator files the manual ticket after the hardware
                # failure is detected.
                first_cls, second_cls = effect, cause
                gap = float(rng.uniform(10 * MINUTE, 6 * HOUR))
            else:
                first_cls, second_cls = cause, effect
                gap = float(rng.uniform(30.0, 30 * MINUTE))
            for cls, t in ((first_cls, t0), (second_cls, t0 + gap)):
                max_slot = max(1, int(fleet.counts_for(cls)[row]))
                events.append(
                    RawFailure(
                        time=t,
                        server_row=int(row),
                        component=cls,
                        slot=int(rng.integers(max_slot)),
                        tag=tag,
                        suppress_repeat=True,
                    )
                )
            records.append(
                InjectionRecord(
                    tag=tag,
                    kind="correlated_pair",
                    server_rows=(int(row),),
                    n_events=2,
                    description=f"{cause.value} -> {effect.value} on one server",
                )
            )
    return events, records


def inject_flapping_server(
    fleet: Fleet,
    horizon_seconds: float,
    scale: float,
    rng: np.random.Generator,
) -> Tuple[List[RawFailure], Optional[InjectionRecord]]:
    """The BBU up-and-down server: >400 RAID/HDD failures in ~a year.

    The chain length scales down with the scenario so tiny test fleets
    are not dominated by a single server, but never below a handful —
    the repeating-failure analyses need at least one clear extreme case.
    """
    eligible = _rows_with_component(fleet, ComponentClass.RAID_CARD)
    # The flap needs a long in-service window, so only servers deployed
    # in the first part of the horizon qualify.
    eligible = eligible[fleet.deployed_ats[eligible] < horizon_seconds * 0.35]
    if eligible.size == 0:
        return [], None
    # Prefer an online (web service) line, matching the anecdote.
    online_rows = [
        int(r)
        for r in eligible
        if fleet.product_line(fleet.servers[int(r)].product_line).workload == "online"
    ]
    row = int(rng.choice(online_rows)) if online_rows else int(rng.choice(eligible))

    chain = max(30, int(calibration.BBU_SERVER_CHAIN * scale))
    # Keep the anecdote's cadence (~420 failures over a year, i.e. one
    # flap every ~0.87 days) at every scale: a shorter chain spans a
    # proportionally shorter window.
    span = min(horizon_seconds * 0.5, chain * (YEAR / calibration.BBU_SERVER_CHAIN))
    earliest = max(0.0, float(fleet.deployed_ats[row]))
    start = float(rng.uniform(earliest, max(earliest + 1.0, horizon_seconds - span)))
    start = min(start, horizon_seconds - span)
    # Flap intervals: hours to a couple of days, renormalized to span a
    # year like the anecdote.
    gaps = rng.lognormal(np.log(0.8 * DAY), 0.7, size=chain)
    times = start + np.cumsum(gaps) * (span / gaps.sum())
    hdd_slots = max(1, int(fleet.counts_for(ComponentClass.HDD)[row]))

    tag = "bbu_flap"
    events: List[RawFailure] = []
    for i, t in enumerate(times):
        # Alternate in blocks (not per event) so the RAID and HDD tickets
        # of the flap rarely share a calendar day — the paper reports the
        # server under *repeating* failures, not correlated-component ones.
        if (i // 6) % 3 == 0:
            cls, ftype, slot = ComponentClass.RAID_CARD, "BBUFail", 0
        else:
            # The same two drives behind the flapping controller go up
            # and down, over and over.
            cls, ftype, slot = (
                ComponentClass.HDD,
                "NotReady" if i % 2 else "Missing",
                int(i % min(2, hdd_slots)),
            )
        events.append(
            RawFailure(
                time=float(t),
                server_row=row,
                component=cls,
                slot=slot,
                forced_type=ftype,
                tag=tag,
                chain_id=-1,
                suppress_repeat=True,
            )
        )
    record = InjectionRecord(
        tag=tag,
        kind="bbu_flapping",
        server_rows=(row,),
        n_events=len(events),
        description="BBU root cause; RAID card up-and-down for ~a year",
    )
    return events, record


def inject_synchronous_groups(
    fleet: Fleet,
    horizon_seconds: float,
    scale: float,
    rng: np.random.Generator,
) -> Tuple[List[RawFailure], List[InjectionRecord]]:
    """Groups of near-identical servers repeating failures in lockstep
    (Table VIII: same product line, same model, same deployment time,
    adjacent racks, same distributed storage system)."""
    n_groups = max(1, int(round(calibration.SYNC_GROUPS * max(scale, 0.1))))
    # Candidate groups: same (idc, product line, generation) cohorts.
    cohorts = [
        rows for rows in fleet.cohorts().values()
        if rows.size >= calibration.SYNC_GROUP_SIZE
    ]
    if not cohorts:
        return [], []
    events: List[RawFailure] = []
    records: List[InjectionRecord] = []
    # The Table VIII sequence: two SMART warnings, four rounds of a
    # repeatedly "fixed" system drive, one late PendingLBA.
    type_sequence = ["SMARTFail", "SMARTFail", *["SixthFixing"] * 4, "PendingLBA"]
    n_steps = min(len(type_sequence), max(3, calibration.SYNC_CHAIN_LENGTH + 1))

    for g in range(n_groups):
        rows = cohorts[int(rng.integers(len(cohorts)))]
        members = rng.choice(rows, size=calibration.SYNC_GROUP_SIZE, replace=False)
        deployed = float(fleet.deployed_ats[members].max())
        lo = max(0.0, deployed)
        hi = max(lo + DAY, horizon_seconds * 0.6)
        start = float(rng.uniform(lo, hi))
        # Step times: days apart at first, then a long gap to the last.
        gaps = np.concatenate(
            [rng.uniform(1 * DAY, 8 * DAY, size=n_steps - 2), [60 * DAY]]
        )
        step_times = start + np.concatenate(([0.0], np.cumsum(gaps)))
        tag = f"sync_group:{g}"
        for step in range(n_steps):
            if step_times[step] >= horizon_seconds:
                break
            ftype = type_sequence[step]
            slot = 0 if ftype == "SixthFixing" else int(rng.integers(1, 9))
            for member in members:
                jitter = float(rng.uniform(0.0, calibration.SYNC_JITTER_SECONDS))
                events.append(
                    RawFailure(
                        time=float(step_times[step]) + jitter,
                        server_row=int(member),
                        component=ComponentClass.HDD,
                        slot=slot,
                        forced_type=ftype,
                        tag=tag,
                        chain_id=g,
                        suppress_repeat=True,
                    )
                )
        records.append(
            InjectionRecord(
                tag=tag,
                kind="synchronous_group",
                server_rows=tuple(int(m) for m in members),
                n_events=n_steps * len(members),
                description="near-identical servers repeating in lockstep",
            )
        )
    return events, records


__all__ = [
    "InjectionRecord",
    "inject_correlated_pairs",
    "inject_flapping_server",
    "inject_synchronous_groups",
]
