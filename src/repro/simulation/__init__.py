"""Failure-process simulator.

Synthesizes the four-year FOT trace that stands in for the paper's
proprietary dataset:

* :mod:`repro.simulation.calibration` — every tunable constant and the
  paper targets they aim at (single source of truth).
* :mod:`repro.simulation.hazards` — lifecycle hazard shapes (infant
  mortality / wear-out) per component class.
* :mod:`repro.simulation.base_process` — the vectorized
  hazard-with-frailty sampler that produces the bulk of the failures.
* :mod:`repro.simulation.batch_events` — storm injectors (the SMART
  storm, SAS batch, PDU outage and misoperation cases of Section V-A).
* :mod:`repro.simulation.correlated` — correlated component pairs,
  flapping (BBU-style) servers and synchronous repeat groups.
* :mod:`repro.simulation.engine` — the discrete-event core the FMS
  pipeline runs on.
* :mod:`repro.simulation.trace` — the top-level generator.
"""

from repro.simulation.trace import generate_paper_trace, generate_trace
from repro.simulation.events import RawFailure
from repro.simulation.engine import EventQueue

__all__ = ["generate_paper_trace", "generate_trace", "RawFailure", "EventQueue"]
