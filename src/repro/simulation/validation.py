"""Trace self-validation against the paper's headline targets.

:func:`validate_trace` measures every calibration target on a generated
trace and reports target vs. measured vs. verdict, with tolerance bands
that scale-aware callers can widen.  The CLI exposes it as
``fouryears selfcheck``; the test suite runs it on the shared fixture so
a calibration regression fails loudly instead of drifting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis import (
    batch,
    correlated,
    overview,
    repeating,
    response,
    tbf,
)
from repro.core.types import ComponentClass, FOTCategory
from repro.simulation import calibration
from repro.simulation.trace import SyntheticTrace


@dataclass(frozen=True)
class Check:
    """One target comparison."""

    name: str
    target: float
    measured: float
    #: Acceptable relative deviation (on the larger of the two values).
    rel_tolerance: float

    @property
    def ok(self) -> bool:
        hi = max(abs(self.target), abs(self.measured), 1e-12)
        return abs(self.target - self.measured) / hi <= self.rel_tolerance

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = "ok " if self.ok else "OFF"
        return (
            f"[{flag}] {self.name}: target {self.target:.4g}, "
            f"measured {self.measured:.4g} (tol {self.rel_tolerance:.0%})"
        )


def validate_trace(
    trace: SyntheticTrace,
    *,
    slack: float = 1.0,
) -> List[Check]:
    """Measure every headline target on a trace.

    ``slack`` multiplies every tolerance — pass ``slack=2.0`` for small
    traces where sampling noise widens everything.
    """
    if slack <= 0:
        raise ValueError("slack must be positive")
    ds = trace.dataset
    targets = calibration.PAPER_TARGETS
    checks: List[Check] = []

    def add(name: str, target: float, measured: float, tol: float) -> None:
        checks.append(Check(name, float(target), float(measured), tol * slack))

    # Table I.
    cats = overview.categories(ds)
    split = targets["category_split"]
    add("table1.d_fixing", split["d_fixing"],
        cats.fraction(FOTCategory.FIXING), 0.08)
    add("table1.d_error", split["d_error"],
        cats.fraction(FOTCategory.ERROR), 0.20)
    add("table1.d_falsealarm", split["d_falsealarm"],
        cats.fraction(FOTCategory.FALSE_ALARM), 0.25)

    # Table II (head of the ranking).
    shares = overview.components(ds)
    add("table2.hdd_share", targets["hdd_share"],
        shares.get(ComponentClass.HDD, 0.0), 0.06)
    add("table2.misc_share", calibration.COMPONENT_MIX[ComponentClass.MISC],
        shares.get(ComponentClass.MISC, 0.0), 0.25)

    # Figure 5: MTBF scales inversely with volume.
    analysis = tbf.analyze_tbf(ds)
    scale = trace.config.scale
    add("fig5.mtbf_minutes_scaled", targets["mtbf_overall_minutes"],
        analysis.mtbf_minutes * scale, 0.30)
    add("fig5.all_families_rejected", 1.0,
        1.0 if analysis.all_rejected_at(0.05) else 0.0, 0.0)

    # Section III-D.
    reps = repeating.repeating_stats(ds)
    add("repeats.repeat_free", 0.95, reps.repeat_free_fraction, 0.08)
    add("repeats.server_share", targets["repeating_server_share"],
        reps.repeating_server_fraction, 0.6)

    # Table V (thresholds scaled with volume).
    n100 = max(2, int(round(100 * scale)))
    counts = batch.daily_counts(ds, ComponentClass.HDD)
    add("table5.hdd_r100_scaled", targets["batch_r100_hdd"],
        batch.batch_frequency(counts, n100), 0.30)

    # Table VI.
    corr = correlated.component_pair_counts(ds)
    add("table6.correlated_server_share", targets["correlated_server_share"],
        corr.correlated_server_fraction, 1.0)
    add("table6.misc_share", targets["correlated_misc_share"],
        corr.misc_share, 0.35)

    # Figure 9.
    fixing = response.rt_distribution(ds, FOTCategory.FIXING)
    add("fig9.rt_median_days", targets["rt_fixing_median_days"],
        fixing.median_days, 0.6)
    add("fig9.rt_mean_days", targets["rt_fixing_mean_days"],
        fixing.mean_days, 0.4)

    return checks


def failed_checks(checks: List[Check]) -> List[Check]:
    return [c for c in checks if not c.ok]


__all__ = ["Check", "validate_trace", "failed_checks"]
