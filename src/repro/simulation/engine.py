"""A small discrete-event core.

The FMS pipeline consumes hundreds of thousands of pre-generated failure
events *and* dynamically schedules new ones (repeat failures after an
ineffective repair), so it needs a proper event queue rather than a
sorted list: :class:`EventQueue` is a heap keyed by (time, sequence)
with stable FIFO ordering for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterable, Iterator, Optional, Tuple


class EventQueue:
    """Time-ordered event queue with stable tie-breaking.

    Payloads are opaque; only the scheduling timestamp matters.  Popping
    in the past is impossible by construction; scheduling in the past
    (relative to the last pop) raises, which catches causality bugs in
    event producers early.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._now = float("-inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now(self) -> float:
        """Timestamp of the most recently popped event."""
        return self._now

    def schedule(self, time: float, payload: Any) -> None:
        """Add an event at ``time``.

        ``time`` may equal the current time (same-timestamp cascades are
        fine) but not precede it.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} — the clock is already at {self._now}"
            )
        heapq.heappush(self._heap, (float(time), next(self._counter), payload))

    def schedule_all(self, events: Iterable[Tuple[float, Any]]) -> None:
        for time, payload in events:
            self.schedule(time, payload)

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest (time, payload)."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, _, payload = heapq.heappop(self._heap)
        self._now = time
        return time, payload

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def drain(self) -> Iterator[Tuple[float, Any]]:
        """Iterate (time, payload) in time order until the queue empties.

        New events scheduled *during* iteration are delivered in their
        proper order — this is the property the repeat-failure chains
        rely on.
        """
        while self._heap:
            yield self.pop()


__all__ = ["EventQueue"]
