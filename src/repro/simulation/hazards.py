"""Lifecycle hazard shapes.

Section III-C of the paper finds that the classic bathtub curve does not
describe any component class well: RAID cards show extreme infant
mortality, HDDs a mild one followed by early wear-out, flash cards
almost no early failures and then a steep rise, and miscellaneous
(manual) tickets spike in the deployment month.  Each class therefore
gets its own piecewise-linear *relative* hazard over service months;
absolute rates are set later by budget scaling.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.types import ComponentClass
from repro.simulation import calibration


class LifecycleShape:
    """Relative hazard as a function of service month.

    Built from (month, value) breakpoints; linearly interpolated between
    them, flat beyond the last breakpoint, and zero for negative months
    (the component does not exist yet).
    """

    def __init__(self, breakpoints: Sequence[Tuple[float, float]], max_month: int = 120):
        if len(breakpoints) < 2:
            raise ValueError("a lifecycle shape needs at least 2 breakpoints")
        months = [m for m, _ in breakpoints]
        if months != sorted(months):
            raise ValueError("breakpoint months must be increasing")
        values = [v for _, v in breakpoints]
        if any(v < 0 for v in values):
            raise ValueError("hazard values must be non-negative")
        self.breakpoints = tuple((float(m), float(v)) for m, v in breakpoints)
        grid = np.arange(max_month + 1, dtype=float)
        self._table = np.interp(grid, months, values)
        self._max_month = max_month

    def __call__(self, month) -> np.ndarray:
        """Hazard multiplier at (integer or fractional) service months.

        Accepts arrays; months < 0 give 0, months beyond the table give
        the final value.
        """
        month = np.asarray(month, dtype=float)
        idx = np.clip(month, 0, self._max_month).astype(int)
        out = self._table[idx]
        return np.where(month < 0, 0.0, out)

    def share_before(self, month: float, horizon_month: float) -> float:
        """Fraction of lifetime hazard mass that falls before ``month``,
        for a component observed from month 0 to ``horizon_month`` —
        handy for checking calibration targets like "47.4 % of RAID
        failures happen in the first six months"."""
        grid = np.arange(int(horizon_month))
        mass = self(grid)
        total = mass.sum()
        if total == 0:
            raise ValueError("shape has no hazard mass in the horizon")
        return float(mass[: int(month)].sum() / total)


def build_shapes(max_month: int = 120) -> Dict[ComponentClass, LifecycleShape]:
    """Instantiate the calibrated shape for every component class."""
    return {
        cls: LifecycleShape(points, max_month)
        for cls, points in calibration.LIFECYCLE_BREAKPOINTS.items()
    }


__all__ = ["LifecycleShape", "build_shapes"]
