"""Calibration constants and the paper targets they aim at.

Everything the synthetic trace is tuned by lives here, next to the
number from the paper it is trying to reproduce.  Values quoted directly
from the paper are marked ``# paper:``; values the paper reports only as
a figure shape (e.g. the Figure 2 type mixes) are plausible choices
documented as such.

The benchmarks print *paper vs. measured* for each target; EXPERIMENTS.md
records the comparison for the committed seed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.types import ComponentClass as C

# ---------------------------------------------------------------------------
# Table I — FOT category breakdown.
# ---------------------------------------------------------------------------
#: paper: 1.7 % of FOTs are false alarms ("extremely low", Table I).
FALSE_ALARM_RATE = 0.017
#: paper: 28.0 % of FOTs are D_error — unrepaired, mostly out-of-warranty.
#: Not a direct knob: it emerges from the warranty term and fleet ages;
#: recorded here as the target.
TARGET_ERROR_SHARE = 0.280
TARGET_FIXING_SHARE = 0.703

# ---------------------------------------------------------------------------
# Table II — failure share by component class (D_fixing + D_error).
# ---------------------------------------------------------------------------
COMPONENT_MIX: Dict[C, float] = {
    C.HDD: 0.8184,            # paper: 81.84 %
    C.MISC: 0.1020,           # paper: 10.20 %
    C.MEMORY: 0.0306,         # paper: 3.06 %
    C.POWER: 0.0174,          # paper: 1.74 %
    C.RAID_CARD: 0.0123,      # paper: 1.23 %
    C.FLASH_CARD: 0.0067,     # paper: 0.67 %
    C.MOTHERBOARD: 0.0057,    # paper: 0.57 %
    C.SSD: 0.0031,            # paper: 0.31 %
    C.FAN: 0.0019,            # paper: 0.19 %
    C.HDD_BACKBOARD: 0.0014,  # paper: 0.14 %
    C.CPU: 0.0004,            # paper: 0.04 %
}

# ---------------------------------------------------------------------------
# Figure 2 — failure-type mix within each class.  The paper plots these
# without printing numbers; mixes below are plausible choices consistent
# with the prose (SMART-style predictive alerts dominate HDDs; correctable
# DIMM errors outnumber uncorrectable; 44/25/25 split for miscellaneous).
# ---------------------------------------------------------------------------
TYPE_MIX: Dict[C, Dict[str, float]] = {
    C.HDD: {
        "SMARTFail": 0.38,
        "RaidPdPreErr": 0.17,
        "Missing": 0.12,
        "NotReady": 0.09,
        "PendingLBA": 0.08,
        "TooMany": 0.07,
        "DStatus": 0.05,
        "SixthFixing": 0.04,
    },
    C.RAID_CARD: {
        "RaidVdNoBBUCacheErr": 0.52,
        "BBUFail": 0.30,
        "RaidCtrlMissing": 0.18,
    },
    C.FLASH_CARD: {"HighMaxBbRate": 0.45, "BBTFail": 0.35, "FlashIOErr": 0.20},
    C.MEMORY: {"DIMMCE": 0.62, "DIMMUE": 0.38},
    C.SSD: {"SSDSMARTFail": 0.50, "SSDWearHigh": 0.30, "SSDNotReady": 0.20},
    C.MOTHERBOARD: {"SASCardErr": 0.40, "MBSensorErr": 0.35, "MBNoPost": 0.25},
    C.CPU: {"CPUCacheErr": 0.70, "CPUOverheat": 0.30},
    C.FAN: {"FanSpeedLow": 0.60, "FanStopped": 0.40},
    C.POWER: {"PSUVoltageErr": 0.35, "PSUFail": 0.40, "PSUInputLost": 0.25},
    C.HDD_BACKBOARD: {"BackboardErr": 1.0},
    C.MISC: {
        "ManualNoDescription": 0.44,   # paper: no description in 44 %
        "ManualSuspectHDD": 0.25,      # paper: ~25 % suspected HDD
        "ManualServerCrash": 0.25,     # paper: ~25 % "server crashes"
        "ManualOther": 0.06,
    },
}

# ---------------------------------------------------------------------------
# Figure 6 — lifecycle shapes.  Relative hazard vs. service month as
# (month, value) breakpoints, linearly interpolated and flat beyond the
# last point.  Normalization is irrelevant (base rates are re-scaled to
# hit COMPONENT_MIX); only the *shape* matters.
# ---------------------------------------------------------------------------
LIFECYCLE_BREAKPOINTS: Dict[C, Tuple[Tuple[float, float], ...]] = {
    # paper: HDD infant mortality in the first 3 months, ~20 % above the
    # 4th-9th month level; rates rise from month 6 onward.
    C.HDD: ((0, 1.2), (2, 1.2), (3, 1.0), (6, 1.0), (12, 1.3), (24, 2.0),
            (36, 2.8), (48, 3.4), (84, 3.6)),
    # paper: memory stable during year 1, higher from the 2nd-4th year.
    C.MEMORY: ((0, 1.0), (12, 1.0), (24, 1.6), (48, 2.6), (84, 2.7)),
    # paper: 72.1 % of motherboard failures occur 3+ years after deploy.
    C.MOTHERBOARD: ((0, 0.04), (24, 0.06), (30, 0.3), (36, 2.5), (48, 8.0),
                    (84, 16.0)),
    C.SSD: ((0, 1.0), (6, 0.8), (24, 1.0), (48, 1.6), (84, 2.0)),
    # paper: only 1.4 % of flash failures in the first 12 months, then a
    # fast rise (strong correlated wear-out).
    C.FLASH_CARD: ((0, 0.02), (12, 0.03), (18, 0.5), (24, 1.2), (36, 2.4),
                   (48, 3.2), (84, 3.4)),
    # paper: RAID cards show strong infant mortality — 47.4 % of failures
    # within the first six months of the first fifty.
    C.RAID_CARD: ((0, 8.5), (5, 8.5), (6, 1.0), (48, 1.2), (84, 1.4)),
    C.FAN: ((0, 0.4), (12, 0.5), (24, 1.0), (48, 1.8), (84, 2.0)),
    C.POWER: ((0, 0.4), (12, 0.5), (24, 1.0), (48, 1.7), (84, 1.9)),
    C.CPU: ((0, 0.8), (24, 1.0), (84, 1.4)),
    C.HDD_BACKBOARD: ((0, 0.6), (24, 1.0), (84, 1.5)),
    # paper: miscellaneous rates extremely high within the first month
    # (manual debugging at deployment), then stable.
    C.MISC: ((0, 12.0), (1, 1.0), (84, 1.0)),
}

# ---------------------------------------------------------------------------
# Figures 3/4 — temporal detection profiles.
# ---------------------------------------------------------------------------
#: Diurnal workload intensity by hour (0-23), relative.  Log-based
#: detection fires when the component gets used, so workload-coupled
#: classes inherit this curve (Section III-A, possible reason 1).
WORKLOAD_BY_HOUR: Tuple[float, ...] = (
    0.95, 0.90, 0.85, 0.75, 0.60, 0.55, 0.60, 0.75,
    0.95, 1.10, 1.20, 1.25, 1.20, 1.15, 1.20, 1.25,
    1.25, 1.20, 1.15, 1.20, 1.25, 1.20, 1.10, 1.00,
)
#: How strongly each class's detection follows workload (0 = flat).
WORKLOAD_COUPLING: Dict[C, float] = {
    C.HDD: 0.9, C.MEMORY: 0.9, C.FLASH_CARD: 0.7, C.SSD: 0.7,
    C.RAID_CARD: 0.3, C.MOTHERBOARD: 0.2, C.CPU: 0.4,
    C.FAN: 0.0, C.POWER: 0.0, C.HDD_BACKBOARD: 0.2, C.MISC: 0.0,
}
#: Status polling period in hours for agent-polled classes; detections
#: bunch up right after each poll tick.
POLLING_PERIOD_HOURS = 4
POLLING_CLASSES = (C.FAN, C.POWER, C.MOTHERBOARD, C.RAID_CARD,
                   C.CPU, C.HDD_BACKBOARD)
#: Share of a polled class's detections that land in the poll-tick hour.
POLLING_CONCENTRATION = 0.55

#: Hour profile for manual (miscellaneous) reports: working hours.
MANUAL_HOURS: Tuple[float, ...] = (
    0.15, 0.10, 0.08, 0.08, 0.08, 0.10, 0.20, 0.40,
    0.90, 1.60, 1.90, 1.80, 1.20, 1.30, 1.80, 1.90,
    1.80, 1.60, 1.20, 0.90, 0.70, 0.50, 0.35, 0.25,
)

#: Day-of-week multipliers (Mon..Sun).  Manual reporting needs the human
#: in the loop; automatic detection follows workload, which dips on
#: weekends.
DOW_MANUAL: Tuple[float, ...] = (1.25, 1.10, 1.05, 1.05, 1.00, 0.45, 0.40)
DOW_AUTOMATIC: Tuple[float, ...] = (1.10, 1.05, 1.03, 1.02, 1.00, 0.84, 0.81)

# ---------------------------------------------------------------------------
# Table V / Figure 5 — daily overdispersion.  A shared lognormal "day
# effect" (mean 1, per class, per day) makes daily counts spiky enough
# that no smooth TBF family fits and r_N matches the batch-frequency
# table.
# ---------------------------------------------------------------------------
DAY_EFFECT_SIGMA: Dict[C, float] = {
    C.HDD: 0.72, C.MISC: 0.65, C.MEMORY: 0.55, C.POWER: 0.85,
    C.RAID_CARD: 0.95, C.FLASH_CARD: 1.35, C.MOTHERBOARD: 0.65,
    C.SSD: 0.60, C.FAN: 0.70, C.HDD_BACKBOARD: 0.60, C.CPU: 0.50,
}

# ---------------------------------------------------------------------------
# Figure 7 — failure concentration across servers.
# ---------------------------------------------------------------------------
#: Per-server lognormal frailty sigma (mean 1).  Large values concentrate
#: failures on few servers ("failures are extremely non-uniformly
#: distributed among the individual servers").
FRAILTY_SIGMA = 1.5
#: Frailty multipliers are clipped here: a server cannot plausibly burn
#: through more than a few dozen drives from hazard alone (the extreme
#: per-server counts come from repeat chains, not raw hazard).
FRAILTY_CLIP = 60.0
#: Fraction of servers that are "lemons": their repairs are ineffective
#: (BBU-style root causes) so failures repeat in long chains.
LEMON_FRACTION = 0.015
#: paper: ~4.5 % of ever-failed servers suffer repeating failures, and
#: >85 % of fixed components never repeat.  Repeat probabilities below
#: are chosen to land near those numbers.
REPEAT_PROB_NORMAL = 0.012
REPEAT_PROB_NORMAL_CONT = 0.50   # chance each repeat spawns another
REPEAT_PROB_LEMON = 0.92
REPEAT_PROB_LEMON_CONT = 0.94
#: Chains stop once the root cause is (finally) diagnosed and fixed.
MAX_CHAIN_NORMAL = 4
MAX_CHAIN_LEMON = 35
#: Chance a *recurring warning* comes back as a fatal failure instead
#: (SMART alerts precede dead drives — Section III-A); this is the
#: signal the paper's failure-prediction tool exploits.
ESCALATION_PROB = 0.35
#: Median delay from ticket close to the repeat failure.
REPEAT_DELAY_MEDIAN_DAYS = 2.0
REPEAT_DELAY_MEDIAN_DAYS_LEMON = 0.2
REPEAT_DELAY_SIGMA = 1.0

# ---------------------------------------------------------------------------
# Section V-A — batch failure (storm) injection, at scale = 1.0.
# Counts scale linearly with the scenario's ``scale``.
# ---------------------------------------------------------------------------
#: Number of storm-prone homogeneous cohorts (same DC + line + model).
STORM_PRONE_COHORTS = 8
#: SMART storms per year (Case 1 style): a cohort reports a burst of
#: SMARTFail tickets inside a few hours.
SMART_STORMS_PER_YEAR = 6.0
SMART_STORM_SIZE_MEDIAN = 450.0
SMART_STORM_SIZE_SIGMA = 0.8
SMART_STORM_WINDOW_HOURS = 6.0
#: One giant storm reproducing Case 1 (thousands of drives, 21:00-03:00).
CASE1_STORM_SIZE = 3200
#: SAS batches per year (Case 2): ~50 motherboards in two 1-hour windows.
SAS_BATCHES_PER_YEAR = 1.0
SAS_BATCH_SIZE = 48
#: Correlated flash-card wear-out (Section III-C: "strong correlated
#: wear-out phenomena"): same-batch cards hit their bad-block limits
#: within a day or two of each other.
FLASH_WEAROUT_PER_YEAR = 5.0
FLASH_WEAROUT_SIZE_MEDIAN = 28.0
FLASH_WEAROUT_WINDOW_HOURS = 36.0
#: PDU outages per year (Case 3): every server on one PDU loses power.
PDU_OUTAGES_PER_YEAR = 2.0
PDU_OUTAGE_WINDOW_HOURS = 12.0
#: Misoperation events (electricity-provider mistake, Aug 2016 anecdote).
MISOPERATION_EVENTS = 1
MISOPERATION_SIZE = 320

# ---------------------------------------------------------------------------
# Tables VI/VII — correlated component failures, at scale = 1.0.
# The paper's Table VI is only partially legible; the matrix below keeps
# its headline structure: HDD is involved in nearly all non-misc pairs,
# misc co-reports dominate (71.5 % of two-component failures), power and
# fan correlate (the PSU failure takes the fans down), and total volume
# stays small (0.49 % of ever-failed servers).
# ---------------------------------------------------------------------------
CORRELATED_PAIR_COUNTS: Dict[Tuple[C, C], int] = {
    (C.MISC, C.HDD): 349,
    (C.MISC, C.MEMORY): 18,
    (C.MISC, C.SSD): 2,
    (C.MISC, C.RAID_CARD): 4,
    (C.MISC, C.POWER): 6,
    (C.MISC, C.MOTHERBOARD): 6,
    (C.MOTHERBOARD, C.HDD): 17,
    (C.FAN, C.HDD): 3,
    (C.POWER, C.FAN): 7,
    (C.POWER, C.HDD): 46,
    (C.RAID_CARD, C.HDD): 22,
    (C.FLASH_CARD, C.HDD): 40,
    (C.MEMORY, C.HDD): 15,
    (C.SSD, C.HDD): 2,
    (C.MOTHERBOARD, C.MEMORY): 2,
    (C.MOTHERBOARD, C.SSD): 1,
    (C.POWER, C.MOTHERBOARD): 1,
}

# ---------------------------------------------------------------------------
# Table VIII / Section V-C — synchronous repeating failures.
# ---------------------------------------------------------------------------
SYNC_GROUPS = 12            # groups of near-identical servers
SYNC_GROUP_SIZE = 2         # servers per group
SYNC_CHAIN_LENGTH = 6       # repeats per server
SYNC_JITTER_SECONDS = 20.0  # how tightly the repeats line up
#: The 400-failure web-service server with the flapping BBU
#: (Section III-D): chain length of its injected flapping sequence.
BBU_SERVER_CHAIN = 420

# ---------------------------------------------------------------------------
# Section VI — operator response model.
# ---------------------------------------------------------------------------
#: Median RT (days) per class for a median product line.  paper (Fig 10):
#: SSD and misc respond within hours; HDD/fan/memory take 7-18 days.
RT_CLASS_MEDIAN_DAYS: Dict[C, float] = {
    C.HDD: 2.2, C.FAN: 6.0, C.MEMORY: 7.0, C.SSD: 0.15,
    C.MISC: 0.6, C.POWER: 2.2, C.RAID_CARD: 1.6, C.MOTHERBOARD: 2.5,
    C.FLASH_CARD: 1.3, C.CPU: 2.0, C.HDD_BACKBOARD: 2.5,
}
#: Lognormal sigma of the per-ticket RT draw.
RT_SIGMA = 1.95
#: Line-level multiplier: fault-tolerant software makes operators slow.
#: multiplier = RT_FT_BASE + RT_FT_GAIN * fault_tolerance^2.
RT_FT_BASE = 0.30
RT_FT_GAIN = 2.6
#: Probability a ticket waits for the line's periodic pool review on top
#: of the base draw ("operators only periodically review the failure
#: pool and process failures in batches").  Fault-tolerant lines batch
#: more: prob = BASE + FT_GAIN * fault_tolerance, capped at 0.9.
RT_BATCHING_BASE = 0.20
RT_BATCHING_FT_GAIN = 0.45
#: Fraction of lines (largest by server count) treated as the "top 1 %";
#: paper (Fig 11): their median HDD RT is ~47 days.
TOP_LINE_FRACTION = 0.01
TOP_LINE_REVIEW_DAYS = (80.0, 130.0)
#: Deployment-phase fast path: misc tickets on servers younger than this
#: close within hours (installation/testing streamlining).
DEPLOYMENT_PHASE_DAYS = 60.0
DEPLOYMENT_RT_MEDIAN_DAYS = 0.15
#: False-alarm RT (Fig 9): median 4.9 days, mean 19.1 days.
FALSE_ALARM_RT_MEDIAN_DAYS = 4.9
FALSE_ALARM_RT_SIGMA = 1.65
#: Operators per product line team (annual turnover >50 % in the paper;
#: ids are opaque).
OPERATORS_PER_LINE = 4
#: Lemon tickets are "solved" by an automatic reboot almost immediately.
LEMON_RT_MEDIAN_DAYS = 0.08

# ---------------------------------------------------------------------------
# Base-process bookkeeping: share of each class's target count reserved
# for injectors and FMS-generated repeats, so the grand totals still land
# near the target mix.
# ---------------------------------------------------------------------------
BASE_BUDGET_FACTOR: Dict[C, float] = {
    C.HDD: 0.82, C.MISC: 0.93, C.MEMORY: 0.92, C.POWER: 0.80,
    C.RAID_CARD: 0.72, C.FLASH_CARD: 0.62, C.MOTHERBOARD: 0.85,
    C.SSD: 0.92, C.FAN: 0.85, C.HDD_BACKBOARD: 0.95, C.CPU: 0.95,
}

# ---------------------------------------------------------------------------
# Paper headline targets used by EXPERIMENTS.md and the benchmarks.
# ---------------------------------------------------------------------------
PAPER_TARGETS: Dict[str, object] = {
    "total_fots": 290_000,
    "category_split": {"d_fixing": 0.703, "d_error": 0.280, "d_falsealarm": 0.017},
    "mtbf_overall_minutes": 6.8,
    "mtbf_per_dc_minutes": (32.0, 390.0),
    "hdd_share": 0.8184,
    "raid_infant_share_6mo": 0.474,
    "motherboard_share_after_36mo": 0.721,
    "flash_share_first_12mo": 0.014,
    "hdd_infant_uplift": 0.20,
    "repeat_free_fixed_components": 0.85,
    "repeating_server_share": 0.045,
    "batch_r100_hdd": 0.554,
    "batch_r200_hdd": 0.225,
    "batch_r500_hdd": 0.025,
    "correlated_server_share": 0.0049,
    "correlated_misc_share": 0.715,
    "rt_fixing_median_days": 6.1,
    "rt_fixing_mean_days": 42.2,
    "rt_falsealarm_median_days": 4.9,
    "rt_falsealarm_mean_days": 19.1,
    "rt_tail_140d": 0.10,
    "rt_tail_200d": 0.02,
    "top_line_median_rt_days": 47.0,
    "spatial_reject_001": 10 / 24,
    "spatial_reject_005": 14 / 24,
}


def validate() -> None:
    """Sanity-check internal consistency of the calibration tables."""
    mix_total = sum(COMPONENT_MIX.values())
    if abs(mix_total - 1.0) > 0.001:
        raise ValueError(f"COMPONENT_MIX sums to {mix_total}, expected 1.0")
    for cls, mix in TYPE_MIX.items():
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"TYPE_MIX[{cls}] sums to {total}, expected 1.0")
    for cls in COMPONENT_MIX:
        if cls not in LIFECYCLE_BREAKPOINTS:
            raise ValueError(f"no lifecycle shape for {cls}")
        if cls not in TYPE_MIX:
            raise ValueError(f"no type mix for {cls}")


validate()

__all__ = [*(name for name in dir() if name.isupper()), "validate"]
