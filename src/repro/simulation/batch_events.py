"""Batch-failure (storm) injectors — Section V-A of the paper.

Four mechanisms, one per observed cause:

* **SMART storms** (Case 1): a homogeneous drive cohort (same model,
  same cluster, same product line) reports a burst of ``SMARTFail``
  tickets within a few hours — shared firmware/design flaw triggered by
  a common condition.  One giant instance reproduces the 21:00-03:00
  storm that hit 32 % of a product line's servers.
* **SAS batches** (Case 2): ~50 motherboards fail in two one-hour
  windows, all traced to faulty SAS cards.
* **PDU outages** (Case 3): a hidden single point of failure — every
  server fed by one power distribution unit reports a power failure
  within half a day.
* **Misoperation**: an electricity-provider mistake takes out hundreds
  of servers at once (the August 2016 anecdote).

Every injected failure carries a ``tag`` naming its storm, so validation
tests and the case-study benchmark can recover ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.timeutil import DAY, HOUR, YEAR
from repro.core.types import ComponentClass
from repro.fleet.fleet import Fleet
from repro.simulation import calibration
from repro.simulation.events import RawFailure


@dataclass(frozen=True)
class StormRecord:
    """Ground truth for one injected batch event."""

    tag: str
    kind: str
    component: ComponentClass
    start: float
    end: float
    n_events: int
    description: str


def storm_prone_cohorts(fleet: Fleet) -> List[np.ndarray]:
    """The homogeneous cohorts storms strike.

    Preference order: storage-heavy generations owned by batch product
    lines (the Hadoop clusters of Section V-A), largest first; falls
    back to the largest cohorts outright when the fleet is too small to
    have storage-heavy batch cohorts.
    """
    cohorts = fleet.cohorts()
    scored: List[Tuple[int, Tuple[str, str, str], np.ndarray]] = []
    for key, rows in cohorts.items():
        _, line_name, _ = key
        line = fleet.product_line(line_name)
        gen_heavy = fleet.servers[int(rows[0])].generation.storage_heavy
        bonus = 2 if (line.is_batch and gen_heavy) else 0
        scored.append((bonus * 10_000_000 + rows.size, key, rows))
    scored.sort(key=lambda item: item[0], reverse=True)
    top = scored[: calibration.STORM_PRONE_COHORTS]
    return [rows for _, _, rows in top]


def _sample_cohort_failures(
    fleet: Fleet,
    rows: np.ndarray,
    component: ComponentClass,
    n: int,
    start: float,
    window: float,
    forced_type: str,
    tag: str,
    rng: np.random.Generator,
) -> List[RawFailure]:
    """Draw ``n`` failures from a cohort inside [start, start+window),
    component-count weighted, at most one failure per (server, slot).
    Servers not yet deployed at the window start cannot fail."""
    rows = rows[fleet.deployed_ats[rows] <= start]
    if rows.size == 0:
        return []
    counts = fleet.counts_for(component)[rows].astype(float)
    total_slots = int(counts.sum())
    if total_slots == 0:
        return []
    n = min(n, total_slots)
    # Enumerate (row, slot) pairs implicitly and sample without
    # replacement so a slot fails at most once per storm.
    chosen = rng.choice(total_slots, size=n, replace=False)
    cum = np.cumsum(counts)
    row_idx = np.searchsorted(cum, chosen, side="right")
    slot_idx = chosen - np.concatenate(([0], cum[:-1]))[row_idx]
    times = start + rng.uniform(0.0, window, size=n)
    return [
        RawFailure(
            time=float(t),
            server_row=int(rows[r]),
            component=component,
            slot=int(s),
            forced_type=forced_type,
            tag=tag,
            suppress_repeat=True,
        )
        for t, r, s in zip(times, row_idx, slot_idx)
    ]


def inject_batch_events(
    fleet: Fleet,
    horizon_seconds: float,
    scale: float,
    rng: np.random.Generator,
) -> Tuple[List[RawFailure], List[StormRecord]]:
    """Generate every storm for one trace.

    Storm *counts* stay fixed (they are rare operational events), storm
    *sizes* scale with the scenario so small test fleets are not wiped
    out by paper-sized storms.
    """
    years = horizon_seconds / YEAR
    events: List[RawFailure] = []
    records: List[StormRecord] = []
    cohorts = storm_prone_cohorts(fleet)
    if not cohorts:
        return events, records
    storm_id = 0

    def record(kind, component, start, window, batch, description):
        nonlocal storm_id
        tag = f"{kind}:{storm_id}"
        storm_id += 1
        events.extend(batch)
        records.append(
            StormRecord(
                tag=tag,
                kind=kind,
                component=component,
                start=start,
                end=start + window,
                n_events=len(batch),
                description=description,
            )
        )
        return tag

    # --- SMART storms (Case 1 style) ---------------------------------
    n_storms = int(rng.poisson(calibration.SMART_STORMS_PER_YEAR * years))
    for _ in range(n_storms):
        rows = cohorts[int(rng.integers(len(cohorts)))]
        size = max(
            3,
            int(
                scale
                * rng.lognormal(
                    np.log(calibration.SMART_STORM_SIZE_MEDIAN),
                    calibration.SMART_STORM_SIZE_SIGMA,
                )
            ),
        )
        window = calibration.SMART_STORM_WINDOW_HOURS * HOUR
        start = float(rng.uniform(0.0, horizon_seconds - window))
        tag = f"smart_storm:{storm_id}"
        batch = _sample_cohort_failures(
            fleet, rows, ComponentClass.HDD, size, start, window,
            "SMARTFail", tag, rng,
        )
        record("smart_storm", ComponentClass.HDD, start, window, batch,
               "homogeneous drive cohort SMART threshold storm")

    # --- the one giant Case 1 storm (21:00 -> 03:00) -----------------
    rows = max(cohorts, key=lambda r: r.size)
    day = int(horizon_seconds / DAY * 0.72)
    start = day * DAY + 21 * HOUR
    window = 6 * HOUR
    size = max(5, int(calibration.CASE1_STORM_SIZE * scale))
    tag = f"smart_storm_case1:{storm_id}"
    batch = _sample_cohort_failures(
        fleet, rows, ComponentClass.HDD, size, start, window,
        "SMARTFail", tag, rng,
    )
    record("smart_storm_case1", ComponentClass.HDD, start, window, batch,
           "Case 1: thousands of drives of one product line, 21:00-03:00")

    # --- correlated flash wear-out (Section III-C) --------------------
    flash_counts = fleet.counts_for(ComponentClass.FLASH_CARD)
    flash_rows_all = np.flatnonzero(flash_counts > 0)
    n_flash_storms = int(rng.poisson(calibration.FLASH_WEAROUT_PER_YEAR * years))
    # Old cohorts wear out together: prefer servers deployed earliest.
    if flash_rows_all.size:
        order = np.argsort(fleet.deployed_ats[flash_rows_all])
        old_flash = flash_rows_all[order[: max(10, flash_rows_all.size // 3)]]
        for _ in range(n_flash_storms):
            size = max(
                3,
                int(scale * rng.lognormal(
                    np.log(calibration.FLASH_WEAROUT_SIZE_MEDIAN), 0.6
                )),
            )
            window = calibration.FLASH_WEAROUT_WINDOW_HOURS * HOUR
            # Wear-out needs age: strike the second half of the horizon.
            start = float(rng.uniform(0.45 * horizon_seconds,
                                      horizon_seconds - window))
            tag = f"flash_wearout:{storm_id}"
            batch = _sample_cohort_failures(
                fleet, old_flash, ComponentClass.FLASH_CARD, size, start,
                window, "HighMaxBbRate", tag, rng,
            )
            record("flash_wearout", ComponentClass.FLASH_CARD, start, window,
                   batch, "same-batch flash cards hitting wear limits together")

    # --- SAS batches (Case 2): two one-hour windows ------------------
    n_sas = max(1, int(round(calibration.SAS_BATCHES_PER_YEAR * years)))
    for _ in range(n_sas):
        rows = cohorts[int(rng.integers(len(cohorts)))]
        size = max(2, int(calibration.SAS_BATCH_SIZE * scale))
        day_start = float(rng.integers(0, max(1, int(horizon_seconds / DAY) - 1))) * DAY
        tag = f"sas_batch:{storm_id}"
        half = size // 2
        batch = _sample_cohort_failures(
            fleet, rows, ComponentClass.MOTHERBOARD, half,
            day_start + 5 * HOUR, HOUR, "SASCardErr", tag, rng,
        )
        batch += _sample_cohort_failures(
            fleet, rows, ComponentClass.MOTHERBOARD, size - half,
            day_start + 16 * HOUR, HOUR, "SASCardErr", tag, rng,
        )
        record("sas_batch", ComponentClass.MOTHERBOARD, day_start + 5 * HOUR,
               12 * HOUR, batch, "Case 2: faulty SAS cards, two 1-hour windows")

    # --- PDU outages (Case 3) -----------------------------------------
    pdu_ids = np.fromiter((s.pdu_id for s in fleet.servers), dtype=np.int64)
    unique_pdus = np.unique(pdu_ids)
    n_outages = max(1, int(rng.poisson(calibration.PDU_OUTAGES_PER_YEAR * years)))
    for _ in range(n_outages):
        pdu = int(rng.choice(unique_pdus))
        rows = np.flatnonzero(pdu_ids == pdu)
        if rows.size == 0:
            continue
        # Scale the victim count with the scenario so small test fleets
        # keep the Table II mix (a full-size PDU outage would dominate a
        # tiny trace's power share).
        n_victims = max(3, int(round(rows.size * min(1.0, scale))))
        n_victims = min(n_victims, rows.size)
        rows = rng.choice(rows, size=n_victims, replace=False)
        window = calibration.PDU_OUTAGE_WINDOW_HOURS * HOUR
        day_start = float(rng.integers(0, max(1, int((horizon_seconds - window) / DAY)))) * DAY
        start = day_start + HOUR  # 01:00, per Case 3 (1:00-13:00)
        rows = rows[fleet.deployed_ats[rows] <= start]
        if rows.size == 0:
            continue
        tag = f"pdu_outage:{storm_id}"
        times = start + rng.uniform(0.0, window, size=rows.size)
        batch = [
            RawFailure(
                time=float(t),
                server_row=int(r),
                component=ComponentClass.POWER,
                slot=0,
                forced_type="PSUInputLost",
                tag=tag,
                suppress_repeat=True,
            )
            for t, r in zip(times, rows)
        ]
        record("pdu_outage", ComponentClass.POWER, start, window, batch,
               f"Case 3: single power distribution unit {pdu} outage")

    # --- operator/provider misoperation --------------------------------
    for _ in range(calibration.MISOPERATION_EVENTS):
        size = max(3, int(calibration.MISOPERATION_SIZE * scale))
        dc_idx = int(rng.integers(len(fleet.datacenters)))
        idc_rows = np.flatnonzero(fleet.idc_codes == dc_idx)
        if idc_rows.size == 0:
            continue
        start = float(rng.uniform(0.2, 0.95)) * horizon_seconds
        window = 2 * HOUR
        start = min(start, horizon_seconds - window)
        idc_rows = idc_rows[fleet.deployed_ats[idc_rows] <= start]
        if idc_rows.size == 0:
            continue
        size = min(size, idc_rows.size)
        chosen = rng.choice(idc_rows, size=size, replace=False)
        tag = f"misoperation:{storm_id}"
        times = start + rng.uniform(0.0, window, size=size)
        batch = [
            RawFailure(
                time=float(t),
                server_row=int(r),
                component=ComponentClass.POWER,
                slot=0,
                forced_type="PSUInputLost",
                tag=tag,
                suppress_repeat=True,
            )
            for t, r in zip(times, chosen)
        ]
        record("misoperation", ComponentClass.POWER, start, window, batch,
               "electricity-provider misoperation on a PDU")

    return events, records


__all__ = ["StormRecord", "inject_batch_events", "storm_prone_cohorts"]
