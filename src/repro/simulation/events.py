"""Raw failure events — the simulator's intermediate representation.

The base process and the injectors all emit :class:`RawFailure` records;
the FMS pipeline then turns them into tickets (assigning detection
source, category, operator response) and may append more raw failures of
its own when a repair proves ineffective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import ComponentClass


@dataclass(frozen=True, order=True)
class RawFailure:
    """One component failure before FMS processing.

    Ordering is by time so event lists can be heapified/sorted directly.

    Attributes:
        time: Detection timestamp (seconds since trace epoch).
        server_row: Row index of the server in the fleet (NOT host_id).
        component: Failing component class.
        slot: Component slot index on the server.
        forced_type: Failure type forced by an injector (e.g. a SMART
            storm emits only ``SMARTFail``); ``None`` means "draw from
            the class's type mix".
        tag: Ground-truth label of the generating mechanism ("base",
            "smart_storm:3", "pdu_outage:1", "flapping", ...).  Analyses
            never read it; validation tests do.
        chain_id: Repeat-chain identifier when this failure is part of a
            pre-materialized repeat sequence, else ``None``.
        suppress_repeat: True when the FMS must not grow a repeat chain
            from this failure (it already belongs to an injected chain).
    """

    time: float
    server_row: int = field(compare=False)
    component: ComponentClass = field(compare=False)
    slot: int = field(compare=False, default=0)
    forced_type: Optional[str] = field(compare=False, default=None)
    tag: str = field(compare=False, default="base")
    chain_id: Optional[int] = field(compare=False, default=None)
    suppress_repeat: bool = field(compare=False, default=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.server_row < 0:
            raise ValueError(f"server_row must be >= 0, got {self.server_row}")


__all__ = ["RawFailure"]
