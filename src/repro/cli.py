"""Command-line interface.

Core subcommands::

    fouryears generate --scale 0.05 --seed 7 --out trace.jsonl \
        --inventory inventory.csv
    fouryears analyze trace.jsonl --inventory inventory.csv
    fouryears report trace.jsonl          # compact headline summary
    fouryears validate dump.csv           # quarantine + data-quality audit
    fouryears corrupt trace.jsonl --out dirty.jsonl --seed 7

``analyze`` prints every paper table/figure the dataset supports,
skipping (with a notice) any analysis the data cannot sustain;
``report`` prints only the headline numbers.  ``validate`` loads a dump
through the quarantining loader and prints what was skipped/repaired
plus a :class:`~repro.robustness.quality.DataQuality` assessment.
``corrupt`` runs the deterministic chaos harness over a clean trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis import (
    batch,
    compare,
    concentration,
    correlated,
    mining,
    overview,
    prediction,
    repeating,
    report,
    response,
    spatial,
    tbf,
    temporal,
)
from repro.core import io as core_io
from repro.core.types import ComponentClass, FOTCategory
from repro.fleet.inventory import Inventory
from repro.robustness.chaos import (
    CORRUPTION_KINDS,
    CorruptionSpec,
    corrupt_dataset,
    default_specs,
)
from repro.robustness.quality import DataQuality, InsufficientDataError
from repro.simulation.trace import generate_paper_trace


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_paper_trace(scale=args.scale, seed=args.seed)
    core_io.save(trace.dataset, args.out)
    print(f"wrote {len(trace.dataset)} tickets to {args.out}")
    if args.inventory:
        trace.inventory.save_csv(args.inventory)
        print(f"wrote inventory ({len(trace.inventory)} servers) to {args.inventory}")
    summary = trace.dataset.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


def _load_dataset(path: str, lenient: bool):
    """Load a dump; in lenient mode print the quarantine summary and
    return whatever could be salvaged."""
    if not lenient:
        try:
            return core_io.load(path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                "hint: pass --lenient to quarantine malformed lines and "
                "analyze the rest",
                file=sys.stderr,
            )
            raise SystemExit(2) from exc
    dataset, quarantine = core_io.load(path, strict=False)
    if not quarantine.clean:
        print(quarantine.format())
        print()
    return dataset


def _section(fn: Callable[[], None]) -> None:
    """Run one analysis block, degrading to a skip notice when the data
    cannot sustain it instead of aborting the whole report."""
    try:
        fn()
    except InsufficientDataError as exc:
        print(f"[skipped] {exc}")


def _print_headlines(dataset, inventory: Optional[Inventory]) -> None:
    def table_i() -> None:
        cats = overview.category_breakdown(dataset)
        print(
            report.format_table(
                ["category", "share"],
                [
                    (cat.value, report.format_percent(cats.fraction(cat)))
                    for cat in FOTCategory
                ],
                title="Table I — FOT categories",
            )
        )
        print()

    def table_ii() -> None:
        comp = overview.component_breakdown(dataset)
        print(
            report.format_table(
                ["component", "share"],
                [
                    (cls.value, report.format_percent(share))
                    for cls, share in comp.items()
                ],
                title="Table II — failures by component",
            )
        )
        print()

    def mtbf() -> None:
        analysis = tbf.analyze_tbf(dataset)
        print(
            f"MTBF: {analysis.mtbf_minutes:.1f} minutes over "
            f"{analysis.n_gaps + 1} failures"
        )
        rejected = {name: t.reject_at(0.05) for name, t in analysis.tests.items()}
        print(f"TBF fits rejected at 0.05: {rejected}")

    _section(table_i)
    _section(table_ii)
    _section(mtbf)


def _cmd_report(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset, args.lenient)
    inventory = Inventory.load_csv(args.inventory) if args.inventory else None
    _print_headlines(dataset, inventory)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset, args.lenient)
    inventory = Inventory.load_csv(args.inventory) if args.inventory else None
    quality = DataQuality.assess(dataset)
    _print_headlines(dataset, inventory)

    def fig3() -> None:
        print()
        for cls, profile in temporal.day_of_week_summary(dataset, 4).items():
            print(
                report.format_profile(
                    profile.labels,
                    profile.fractions,
                    title=f"Figure 3 — {cls.value} by day of week ({profile.test})",
                )
            )
            print()

    def fig7() -> None:
        curve = concentration.failure_concentration(dataset)
        print(
            f"Figure 7 — concentration: top 2 % of ever-failed servers hold "
            f"{report.format_percent(curve.share_of_top(0.02))} of failures "
            f"(gini {curve.gini:.3f})"
        )
        rep = repeating.repeating_stats(dataset)
        print(
            f"Repeats: {report.format_percent(rep.repeat_free_fraction)} of fixed "
            f"components never repeat; "
            f"{report.format_percent(rep.repeating_server_fraction)} of failed "
            f"servers repeat; worst server has {rep.max_failures_single_server} failures"
        )

    def table_v() -> None:
        freq = batch.batch_failure_frequency(dataset)
        rows = [
            (cls.value,)
            + tuple(
                report.format_percent(freq[cls][n]) for n in batch.TABLE_V_THRESHOLDS
            )
            for cls in ComponentClass
        ]
        print()
        print(
            report.format_table(
                ["component", "r100", "r200", "r500"],
                rows,
                title="Table V — batch failure frequency",
            )
        )

    def table_vi() -> None:
        corr = correlated.component_pair_counts(dataset)
        print()
        print(
            f"Correlated pairs: {corr.total_pairs()} "
            f"({report.format_percent(corr.correlated_server_fraction)} of failed "
            f"servers; misc share {report.format_percent(corr.misc_share)})"
        )

    def fig9() -> None:
        fixing = response.rt_distribution(dataset, FOTCategory.FIXING, quality=quality)
        print(
            f"RT (D_fixing): median {fixing.median_days:.1f} d, mean "
            f"{fixing.mean_days:.1f} d, >140 d: {report.format_percent(fixing.tail_140d)}"
        )

    def table_iv() -> None:
        summary = spatial.rack_position_tests(dataset, inventory, quality=quality)
        print()
        print(
            report.format_table(
                ["p-value bucket", "data centers"],
                list(summary.bucket_counts().items()),
                title="Table IV — rack-position chi-square results",
            )
        )

    _section(fig3)
    _section(fig7)
    _section(table_v)
    _section(table_vi)
    _section(fig9)
    if inventory is not None:
        _section(table_iv)

    if quality.grade != "ok" or quality.exclusions:
        print()
        print(quality.format())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        dataset, quarantine = core_io.load(args.dataset, strict=False)
    except ValueError as exc:
        # Even lenient loading refuses structurally unreadable dumps
        # (unknown format, missing required CSV columns).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(quarantine.format())
    print()
    quality = DataQuality.assess(dataset)
    # Probe the degradation-aware analyses so their exclusions show up
    # in the assessment even though we discard the statistics here.
    for category in (FOTCategory.FIXING, FOTCategory.FALSE_ALARM):
        try:
            response.rt_distribution(dataset, category, quality=quality)
        except ValueError:
            pass
    print(quality.format())
    dirty = quarantine.n_skipped > 0 or quality.grade == "poor"
    return 1 if dirty else 0


def _cmd_corrupt(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    try:
        if args.kind:
            specs = [CorruptionSpec.parse(token) for token in args.kind]
        else:
            specs = default_specs(args.intensity)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out)
    try:
        include_detail = core_io._format_of(out) == ".jsonl"
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records, manifest = corrupt_dataset(
        dataset, specs, seed=args.seed, include_detail=include_detail
    )
    core_io.write_records(records, out)
    manifest_path = Path(args.manifest) if args.manifest else Path(str(out) + ".manifest.json")
    manifest_path.write_text(manifest.to_json() + "\n", encoding="utf-8")
    print(
        f"corrupted {manifest.n_input} -> {manifest.n_output} records "
        f"({', '.join(manifest.kinds())}) with seed {args.seed}"
    )
    print(f"wrote dump to {out}")
    print(f"wrote manifest to {manifest_path}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    incidents = mining.mine_incidents(dataset, min_batch=args.min_batch)
    rows = [
        (i.incident_id, i.kind, len(i), len(i.servers),
         f"{i.span_seconds / 86400.0:.1f} d", i.summary[:70])
        for i in incidents[: args.limit]
    ]
    print(
        report.format_table(
            ["id", "kind", "tickets", "servers", "span", "summary"],
            rows,
            title=f"{len(incidents)} incidents "
                  f"(showing the {min(args.limit, len(incidents))} largest)",
        )
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    rows = []
    for min_warnings in (1, 2, 3):
        rep = prediction.predict_and_evaluate(
            dataset, min_warnings=min_warnings, horizon_days=args.horizon
        )
        rows.append((
            min_warnings, rep.n_warnings,
            report.format_percent(rep.precision) if rep.n_warnings else "-",
            report.format_percent(rep.recall) if rep.n_fatal_failures else "-",
            f"{rep.mean_lead_days:.1f} d",
        ))
    print(
        report.format_table(
            ["trigger", "alerts", "precision", "recall", "mean lead"],
            rows,
            title=f"failure prediction ({args.horizon:.0f}-day horizon)",
        )
    )
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.simulation.trace import generate_paper_trace
    from repro.simulation.validation import failed_checks, validate_trace

    trace = generate_paper_trace(scale=args.scale, seed=args.seed)
    # Sampling noise widens with shrinking traces.
    slack = max(1.0, 0.3 / max(args.scale, 0.01))
    checks = validate_trace(trace, slack=slack)
    for check in checks:
        print(check)
    failed = failed_checks(checks)
    print(
        f"\n{len(checks) - len(failed)}/{len(checks)} targets within "
        f"tolerance at scale {args.scale}"
    )
    return 1 if failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    left = core_io.load(args.left)
    right = core_io.load(args.right)
    result = compare.compare_datasets(left, right)
    print(
        report.format_table(
            ["metric", args.left, args.right],
            compare.comparison_rows(result),
            title="dataset comparison (scale-free metrics)",
        )
    )
    verdict = "compatible" if result.within(args.tolerance) else "DIFFERENT"
    print(f"\nverdict at {args.tolerance:.0%} relative tolerance: {verdict}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fouryears",
        description=(
            "Reproduction toolkit for 'What Can We Learn from Four Years "
            "of Data Center Hardware Failures?' (DSN 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic FOT trace")
    gen.add_argument("--scale", type=float, default=0.05)
    gen.add_argument("--seed", type=int, default=20170626)
    gen.add_argument("--out", default="trace.jsonl")
    gen.add_argument("--inventory", default=None)
    gen.set_defaults(func=_cmd_generate)

    rep = sub.add_parser("report", help="print headline statistics")
    rep.add_argument("dataset")
    rep.add_argument("--inventory", default=None)
    rep.add_argument(
        "--lenient",
        action="store_true",
        help="quarantine malformed lines instead of failing the load",
    )
    rep.set_defaults(func=_cmd_report)

    ana = sub.add_parser("analyze", help="run every paper analysis")
    ana.add_argument("dataset")
    ana.add_argument("--inventory", default=None)
    ana.add_argument(
        "--lenient",
        action="store_true",
        help="quarantine malformed lines instead of failing the load",
    )
    ana.set_defaults(func=_cmd_analyze)

    val = sub.add_parser(
        "validate",
        help="audit a ticket dump: quarantine report + data-quality grade "
        "(exit 1 when lines were skipped or the grade is poor)",
    )
    val.add_argument("dataset")
    val.set_defaults(func=_cmd_validate)

    cor = sub.add_parser(
        "corrupt",
        help="deterministically corrupt a clean trace with FMS pathologies "
        "(chaos harness); writes the dump plus a machine-readable manifest",
    )
    cor.add_argument("dataset")
    cor.add_argument("--out", default="corrupted.jsonl")
    cor.add_argument("--seed", type=int, default=20170626)
    cor.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND[:INTENSITY]",
        help=f"corruption to inject (repeatable); kinds: {', '.join(CORRUPTION_KINDS)}. "
        "Default: every kind at --intensity",
    )
    cor.add_argument(
        "--intensity",
        type=float,
        default=0.05,
        help="fraction of eligible items affected for kinds without an "
        "explicit intensity (default 0.05)",
    )
    cor.add_argument("--manifest", default=None, help="manifest path (default: OUT.manifest.json)")
    cor.set_defaults(func=_cmd_corrupt)

    mine = sub.add_parser(
        "mine", help="cluster tickets into incidents (Section VII-B tool)"
    )
    mine.add_argument("dataset")
    mine.add_argument("--limit", type=int, default=20)
    mine.add_argument("--min-batch", type=int, default=25, dest="min_batch")
    mine.set_defaults(func=_cmd_mine)

    pred = sub.add_parser(
        "predict", help="evaluate the early-warning predictor (Section VII-A)"
    )
    pred.add_argument("dataset")
    pred.add_argument("--horizon", type=float, default=30.0)
    pred.set_defaults(func=_cmd_predict)

    cmp_ = sub.add_parser(
        "compare", help="compare two ticket dumps (real vs. synthetic, ...)"
    )
    cmp_.add_argument("left")
    cmp_.add_argument("right")
    cmp_.add_argument("--tolerance", type=float, default=0.5)
    cmp_.set_defaults(func=_cmd_compare)

    check = sub.add_parser(
        "selfcheck",
        help="generate a trace and validate it against the paper targets",
    )
    check.add_argument("--scale", type=float, default=0.1)
    check.add_argument("--seed", type=int, default=20170626)
    check.set_defaults(func=_cmd_selfcheck)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
