"""Command-line interface.

Three subcommands::

    fouryears generate --scale 0.05 --seed 7 --out trace.jsonl \
        --inventory inventory.csv
    fouryears analyze trace.jsonl --inventory inventory.csv
    fouryears report trace.jsonl          # compact headline summary

``analyze`` prints every paper table/figure the dataset supports;
``report`` prints only the headline numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    batch,
    compare,
    concentration,
    correlated,
    mining,
    overview,
    prediction,
    repeating,
    report,
    response,
    spatial,
    tbf,
    temporal,
)
from repro.core import io as core_io
from repro.core.types import ComponentClass, FOTCategory
from repro.fleet.inventory import Inventory
from repro.simulation.trace import generate_paper_trace


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_paper_trace(scale=args.scale, seed=args.seed)
    core_io.save(trace.dataset, args.out)
    print(f"wrote {len(trace.dataset)} tickets to {args.out}")
    if args.inventory:
        trace.inventory.save_csv(args.inventory)
        print(f"wrote inventory ({len(trace.inventory)} servers) to {args.inventory}")
    summary = trace.dataset.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


def _print_headlines(dataset, inventory: Optional[Inventory]) -> None:
    cats = overview.category_breakdown(dataset)
    print(
        report.format_table(
            ["category", "share"],
            [
                (cat.value, report.format_percent(cats.fraction(cat)))
                for cat in FOTCategory
            ],
            title="Table I — FOT categories",
        )
    )
    print()
    comp = overview.component_breakdown(dataset)
    print(
        report.format_table(
            ["component", "share"],
            [(cls.value, report.format_percent(share)) for cls, share in comp.items()],
            title="Table II — failures by component",
        )
    )
    print()
    analysis = tbf.analyze_tbf(dataset)
    print(f"MTBF: {analysis.mtbf_minutes:.1f} minutes over {analysis.n_gaps + 1} failures")
    rejected = {name: t.reject_at(0.05) for name, t in analysis.tests.items()}
    print(f"TBF fits rejected at 0.05: {rejected}")


def _cmd_report(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    inventory = Inventory.load_csv(args.inventory) if args.inventory else None
    _print_headlines(dataset, inventory)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    inventory = Inventory.load_csv(args.inventory) if args.inventory else None
    _print_headlines(dataset, inventory)

    print()
    for cls, profile in temporal.day_of_week_summary(dataset, 4).items():
        print(
            report.format_profile(
                profile.labels,
                profile.fractions,
                title=f"Figure 3 — {cls.value} by day of week ({profile.test})",
            )
        )
        print()

    curve = concentration.failure_concentration(dataset)
    print(
        f"Figure 7 — concentration: top 2 % of ever-failed servers hold "
        f"{report.format_percent(curve.share_of_top(0.02))} of failures "
        f"(gini {curve.gini:.3f})"
    )
    rep = repeating.repeating_stats(dataset)
    print(
        f"Repeats: {report.format_percent(rep.repeat_free_fraction)} of fixed "
        f"components never repeat; "
        f"{report.format_percent(rep.repeating_server_fraction)} of failed "
        f"servers repeat; worst server has {rep.max_failures_single_server} failures"
    )

    freq = batch.batch_failure_frequency(dataset)
    rows = [
        (cls.value,) + tuple(report.format_percent(freq[cls][n]) for n in batch.TABLE_V_THRESHOLDS)
        for cls in ComponentClass
    ]
    print()
    print(
        report.format_table(
            ["component", "r100", "r200", "r500"],
            rows,
            title="Table V — batch failure frequency",
        )
    )

    corr = correlated.component_pair_counts(dataset)
    print()
    print(
        f"Correlated pairs: {corr.total_pairs()} "
        f"({report.format_percent(corr.correlated_server_fraction)} of failed "
        f"servers; misc share {report.format_percent(corr.misc_share)})"
    )

    fixing = response.rt_distribution(dataset, FOTCategory.FIXING)
    print(
        f"RT (D_fixing): median {fixing.median_days:.1f} d, mean "
        f"{fixing.mean_days:.1f} d, >140 d: {report.format_percent(fixing.tail_140d)}"
    )

    if inventory is not None:
        summary = spatial.rack_position_tests(dataset, inventory)
        print()
        print(
            report.format_table(
                ["p-value bucket", "data centers"],
                list(summary.bucket_counts().items()),
                title="Table IV — rack-position chi-square results",
            )
        )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    incidents = mining.mine_incidents(dataset, min_batch=args.min_batch)
    rows = [
        (i.incident_id, i.kind, len(i), len(i.servers),
         f"{i.span_seconds / 86400.0:.1f} d", i.summary[:70])
        for i in incidents[: args.limit]
    ]
    print(
        report.format_table(
            ["id", "kind", "tickets", "servers", "span", "summary"],
            rows,
            title=f"{len(incidents)} incidents "
                  f"(showing the {min(args.limit, len(incidents))} largest)",
        )
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    dataset = core_io.load(args.dataset)
    rows = []
    for min_warnings in (1, 2, 3):
        rep = prediction.predict_and_evaluate(
            dataset, min_warnings=min_warnings, horizon_days=args.horizon
        )
        rows.append((
            min_warnings, rep.n_warnings,
            report.format_percent(rep.precision) if rep.n_warnings else "-",
            report.format_percent(rep.recall) if rep.n_fatal_failures else "-",
            f"{rep.mean_lead_days:.1f} d",
        ))
    print(
        report.format_table(
            ["trigger", "alerts", "precision", "recall", "mean lead"],
            rows,
            title=f"failure prediction ({args.horizon:.0f}-day horizon)",
        )
    )
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.simulation.trace import generate_paper_trace
    from repro.simulation.validation import failed_checks, validate_trace

    trace = generate_paper_trace(scale=args.scale, seed=args.seed)
    # Sampling noise widens with shrinking traces.
    slack = max(1.0, 0.3 / max(args.scale, 0.01))
    checks = validate_trace(trace, slack=slack)
    for check in checks:
        print(check)
    failed = failed_checks(checks)
    print(
        f"\n{len(checks) - len(failed)}/{len(checks)} targets within "
        f"tolerance at scale {args.scale}"
    )
    return 1 if failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    left = core_io.load(args.left)
    right = core_io.load(args.right)
    result = compare.compare_datasets(left, right)
    print(
        report.format_table(
            ["metric", args.left, args.right],
            compare.comparison_rows(result),
            title="dataset comparison (scale-free metrics)",
        )
    )
    verdict = "compatible" if result.within(args.tolerance) else "DIFFERENT"
    print(f"\nverdict at {args.tolerance:.0%} relative tolerance: {verdict}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fouryears",
        description=(
            "Reproduction toolkit for 'What Can We Learn from Four Years "
            "of Data Center Hardware Failures?' (DSN 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic FOT trace")
    gen.add_argument("--scale", type=float, default=0.05)
    gen.add_argument("--seed", type=int, default=20170626)
    gen.add_argument("--out", default="trace.jsonl")
    gen.add_argument("--inventory", default=None)
    gen.set_defaults(func=_cmd_generate)

    rep = sub.add_parser("report", help="print headline statistics")
    rep.add_argument("dataset")
    rep.add_argument("--inventory", default=None)
    rep.set_defaults(func=_cmd_report)

    ana = sub.add_parser("analyze", help="run every paper analysis")
    ana.add_argument("dataset")
    ana.add_argument("--inventory", default=None)
    ana.set_defaults(func=_cmd_analyze)

    mine = sub.add_parser(
        "mine", help="cluster tickets into incidents (Section VII-B tool)"
    )
    mine.add_argument("dataset")
    mine.add_argument("--limit", type=int, default=20)
    mine.add_argument("--min-batch", type=int, default=25, dest="min_batch")
    mine.set_defaults(func=_cmd_mine)

    pred = sub.add_parser(
        "predict", help="evaluate the early-warning predictor (Section VII-A)"
    )
    pred.add_argument("dataset")
    pred.add_argument("--horizon", type=float, default=30.0)
    pred.set_defaults(func=_cmd_predict)

    cmp_ = sub.add_parser(
        "compare", help="compare two ticket dumps (real vs. synthetic, ...)"
    )
    cmp_.add_argument("left")
    cmp_.add_argument("right")
    cmp_.add_argument("--tolerance", type=float, default=0.5)
    cmp_.set_defaults(func=_cmd_compare)

    check = sub.add_parser(
        "selfcheck",
        help="generate a trace and validate it against the paper targets",
    )
    check.add_argument("--scale", type=float, default=0.1)
    check.add_argument("--seed", type=int, default=20170626)
    check.set_defaults(func=_cmd_selfcheck)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
