"""Command-line interface, consolidated onto the :mod:`repro.api` facade.

Core subcommands::

    fouryears simulate --scale 0.05 --seed 7 --jobs 4 --out trace.jsonl \
        --inventory inventory.csv
    fouryears convert trace.jsonl trace.fourcol   # parse once, mmap forever
    fouryears analyze trace.fourcol --inventory inventory.csv --cache
    fouryears report trace.fourcol        # compact headline summary
    fouryears validate dump.csv           # quarantine + data-quality audit
    fouryears corrupt trace.jsonl --out dirty.jsonl --seed 7
    fouryears serve --port 8437 --dead-letter-dir dead_letters/
    fouryears replay-deadletter dead_letters/ --out recovered.jsonl
    fouryears telemetry run.telemetry.jsonl   # where did the time go?

(``repro`` is installed as an alias of ``fouryears``; ``generate`` is a
deprecated alias of ``simulate``.)

``convert`` re-encodes a dump between the text interchange formats
(csv/jsonl, optionally gzipped) and the native binary columnar format
(a ``.fourcol`` directory) that loads by memory-mapping in
near-constant time — convert once, then point every other subcommand
at the ``.fourcol`` path.
``analyze`` prints every paper table/figure the dataset supports,
skipping (with a notice) any analysis the data cannot sustain;
``report`` prints only the headline numbers.  ``validate`` loads a dump
through the quarantining loader and prints what was skipped/repaired
plus a :class:`~repro.robustness.quality.DataQuality` assessment.
``corrupt`` runs the deterministic chaos harness over a clean trace.

Flags behave identically wherever they appear: ``--lenient``
quarantines malformed input lines instead of failing the load, and
``--cache``/``--no-cache`` toggles the on-disk analysis cache under
``.repro_cache/``.  Execution flags all feed one
:class:`repro.ExecutionPolicy`: ``--jobs auto`` (the default) lets the
adaptive planner pick serial or a sized pool (bit-identical output
either way), ``--jobs N``/``--jobs serial`` override it, and
``--telemetry PATH`` appends one structured run document per engine run
that ``fouryears telemetry PATH`` renders back.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import api
from repro.core import io as core_io
from repro.core.timeutil import DAY
from repro.robustness.chaos import (
    CORRUPTION_KINDS,
    CorruptionSpec,
    corrupt_dataset,
    default_specs,
)

#: Default on-disk cache location for ``--cache``.
CACHE_DIR = Path(".repro_cache")


def _cache_from(args: argparse.Namespace) -> Optional[api.AnalysisCache]:
    if getattr(args, "cache", False):
        return api.AnalysisCache(directory=CACHE_DIR)
    return None


def _policy_from(args: argparse.Namespace) -> api.ExecutionPolicy:
    """Build the run's :class:`repro.ExecutionPolicy` from the parsed
    execution flags (each subcommand only defines the ones it uses)."""
    from repro.engine import JsonlTelemetrySink, coerce_jobs

    sink = None
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        sink = JsonlTelemetrySink(Path(telemetry_path))
    return api.ExecutionPolicy(
        jobs=coerce_jobs(getattr(args, "jobs", "auto")),
        cache=_cache_from(args),
        telemetry_sink=sink,
        shard_strategy=getattr(args, "shard_strategy", "cost"),
    )


def _print_plan(trace) -> None:
    telemetry = trace.telemetry
    if telemetry is None or telemetry.plan is None:
        return
    plan = telemetry.plan
    print(
        f"plan: {plan.mode} (jobs={plan.jobs}, {plan.probed_cpus} usable "
        f"CPUs via {plan.cpu_source}) — {plan.reason}"
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        policy = _policy_from(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = api.simulate(scale=args.scale, seed=args.seed, policy=policy)
    _print_plan(trace)
    core_io.save(trace.dataset, args.out)
    print(f"wrote {len(trace.dataset)} tickets to {args.out}")
    if args.inventory:
        trace.inventory.save_csv(args.inventory)
        print(f"wrote inventory ({len(trace.inventory)} servers) to {args.inventory}")
    if args.telemetry:
        print(f"appended run telemetry to {args.telemetry}")
    summary = trace.dataset.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


def _load_dataset(path: str, lenient: bool):
    """Load a dump; in lenient mode print the quarantine summary and
    return whatever could be salvaged."""
    if not lenient:
        try:
            return api.load(path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                "hint: pass --lenient to quarantine malformed lines and "
                "analyze the rest",
                file=sys.stderr,
            )
            raise SystemExit(2) from exc
    audited = api.audit(path)
    if not audited.quarantine.clean:
        print(audited.quarantine.format())
        print()
    return audited.dataset


def _cmd_convert(args: argparse.Namespace) -> int:
    try:
        report = api.convert(args.src, args.dst, lenient=args.lenient)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if not args.lenient:
            print(
                "hint: pass --lenient to quarantine malformed lines and "
                "convert the rest",
                file=sys.stderr,
            )
        return 2
    if not report.clean:
        print(report.format())
        print()
    print(f"wrote {report.n_loaded} tickets to {args.dst}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset, args.lenient)
    report = api.full_report(
        dataset, policy=_policy_from(args), headline_only=True
    )
    print(report.text())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset, args.lenient)
    inventory = None
    if args.inventory:
        from repro.fleet.inventory import Inventory

        inventory = Inventory.load_csv(args.inventory)
    report = api.full_report(
        dataset, inventory=inventory, policy=_policy_from(args)
    )
    print(report.text())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        audited = api.audit(args.dataset)
    except ValueError as exc:
        # Even lenient loading refuses structurally unreadable dumps
        # (unknown format, missing required CSV columns).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(audited.quarantine.format())
    print()
    print(audited.quality.format())
    return 1 if audited.dirty else 0


def _cmd_corrupt(args: argparse.Namespace) -> int:
    dataset = api.load(args.dataset)
    try:
        if args.kind:
            specs = [CorruptionSpec.parse(token) for token in args.kind]
        else:
            specs = default_specs(args.intensity)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out)
    try:
        include_detail = core_io._format_of(out) == ".jsonl"
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records, manifest = corrupt_dataset(
        dataset, specs, seed=args.seed, include_detail=include_detail
    )
    core_io.write_records(records, out)
    manifest_path = Path(args.manifest) if args.manifest else Path(str(out) + ".manifest.json")
    manifest_path.write_text(manifest.to_json() + "\n", encoding="utf-8")
    print(
        f"corrupted {manifest.n_input} -> {manifest.n_output} records "
        f"({', '.join(manifest.kinds())}) with seed {args.seed}"
    )
    print(f"wrote dump to {out}")
    print(f"wrote manifest to {manifest_path}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    dataset = api.load(args.dataset)
    incidents = api.mine_incidents(dataset, min_batch=args.min_batch)
    rows = [
        (i.incident_id, i.kind, len(i), len(i.servers),
         f"{i.span_seconds / DAY:.1f} d", i.summary[:70])
        for i in incidents[: args.limit]
    ]
    print(
        api.format_table(
            ["id", "kind", "tickets", "servers", "span", "summary"],
            rows,
            title=f"{len(incidents)} incidents "
                  f"(showing the {min(args.limit, len(incidents))} largest)",
        )
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    dataset = api.load(args.dataset)
    rows = []
    for min_warnings in (1, 2, 3):
        rep = api.predict_and_evaluate(
            dataset, min_warnings=min_warnings, horizon_days=args.horizon
        )
        rows.append((
            min_warnings, rep.n_warnings,
            api.format_percent(rep.precision) if rep.n_warnings else "-",
            api.format_percent(rep.recall) if rep.n_fatal_failures else "-",
            f"{rep.mean_lead_days:.1f} d",
        ))
    print(
        api.format_table(
            ["trigger", "alerts", "precision", "recall", "mean lead"],
            rows,
            title=f"failure prediction ({args.horizon:.0f}-day horizon)",
        )
    )
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.simulation.validation import failed_checks, validate_trace

    try:
        policy = _policy_from(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = api.simulate(scale=args.scale, seed=args.seed, policy=policy)
    _print_plan(trace)
    # Sampling noise widens with shrinking traces.
    slack = max(1.0, 0.3 / max(args.scale, 0.01))
    checks = validate_trace(trace, slack=slack)
    for check in checks:
        print(check)
    failed = failed_checks(checks)
    print(
        f"\n{len(checks) - len(failed)}/{len(checks)} targets within "
        f"tolerance at scale {args.scale}"
    )
    return 1 if failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    left = api.load(args.left)
    right = api.load(args.right)
    result = api.compare(left, right)
    print(
        api.format_table(
            ["metric", args.left, args.right],
            result.rows(),
            title="dataset comparison (scale-free metrics)",
        )
    )
    verdict = "compatible" if result.within(args.tolerance) else "DIFFERENT"
    print(f"\nverdict at {args.tolerance:.0%} relative tolerance: {verdict}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import BreakerConfig, IngestRouter, ServeConfig, serve_http

    initial = None
    if args.dataset:
        initial = _load_dataset(args.dataset, lenient=True)
    config = ServeConfig(
        queue_high_watermark=args.queue_watermark,
        max_batch_tickets=args.max_batch_tickets,
        refresh_interval_batches=args.refresh_every,
        dead_letter_dir=(
            Path(args.dead_letter_dir) if args.dead_letter_dir else None
        ),
        breaker=BreakerConfig(
            failure_threshold=args.breaker_threshold,
            reset_seconds=args.breaker_reset,
        ),
    )
    router = IngestRouter(
        config, initial=initial, cache=_cache_from(args)
    )

    async def _run() -> None:
        server = await serve_http(router, host=args.host, port=args.port)
        bound = server.sockets[0].getsockname()
        print(f"listening on {bound[0]}:{bound[1]}")
        print(
            f"POST /ingest/<source>  GET /healthz  GET /metrics  "
            f"(queue watermark {config.queue_high_watermark}, "
            f"max batch {config.max_batch_tickets} tickets)"
        )
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            server.close()
            await server.wait_closed()
            await router.stop(drain=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    snapshot = router.metrics_snapshot()
    counters = snapshot["counters"]
    print("\ningest summary:")
    for key in (
        "batches_submitted", "batches_accepted", "batches_quarantined",
        "batches_dead_lettered", "batches_rejected_queue_full",
        "batches_rejected_breaker", "tickets_submitted", "tickets_accepted",
        "tickets_quarantined", "tickets_dead_lettered", "retries",
    ):
        print(f"  {key}: {counters[key]}")
    print(f"  live tickets: {len(router.live)}")
    return 0


def _cmd_replay_deadletter(args: argparse.Namespace) -> int:
    from repro.core.dataset import FOTDataset
    from repro.robustness.batch import validate_batch
    from repro.serve import DeadLetterStore

    store = DeadLetterStore(Path(args.directory))
    entries = store.entries()
    if not entries:
        print(f"no dead-lettered batches under {args.directory}")
        return 0
    accepted: list = []
    n_recovered = 0
    n_quarantined = 0
    still_poison = []
    for entry, records in store.iter_batches():
        validation = validate_batch(
            records,
            source=f"dead-letter#{entry.seq}",
            max_tickets=args.max_batch_tickets,
        )
        if validation.accepted:
            accepted.append(validation.dataset)
            n_recovered += validation.n_accepted
            n_quarantined += validation.n_quarantined
            print(
                f"  seq {entry.seq} ({entry.source}, parked as "
                f"{entry.reason}): recovered {validation.n_accepted} "
                f"tickets, quarantined {validation.n_quarantined}"
            )
            if args.drop:
                store.remove(entry.seq)
        else:
            still_poison.append(entry)
            print(
                f"  seq {entry.seq} ({entry.source}, parked as "
                f"{entry.reason}): still poison ({validation.verdict}: "
                f"{validation.reason})"
            )
    print(
        f"\nreplayed {len(entries)} batches: {len(accepted)} accepted "
        f"({n_recovered} tickets, {n_quarantined} quarantined), "
        f"{len(still_poison)} still poison"
    )
    if args.out and accepted:
        merged = FOTDataset.concat_many(accepted)
        core_io.save(merged, args.out)
        print(f"wrote {len(merged)} recovered tickets to {args.out}")
    return 1 if still_poison else 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.engine.telemetry import TelemetryError, read_telemetry

    try:
        runs = read_telemetry(args.path)
    except FileNotFoundError:
        print(f"error: no telemetry file at {args.path}", file=sys.stderr)
        return 2
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not runs:
        print(f"no runs recorded in {args.path}")
        return 1
    selected = runs[-1:] if args.last else runs
    for i, run in enumerate(selected):
        ordinal = len(runs) if args.last else i + 1
        print(
            api.format_table(
                ["key", "value"],
                run.rows(),
                title=f"run {ordinal}/{len(runs)}: {run.kind}",
            )
        )
        if run.shards:
            print()
            print(
                api.format_table(
                    ["shard", "idc", "servers", "tickets", "est cost",
                     "order", "queue", "wall", "cpu"],
                    [
                        (s.index, s.idc, s.n_servers, s.n_tickets,
                         f"{s.estimated_cost:.0f}", s.dispatch_order,
                         s.queue_depth, f"{s.wall_seconds:.3f}s",
                         f"{s.cpu_seconds:.3f}s")
                        for s in run.shards
                    ],
                    title="per-shard execution",
                )
            )
        print()
    return 0


def _strip_separator(extra: Sequence[str]) -> Sequence[str]:
    """Drop the optional '--' REMAINDER separator."""
    return extra[1:] if extra and extra[0] == "--" else extra


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import main as lint_main

    return lint_main(_strip_separator(args.lint_args))


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.devtools.sanitize import main as sanitize_main

    return sanitize_main(_strip_separator(args.sanitize_args))


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=str,
        default="auto",
        metavar="N|auto|serial",
        help="worker processes for trace generation: 'auto' lets the "
        "adaptive planner choose, 'serial' forces in-process execution, "
        "an integer pins the pool size (output is bit-identical either way)",
    )
    parser.add_argument(
        "--shard-strategy",
        choices=("cost", "count"),
        default="cost",
        dest="shard_strategy",
        help="shard dispatch order: 'cost' hands out the most expensive "
        "data centers first (default), 'count' keeps natural order",
    )


def _add_telemetry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append one JSON run document (plan, stage and shard "
        "timings) per engine run to PATH",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cache",
        action="store_true",
        default=False,
        help=f"memoize analysis results on disk under {CACHE_DIR}/",
    )
    group.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        help="recompute every analysis (default)",
    )


def _add_lenient_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="quarantine malformed lines instead of failing the load",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fouryears",
        description=(
            "Reproduction toolkit for 'What Can We Learn from Four Years "
            "of Data Center Hardware Failures?' (DSN 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("simulate", "generate a synthetic FOT trace"),
        ("generate", "deprecated alias of 'simulate'"),
    ):
        gen = sub.add_parser(name, help=help_text)
        gen.add_argument("--scale", type=float, default=0.05)
        gen.add_argument("--seed", type=int, default=20170626)
        gen.add_argument("--out", default="trace.jsonl")
        gen.add_argument("--inventory", default=None)
        _add_jobs_flag(gen)
        _add_telemetry_flag(gen)
        gen.set_defaults(func=_cmd_simulate)

    conv = sub.add_parser(
        "convert",
        help="convert a ticket dump between formats (csv/jsonl ⇄ "
        "columnar .fourcol); converting to columnar pays the text parse "
        "once so later loads memory-map in near-constant time",
    )
    conv.add_argument("src", help="source dump (.jsonl[.gz] / .csv[.gz] / .fourcol)")
    conv.add_argument("dst", help="destination (format chosen by suffix)")
    _add_lenient_flag(conv)
    conv.set_defaults(func=_cmd_convert)

    rep = sub.add_parser("report", help="print headline statistics")
    rep.add_argument("dataset")
    rep.add_argument("--inventory", default=None)
    _add_lenient_flag(rep)
    _add_cache_flags(rep)
    rep.set_defaults(func=_cmd_report)

    ana = sub.add_parser("analyze", help="run every paper analysis")
    ana.add_argument("dataset")
    ana.add_argument("--inventory", default=None)
    _add_lenient_flag(ana)
    _add_cache_flags(ana)
    ana.set_defaults(func=_cmd_analyze)

    val = sub.add_parser(
        "validate",
        help="audit a ticket dump: quarantine report + data-quality grade "
        "(exit 1 when lines were skipped or the grade is poor)",
    )
    val.add_argument("dataset")
    val.set_defaults(func=_cmd_validate)

    cor = sub.add_parser(
        "corrupt",
        help="deterministically corrupt a clean trace with FMS pathologies "
        "(chaos harness); writes the dump plus a machine-readable manifest",
    )
    cor.add_argument("dataset")
    cor.add_argument("--out", default="corrupted.jsonl")
    cor.add_argument("--seed", type=int, default=20170626)
    cor.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND[:INTENSITY]",
        help=f"corruption to inject (repeatable); kinds: {', '.join(CORRUPTION_KINDS)}. "
        "Default: every kind at --intensity",
    )
    cor.add_argument(
        "--intensity",
        type=float,
        default=0.05,
        help="fraction of eligible items affected for kinds without an "
        "explicit intensity (default 0.05)",
    )
    cor.add_argument("--manifest", default=None, help="manifest path (default: OUT.manifest.json)")
    cor.set_defaults(func=_cmd_corrupt)

    mine = sub.add_parser(
        "mine", help="cluster tickets into incidents (Section VII-B tool)"
    )
    mine.add_argument("dataset")
    mine.add_argument("--limit", type=int, default=20)
    mine.add_argument("--min-batch", type=int, default=25, dest="min_batch")
    mine.set_defaults(func=_cmd_mine)

    pred = sub.add_parser(
        "predict", help="evaluate the early-warning predictor (Section VII-A)"
    )
    pred.add_argument("dataset")
    pred.add_argument("--horizon", type=float, default=30.0)
    pred.set_defaults(func=_cmd_predict)

    cmp_ = sub.add_parser(
        "compare", help="compare two ticket dumps (real vs. synthetic, ...)"
    )
    cmp_.add_argument("left")
    cmp_.add_argument("right")
    cmp_.add_argument("--tolerance", type=float, default=0.5)
    cmp_.set_defaults(func=_cmd_compare)

    check = sub.add_parser(
        "selfcheck",
        help="generate a trace and validate it against the paper targets",
    )
    check.add_argument("--scale", type=float, default=0.1)
    check.add_argument("--seed", type=int, default=20170626)
    _add_jobs_flag(check)
    _add_telemetry_flag(check)
    check.set_defaults(func=_cmd_selfcheck)

    srv = sub.add_parser(
        "serve",
        help="run the streaming ticket-ingestion service "
        "(POST /ingest/<source>, GET /healthz, GET /metrics)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8437)
    srv.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop after this many seconds (default: run until ^C)",
    )
    srv.add_argument(
        "--dataset", default=None,
        help="seed the live dataset from an existing dump",
    )
    srv.add_argument(
        "--dead-letter-dir", default=None, dest="dead_letter_dir",
        help="durable dead-letter store directory (default: in-memory)",
    )
    srv.add_argument(
        "--queue-watermark", type=int, default=64, dest="queue_watermark",
        help="bounded ingest queue capacity; beyond it submissions get "
        "HTTP 429 (default 64)",
    )
    srv.add_argument(
        "--max-batch-tickets", type=int, default=10_000,
        dest="max_batch_tickets",
        help="batches above this ticket count are dead-lettered as "
        "oversized (default 10000)",
    )
    srv.add_argument(
        "--refresh-every", type=int, default=0, dest="refresh_every",
        metavar="N",
        help="recompute the headline report every N accepted batches "
        "(0 disables; default 0)",
    )
    srv.add_argument(
        "--breaker-threshold", type=int, default=5, dest="breaker_threshold",
        help="consecutive failures before a source's circuit breaker "
        "opens (default 5)",
    )
    srv.add_argument(
        "--breaker-reset", type=float, default=30.0, dest="breaker_reset",
        help="seconds an open breaker waits before half-open probing "
        "(default 30)",
    )
    _add_cache_flags(srv)
    srv.set_defaults(func=_cmd_serve)

    rdl = sub.add_parser(
        "replay-deadletter",
        help="re-validate dead-lettered batches and recover what now "
        "passes (exit 1 if any batch is still poison)",
    )
    rdl.add_argument("directory", help="the service's --dead-letter-dir")
    rdl.add_argument(
        "--out", default=None,
        help="write recovered tickets to this dump (jsonl/csv)",
    )
    rdl.add_argument(
        "--drop", action="store_true",
        help="remove successfully replayed batches from the store",
    )
    rdl.add_argument(
        "--max-batch-tickets", type=int, default=10_000,
        dest="max_batch_tickets",
        help="size cap applied during re-validation (default 10000)",
    )
    rdl.set_defaults(func=_cmd_replay_deadletter)

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo-specific invariant checker "
        "(engines: ast, dataflow, effects; see 'fouryears lint -- "
        "--help' for its own flags)",
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="arguments forwarded to python -m repro.devtools.lint",
    )
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="run all analyses under runtime immutability/fingerprint "
        "guards (see 'fouryears sanitize -- --help')",
    )
    sanitize.add_argument(
        "sanitize_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="arguments forwarded to python -m repro.devtools.sanitize",
    )
    sanitize.set_defaults(func=_cmd_sanitize)

    tele = sub.add_parser(
        "telemetry",
        help="render recorded execution telemetry (plan, stage and "
        "shard timings) from a --telemetry JSONL file",
    )
    tele.add_argument("path", help="telemetry JSONL file to render")
    tele.add_argument(
        "--last",
        action="store_true",
        help="show only the most recent run",
    )
    tele.set_defaults(func=_cmd_telemetry)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
