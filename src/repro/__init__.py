"""Reproduction of *What Can We Learn from Four Years of Data Center
Hardware Failures?* (Wang, Zhang, Xu — DSN 2017).

The package has two halves:

* ``repro.core`` / ``repro.stats`` / ``repro.analysis`` implement the
  paper's contribution — a complete failure-analysis toolkit over
  failure operation tickets (FOTs).
* ``repro.fleet`` / ``repro.simulation`` / ``repro.fms`` implement the
  substrate the paper depends on — a data-center fleet, the failure
  processes, and the Failure Management System — so a calibrated
  synthetic four-year trace stands in for the proprietary dataset.

Quickstart — the :mod:`repro.api` facade is the documented surface::

    import repro

    trace = repro.simulate(scale=0.05, seed=7)   # jobs="auto" by default
    print(repro.full_report(trace.dataset).text())

    # One ExecutionPolicy carries every execution knob (worker plan,
    # analysis cache, telemetry sink) through all the verbs:
    policy = repro.ExecutionPolicy(jobs="auto", cache=repro.AnalysisCache())
    trace = repro.simulate(scale=0.05, seed=7, policy=policy)
    print(trace.telemetry.plan.reason)
"""

from repro.core.dataset import FOTDataset
from repro.core.ticket import FOT
from repro.core.types import ComponentClass, FOTCategory
from repro.simulation.trace import generate_paper_trace, generate_trace
from repro import analysis, engine, stats
from repro import api
from repro.api import (
    AnalysisCache,
    ExecutionPolicy,
    analyze,
    audit,
    compare,
    full_report,
    load,
    simulate,
)

__all__ = [
    "FOT",
    "FOTDataset",
    "ComponentClass",
    "FOTCategory",
    "analysis",
    "api",
    "engine",
    "stats",
    "generate_paper_trace",
    "generate_trace",
    "load",
    "audit",
    "simulate",
    "analyze",
    "full_report",
    "compare",
    "AnalysisCache",
    "ExecutionPolicy",
]

__version__ = "1.0.0"
