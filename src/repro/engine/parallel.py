"""Process-parallel execution of planned trace shards.

The unit of work is fixed by the *plan*, not by the pool: one shard per
data center, each with its own spawned seed stream.  ``jobs`` only
decides how many worker processes drain the task list, so any job count
(including 1) produces bit-identical results.

Workers are primed via the pool initializer: with the (preferred)
``fork`` start method the plan is inherited copy-on-write and nothing is
pickled on the way in; each worker ships back its shard's raw
:class:`~repro.core.columns.ColumnStore` arrays, which the caller
concatenates once.  Environments that cannot spawn processes at all
fall back to in-process execution.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.simulation.trace import ShardResult, ShardShared, ShardTask

#: Worker-side plan storage, set once per worker by the pool initializer.
_WORKER_PLAN: Optional[Tuple["ShardShared", Sequence["ShardTask"]]] = None


def _init_worker(shared: "ShardShared", tasks: Sequence["ShardTask"]) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = (shared, tasks)


def _run_one(index: int) -> "ShardResult":
    from repro.simulation.trace import run_shard

    assert _WORKER_PLAN is not None, "worker pool was not initialized"
    shared, tasks = _WORKER_PLAN
    return run_shard(tasks[index], shared)


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_shards(
    tasks: Sequence["ShardTask"],
    shared: "ShardShared",
    jobs: int = 1,
    order: Optional[Sequence[int]] = None,
) -> List["ShardResult"]:
    """Execute every :class:`~repro.simulation.trace.ShardTask` and
    return the :class:`~repro.simulation.trace.ShardResult` list in task
    order.

    ``jobs <= 1`` (or a single task) runs in-process; otherwise a pool
    of ``min(jobs, len(tasks))`` workers drains the tasks.  ``order``
    optionally gives the dispatch sequence of task indices (the
    adaptive planner hands shards out in descending estimated cost, an
    LPT approximation against the pool's shared queue); results are
    re-sorted by task index, so dispatch order never affects output.
    Falls back to in-process execution when the platform refuses to
    fork/spawn.
    """
    from repro.simulation.trace import run_shard

    indices: Sequence[int] = order if order is not None else range(len(tasks))
    if sorted(indices) != list(range(len(tasks))):
        raise ValueError("order must be a permutation of the task indices")
    jobs = min(max(1, int(jobs)), len(tasks))
    if jobs <= 1 or len(tasks) <= 1:
        return [run_shard(task, shared) for task in tasks]
    ctx = _pool_context()
    try:
        with ctx.Pool(
            processes=jobs, initializer=_init_worker, initargs=(shared, tasks)
        ) as pool:
            results = pool.map(_run_one, indices, chunksize=1)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed hosts
        return [run_shard(task, shared) for task in tasks]
    return sorted(results, key=lambda r: r.index)


__all__ = ["run_shards"]
