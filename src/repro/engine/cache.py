"""Content-keyed memoization of analysis results over dataset views.

A cache key is the SHA-256 of

``(cache format version, repro version, function module+qualname,
canonicalized params, dataset view fingerprint)``

where the view fingerprint (:meth:`FOTDataset.fingerprint`) combines the
backing store's content hash with a hash of the view's index array.
Views are immutable — ``where``/``take``/``concat`` return *new* views
with new index arrays — so invalidation is automatic: a filter tweak
changes the fingerprint and misses the cache, while re-running the same
report on the same view hits every entry.

Datasets opened from columnar storage (:mod:`repro.core.storage`) come
with the store's content hash pre-seeded from the manifest — it was
computed once at save time and rides along with the blobs — so a warm
cache hit after ``load_columnar`` costs a manifest read plus a key
hash, never a re-hash of column bytes.  The same hash is produced for
the same ticket content regardless of format, so entries cached from a
JSONL-loaded dataset are hits for its columnar conversion and vice
versa.

Two tiers:

* an in-memory LRU (``max_entries``) for the common re-run-in-process
  case;
* an optional on-disk tier (``directory``, conventionally
  ``.repro_cache/``) holding pickled results, shared across processes.
  Disk entries are written atomically (temp file + rename) so
  concurrent writers — e.g. parallel test workers pointed at *distinct*
  temp dirs, or two CLI invocations racing on one dir — never observe a
  torn pickle; unreadable entries are treated as misses.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple, Union

if TYPE_CHECKING:
    from repro.core.dataset import FOTDataset

#: Bump when the key schema or pickle layout changes.
_FORMAT = "repro-cache-v1"


def _canon(value: Any) -> str:
    """Deterministic text form of a parameter value for key hashing."""
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        items = ",".join(
            f"{_canon(k)}:{_canon(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canon(v) for v in value) + "]"
    if isinstance(value, float):
        return repr(value)
    return repr(value)


@dataclass
class CacheStats:
    """Counters for observability and tests."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class AnalysisCache:
    """LRU + optional disk memo for ``fn(dataset, **params)`` calls.

    Args:
        max_entries: In-memory LRU capacity (per-cache, not per-key).
        directory: On-disk tier root; ``None`` disables the disk tier.
            Created on first write.  Point concurrent workers that must
            not share state (e.g. ``pytest -n auto``) at distinct
            temp dirs.
    """

    max_entries: int = 128
    directory: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _lru: "OrderedDict[str, Any]" = field(default_factory=OrderedDict)
    #: dataset fingerprint -> keys cached for it in this process; lets
    #: the streaming append path evict every entry of a superseded view
    #: (:meth:`invalidate`) without rehashing the whole key space.
    _fp_keys: Dict[str, Set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.directory is not None:
            self.directory = Path(self.directory)
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")

    # ------------------------------------------------------------------
    def key_for(
        self, fn: Callable, dataset: "FOTDataset", params: dict
    ) -> str:
        from repro import __version__

        name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
        raw = "|".join(
            (_FORMAT, __version__, name, _canon(params), dataset.fingerprint())
        )
        return hashlib.sha256(raw.encode()).hexdigest()

    def call(self, fn: Callable, dataset: "FOTDataset", **params: Any) -> Any:
        """``fn(dataset, **params)``, memoized on content."""
        key = self.key_for(fn, dataset, params)
        self._fp_keys.setdefault(dataset.fingerprint(), set()).add(key)
        hit, value = self._get(key)
        if hit:
            return value
        value = fn(dataset, **params)
        self._put(key, value)
        return value

    # ------------------------------------------------------------------
    def _get(self, key: str) -> Tuple[bool, Any]:
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return True, self._lru[key]
        if self.directory is not None:
            hit, value = self._disk_get(key)
            if hit:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._remember(key, value)
                return True, value
        self.stats.misses += 1
        return False, None

    def _disk_get(self, key: str) -> Tuple[bool, Any]:
        """One disk-tier lookup, tolerant of concurrent writers.

        A reader racing a writer's ``mkstemp`` + ``os.replace`` can see
        the entry missing or half-materialized for an instant, so a
        vanished file or a partial read is retried exactly once before
        being treated as a miss; persistent corruption counts as an
        error, persistent absence as a plain miss.
        """
        path = self._disk_path(key)
        for attempt in range(2):
            try:
                with open(path, "rb") as handle:
                    return True, pickle.load(handle)
            except FileNotFoundError:
                if attempt == 0:
                    continue
            except (EOFError, pickle.UnpicklingError):
                # Truncated/torn pickle: retry once (writer may have
                # finished the atomic replace by now), then give up.
                if attempt == 0:
                    continue
                self.stats.errors += 1
            except (OSError, pickle.PickleError, AttributeError,
                    ImportError, IndexError):
                self.stats.errors += 1
                break
        return False, None

    def _put(self, key: str, value: Any) -> None:
        self._remember(key, value)
        if self.directory is None:
            return
        path = self._disk_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except (OSError, pickle.PickleError, AttributeError, TypeError):
            # Unpicklable results (pickle raises PicklingError, but also
            # AttributeError/TypeError for locals and closures) or a
            # read-only disk degrade to memory-only caching rather than
            # failing the analysis.
            self.stats.errors += 1

    def _remember(self, key: str, value: Any) -> None:
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier; with ``disk=True`` also delete the
        on-disk entries (but not the directory itself).

        Tolerant of concurrent writers/clearers: entries (or the whole
        directory) vanishing mid-iteration are simply skipped.
        """
        self._lru.clear()
        self._fp_keys.clear()
        if disk and self.directory is not None and self.directory.exists():
            try:
                paths = sorted(self.directory.glob("*/*.pkl"))
            except OSError:
                paths = []
            for path in paths:
                with contextlib.suppress(OSError):
                    path.unlink()

    def invalidate(
        self, dataset: Union["FOTDataset", str], *, disk: bool = True
    ) -> int:
        """Evict every entry cached for ``dataset`` (or a raw dataset
        fingerprint) by this process.

        The streaming append path calls this when a live view is
        superseded by a compaction: content keying already guarantees
        *correctness* (the new view has a new fingerprint and misses),
        but without eviction the entries of dead views pin the LRU and
        the disk tier forever.  Returns the number of in-memory entries
        dropped.
        """
        fingerprint = (
            dataset if isinstance(dataset, str) else dataset.fingerprint()
        )
        keys = self._fp_keys.pop(fingerprint, set())
        removed = 0
        for key in keys:
            if self._lru.pop(key, None) is not None:
                removed += 1
            if disk and self.directory is not None:
                with contextlib.suppress(OSError):
                    self._disk_path(key).unlink()
        return removed

    def __len__(self) -> int:
        return len(self._lru)


__all__ = ["AnalysisCache", "CacheStats"]
