"""Execution engine: process-parallel shard execution and analysis
result caching.

* :mod:`repro.engine.parallel` — runs the per-data-center shards of a
  planned trace (:func:`repro.simulation.trace.plan_trace`) on a
  ``multiprocessing`` pool; bit-identical to serial execution because
  shard boundaries and seed streams never depend on ``jobs``.
* :mod:`repro.engine.cache` — :class:`AnalysisCache`, a content-keyed
  memo for analysis results over dataset views, with an in-memory LRU
  tier and an optional on-disk tier under ``.repro_cache/``.
"""

from repro.engine.cache import AnalysisCache, CacheStats
from repro.engine.parallel import run_shards

__all__ = ["AnalysisCache", "CacheStats", "run_shards"]
