"""Execution engine: self-tuning parallel shard execution, analysis
result caching, and structured run telemetry.

* :mod:`repro.engine.adaptive` — the execution planner: probes usable
  cores (affinity- and cgroup-aware), estimates per-shard cost, and
  picks serial or a sized pool so ``jobs="auto"`` is never slower than
  serial — including on 1-CPU CI.
* :mod:`repro.engine.parallel` — runs the per-data-center shards of a
  planned trace (:func:`repro.simulation.trace.plan_trace`) on a
  ``multiprocessing`` pool; bit-identical to serial execution because
  shard boundaries and seed streams never depend on the worker count
  or dispatch order.
* :mod:`repro.engine.cache` — :class:`AnalysisCache`, a content-keyed
  memo for analysis results over dataset views, with an in-memory LRU
  tier and an optional on-disk tier under ``.repro_cache/``.
* :mod:`repro.engine.telemetry` — frozen per-run/per-shard/per-stage
  telemetry documents with a stable JSON schema, consumed by the
  bench, ``fouryears telemetry`` and ``repro.serve`` ``/metrics``.
* :mod:`repro.engine.policy` — :class:`ExecutionPolicy`, the single
  value that carries every execution knob through :mod:`repro.api`.
"""

from repro.engine.adaptive import (
    CpuProbe,
    ExecutionPlan,
    plan_execution,
    probe_cpu_count,
)
from repro.engine.cache import AnalysisCache, CacheStats
from repro.engine.parallel import run_shards
from repro.engine.policy import DEFAULT_POLICY, ExecutionPolicy, coerce_jobs
from repro.engine.telemetry import (
    InMemoryTelemetrySink,
    JsonlTelemetrySink,
    PlanDecision,
    RunTelemetry,
    ShardTelemetry,
    StageTiming,
    TelemetrySink,
    read_telemetry,
)

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "CpuProbe",
    "DEFAULT_POLICY",
    "ExecutionPlan",
    "ExecutionPolicy",
    "InMemoryTelemetrySink",
    "JsonlTelemetrySink",
    "PlanDecision",
    "RunTelemetry",
    "ShardTelemetry",
    "StageTiming",
    "TelemetrySink",
    "coerce_jobs",
    "plan_execution",
    "probe_cpu_count",
    "read_telemetry",
    "run_shards",
]
