"""Self-tuning execution planner: let measured hardware pick the plan.

The sharded trace engine is bit-identical to serial for any worker
count, so *how* to execute is purely a performance decision — and one
that configuration used to make badly (``jobs=4`` on a 1-CPU bench
machine was ~1.3x slower than serial).  This module moves the decision
into the engine:

* :func:`probe_cpu_count` — how many cores this *process* may actually
  use: CPU affinity mask first, then the cgroup CPU quota (containers
  routinely advertise 64 ``os.cpu_count`` cores while capping the
  cgroup at 1), then ``os.cpu_count``.
* :func:`estimate_shard_costs` — per-IDC work estimate from shard row
  counts (servers dominate base-process sampling; injected events add
  linearly).
* :func:`calibrate_seconds_per_unit` — a cheap, cached timing probe
  that anchors abstract cost units to this machine's actual speed.
* :func:`plan_execution` — the decision: serial or a pool, how many
  workers, and in what order shards are dispatched (descending
  estimated cost ≈ longest-processing-time scheduling against the
  pool's shared task queue).

``jobs="auto"`` falls back to serial whenever parallelism cannot pay
for itself — one usable core, a single shard, or a workload whose
estimated serial time is smaller than the pool's own startup cost — so
the auto plan is never slower than serial, including on 1-CPU CI.  The
chosen plan and its reason are recorded in the run's
:class:`~repro.engine.telemetry.PlanDecision`, not printed to stderr.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.telemetry import PlanDecision

if TYPE_CHECKING:
    from repro.simulation.trace import ShardTask

#: Modes a plan can choose.
MODE_SERIAL = "serial"
MODE_PARALLEL = "parallel"

#: Estimated serial runs shorter than this never fork: the pool's own
#: startup would eat the saving.
MIN_PARALLEL_SECONDS = 2.0

#: Parallel must beat serial by this margin in the estimate before the
#: planner commits to it (estimates are rough; prefer the safe plan).
PARALLEL_ADVANTAGE = 0.85

#: Pool cost model, in seconds: one-time startup, per-worker fork cost,
#: per-shard dispatch/result-shipping cost.
POOL_STARTUP_SECONDS = 0.35
PER_WORKER_SECONDS = 0.05
PER_SHARD_SECONDS = 0.03

#: Injected events are cheap relative to base-process sampling over a
#: shard's servers; weight them accordingly in the cost proxy.
INJECTED_EVENT_WEIGHT = 0.1

#: Cost-units one probe-kernel-second corresponds to.  Anchored on the
#: 290k-ticket bench machine: the probe kernel took ~20 ms where serial
#: generation of the ~230k-server fleet took ~20.5 s, i.e. one probe
#: second ≈ 230_000 * 0.02 / 20.5 ≈ 225 server-units of simulation.
UNITS_PER_PROBE_SECOND = 225.0

#: Cgroup CPU-quota files, v2 then v1.
_CGROUP_V2_CPU_MAX = "/sys/fs/cgroup/cpu.max"
_CGROUP_V1_QUOTA = "/sys/fs/cgroup/cpu/cpu.cfs_quota_us"
_CGROUP_V1_PERIOD = "/sys/fs/cgroup/cpu/cpu.cfs_period_us"


@dataclass(frozen=True)
class CpuProbe:
    """Usable-core count plus where the number came from."""

    count: int
    source: str


def _cgroup_quota_cpus() -> Optional[float]:
    """The cgroup CPU quota in fractional CPUs, or ``None`` when
    uncapped/unreadable."""
    try:  # cgroup v2: "<quota> <period>" or "max <period>"
        quota_text, period_text = (
            Path(_CGROUP_V2_CPU_MAX).read_text(encoding="ascii").split()
        )
        if quota_text != "max":
            return float(quota_text) / float(period_text)
        return None
    except (OSError, ValueError):
        pass
    try:  # cgroup v1: quota in us over period in us; -1 means uncapped
        quota = int(Path(_CGROUP_V1_QUOTA).read_text(encoding="ascii"))
        period = int(Path(_CGROUP_V1_PERIOD).read_text(encoding="ascii"))
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def probe_cpu_count() -> CpuProbe:
    """Cores this process may actually use, cgroup- and affinity-aware.

    Mirrors the py3.13 ``os.process_cpu_count`` behaviour on older
    runtimes (affinity mask), then applies the container CPU quota on
    top — a pod pinned to one core must plan like a 1-CPU machine no
    matter what the node's ``os.cpu_count`` says.
    """
    process_count = getattr(os, "process_cpu_count", None)
    if process_count is not None:  # pragma: no cover - py3.13+ only
        count = int(process_count() or 1)
        source = "process_cpu_count"
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
        source = "sched_getaffinity"
    else:  # pragma: no cover - platforms without affinity syscalls
        count = int(os.cpu_count() or 1)
        source = "cpu_count"
    quota = _cgroup_quota_cpus()
    if quota is not None and int(quota) < count:
        count = int(quota)
        source = "cgroup_quota"
    return CpuProbe(count=max(1, count), source=source)


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
def estimate_shard_costs(tasks: Sequence["ShardTask"]) -> Tuple[float, ...]:
    """Per-shard work estimate in abstract *server units*.

    Base-process sampling and the FMS pipeline both scale with the
    shard's server count; injected events (storms, pairs, flaps) add a
    small linear term.  The estimate only needs to rank shards and to
    land the total within an order of magnitude — the plan falls back
    to serial long before a bad estimate could make parallel a loss.
    """
    return tuple(
        float(len(task.rows)) + INJECTED_EVENT_WEIGHT * float(len(task.injected))
        for task in tasks
    )


_CALIBRATED_SECONDS_PER_UNIT: Optional[float] = None


def _probe_kernel() -> float:
    """One timed pass of a small, allocation-light numpy workload."""
    rng = np.random.default_rng(0)
    values = rng.standard_normal(1 << 16)
    start = time.perf_counter()
    order = np.argsort(values, kind="stable")
    checksum = float(np.sort(values[order]).sum())
    elapsed = time.perf_counter() - start
    # Consume the result so the work cannot be elided.
    return elapsed if np.isfinite(checksum) else elapsed


def calibrate_seconds_per_unit(*, refresh: bool = False) -> float:
    """Seconds one abstract cost unit costs on *this* machine.

    Runs the probe kernel (best of three, ~tens of milliseconds total)
    once per process and caches the answer; ``refresh=True`` re-probes.
    """
    global _CALIBRATED_SECONDS_PER_UNIT
    if _CALIBRATED_SECONDS_PER_UNIT is None or refresh:
        best = min(_probe_kernel() for _ in range(3))
        _CALIBRATED_SECONDS_PER_UNIT = max(best, 1e-6) / UNITS_PER_PROBE_SECOND
    return _CALIBRATED_SECONDS_PER_UNIT


def _lpt_makespan(costs: Sequence[float], jobs: int) -> float:
    """Longest-processing-time makespan of ``costs`` over ``jobs`` bins."""
    bins = [0.0] * max(1, jobs)
    for cost in sorted(costs, reverse=True):
        bins[bins.index(min(bins))] += cost
    return max(bins)


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionPlan:
    """A committed execution decision for one set of shard tasks.

    ``dispatch_order`` lists task indices in the order they should be
    handed to the pool; under the ``cost`` strategy that is descending
    estimated cost, which approximates LPT scheduling against the
    pool's shared queue.  Results are index-sorted afterwards, so the
    dispatch order never affects output (bit-identity holds by
    construction).
    """

    mode: str
    jobs: int
    dispatch_order: Tuple[int, ...]
    costs: Tuple[float, ...]
    decision: PlanDecision

    @property
    def parallel(self) -> bool:
        return self.mode == MODE_PARALLEL

    def queue_depth_at(self, dispatch_position: int) -> int:
        """Shards still waiting behind the one dispatched at
        ``dispatch_position`` once it starts."""
        return max(0, len(self.dispatch_order) - dispatch_position - self.jobs)


def _requested_label(requested: Union[int, str]) -> str:
    return requested if isinstance(requested, str) else str(int(requested))


def plan_execution(
    tasks: Sequence["ShardTask"],
    *,
    requested: Union[int, str] = "auto",
    shard_strategy: str = "cost",
    probe: Optional[CpuProbe] = None,
    seconds_per_unit: Optional[float] = None,
) -> ExecutionPlan:
    """Decide how to execute ``tasks``: serial, or a pool of N workers.

    ``requested`` is the policy's job request: ``"serial"`` forces
    serial, an ``int`` is an operator override (still degraded to
    serial on a 1-core machine, where a pool can only lose), and
    ``"auto"`` lets the cost model choose.  The returned plan's
    :class:`~repro.engine.telemetry.PlanDecision` records the choice
    and the reason.
    """
    cpu = probe if probe is not None else probe_cpu_count()
    costs = estimate_shard_costs(tasks)
    n_tasks = len(tasks)

    if shard_strategy == "cost":
        order = tuple(
            int(i)
            for i in sorted(range(n_tasks), key=lambda i: (-costs[i], i))
        )
    elif shard_strategy == "count":
        order = tuple(range(n_tasks))
    else:
        raise ValueError(
            f"unknown shard_strategy {shard_strategy!r}; expected 'cost' or 'count'"
        )

    unit = (
        seconds_per_unit
        if seconds_per_unit is not None
        else calibrate_seconds_per_unit()
    )
    est_serial = sum(costs) * unit

    def decide(mode: str, jobs: int, reason: str) -> ExecutionPlan:
        est_parallel = est_serial
        if jobs > 1:
            est_parallel = (
                POOL_STARTUP_SECONDS
                + PER_WORKER_SECONDS * jobs
                + PER_SHARD_SECONDS * n_tasks
                + _lpt_makespan(costs, jobs) * unit
            )
        return ExecutionPlan(
            mode=mode,
            jobs=jobs,
            dispatch_order=order,
            costs=costs,
            decision=PlanDecision(
                requested_jobs=_requested_label(requested),
                mode=mode,
                jobs=jobs,
                reason=reason,
                probed_cpus=cpu.count,
                cpu_source=cpu.source,
                shard_strategy=shard_strategy,
                n_shards=n_tasks,
                estimated_serial_seconds=est_serial,
                estimated_parallel_seconds=est_parallel,
            ),
        )

    if requested == "serial":
        return decide(MODE_SERIAL, 1, "policy requested serial execution")
    if isinstance(requested, int):
        if requested <= 1:
            return decide(MODE_SERIAL, 1, f"policy requested jobs={requested}")
        if n_tasks <= 1:
            return decide(
                MODE_SERIAL, 1,
                f"requested jobs={requested} but the plan has "
                f"{n_tasks} shard(s); nothing to parallelize",
            )
        if cpu.count <= 1:
            return decide(
                MODE_SERIAL, 1,
                f"requested jobs={requested} but only 1 usable CPU "
                f"({cpu.source}); a pool would only add overhead",
            )
        jobs = min(requested, n_tasks)
        return decide(
            MODE_PARALLEL, jobs, f"policy requested jobs={requested}"
        )
    if requested != "auto":
        raise ValueError(
            f"unknown jobs request {requested!r}; expected 'auto', 'serial' "
            "or an int"
        )

    # --- auto -----------------------------------------------------------
    if n_tasks <= 1:
        return decide(MODE_SERIAL, 1, "single shard; nothing to parallelize")
    if cpu.count <= 1:
        return decide(
            MODE_SERIAL, 1,
            f"1 usable CPU ({cpu.source}); a pool would only add overhead",
        )
    if est_serial < MIN_PARALLEL_SECONDS:
        return decide(
            MODE_SERIAL, 1,
            f"estimated serial run {est_serial:.2f}s is below the "
            f"{MIN_PARALLEL_SECONDS:.0f}s parallel payoff threshold",
        )
    jobs = min(cpu.count, n_tasks)
    candidate = decide(
        MODE_PARALLEL, jobs,
        f"estimated parallel win on {cpu.count} CPUs ({cpu.source})",
    )
    if (
        candidate.decision.estimated_parallel_seconds
        > est_serial * PARALLEL_ADVANTAGE
    ):
        return decide(
            MODE_SERIAL, 1,
            f"estimated pool overhead eats the win "
            f"({candidate.decision.estimated_parallel_seconds:.2f}s parallel "
            f"vs {est_serial:.2f}s serial)",
        )
    return candidate


__all__ = [
    "MODE_SERIAL",
    "MODE_PARALLEL",
    "MIN_PARALLEL_SECONDS",
    "CpuProbe",
    "ExecutionPlan",
    "probe_cpu_count",
    "estimate_shard_costs",
    "calibrate_seconds_per_unit",
    "plan_execution",
]
