"""`ExecutionPolicy`: one object that says *how* the toolkit executes.

Every facade verb used to grow its own execution knobs (``jobs=`` on
``simulate``, ``cache=`` on ``analyze``/``full_report``) while having
no way to express the rest — telemetry, shard strategy.  The policy
bundles all of them into a single frozen value threaded through
:mod:`repro.api` and the CLI::

    import repro

    policy = repro.ExecutionPolicy(jobs="auto", cache=repro.AnalysisCache())
    trace = repro.simulate(scale=0.05, seed=7, policy=policy)
    report = repro.full_report(trace.dataset, policy=policy)

Fields:

* ``jobs`` — ``"auto"`` (default: the adaptive planner picks), an
  ``int`` worker-count override, or ``"serial"``.
* ``cache`` — an :class:`~repro.engine.cache.AnalysisCache` threaded
  through the analysis verbs, or ``None``.
* ``telemetry_sink`` — anything with ``record(RunTelemetry)``; every
  engine run executed under the policy reports one document to it.
* ``shard_strategy`` — ``"cost"`` (default: dispatch shards by
  descending estimated cost) or ``"count"`` (legacy index order).

The legacy ``jobs=``/``cache=`` kwargs keep working on the facade via
shims that emit :class:`DeprecationWarning` pointing here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Union

from repro.engine.cache import AnalysisCache
from repro.engine.telemetry import RunTelemetry, TelemetrySink

#: Valid string values of :attr:`ExecutionPolicy.jobs`.
JOBS_AUTO = "auto"
JOBS_SERIAL = "serial"

#: Valid values of :attr:`ExecutionPolicy.shard_strategy`.
SHARD_STRATEGIES = ("cost", "count")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How engine work should execute; see the module docstring."""

    jobs: Union[int, str] = JOBS_AUTO
    cache: Optional[AnalysisCache] = None
    telemetry_sink: Optional[TelemetrySink] = None
    shard_strategy: str = "cost"

    def __post_init__(self) -> None:
        jobs = self.jobs
        if isinstance(jobs, bool) or (
            not isinstance(jobs, int) and jobs not in (JOBS_AUTO, JOBS_SERIAL)
        ):
            raise ValueError(
                f"ExecutionPolicy.jobs must be 'auto', 'serial' or an int, "
                f"got {jobs!r}"
            )
        if isinstance(jobs, int) and jobs < 1:
            raise ValueError(
                f"ExecutionPolicy.jobs must be >= 1 when numeric, got {jobs}"
            )
        if self.shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"ExecutionPolicy.shard_strategy must be one of "
                f"{SHARD_STRATEGIES}, got {self.shard_strategy!r}"
            )
        if self.telemetry_sink is not None and not callable(
            getattr(self.telemetry_sink, "record", None)
        ):
            raise ValueError(
                "ExecutionPolicy.telemetry_sink must provide a "
                "record(RunTelemetry) method"
            )

    # ------------------------------------------------------------------
    def with_(self, **changes: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    def record(self, run: RunTelemetry) -> None:
        """Hand one finished run document to the sink, if any."""
        if self.telemetry_sink is not None:
            self.telemetry_sink.record(run)


#: The default policy: adaptive jobs, no cache, no telemetry.
DEFAULT_POLICY = ExecutionPolicy()


def coerce_jobs(value: Union[int, str]) -> Union[int, str]:
    """Normalize a user-supplied jobs value (CLI strings included).

    ``"4"`` becomes ``4``; ``"auto"``/``"serial"`` pass through;
    anything else raises ``ValueError`` with the accepted forms.
    """
    if isinstance(value, bool):
        raise ValueError(f"jobs must be 'auto', 'serial' or an int, got {value!r}")
    if isinstance(value, int):
        return value
    text = value.strip().lower()
    if text in (JOBS_AUTO, JOBS_SERIAL):
        return text
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"jobs must be 'auto', 'serial' or an int, got {value!r}"
        ) from None


__all__ = [
    "ExecutionPolicy",
    "DEFAULT_POLICY",
    "JOBS_AUTO",
    "JOBS_SERIAL",
    "SHARD_STRATEGIES",
    "coerce_jobs",
]
