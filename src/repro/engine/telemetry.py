"""Structured execution telemetry: what ran, where time went, and why.

Every engine run — trace generation, a facade ``analyze``, a cached
``full_report`` — can emit one :class:`RunTelemetry` document: the plan
the adaptive planner chose (and *why*), per-stage wall/CPU timings,
per-shard execution records and a cache-counter snapshot.  The
dataclasses are frozen and serialize to a stable JSON schema
(:data:`TELEMETRY_SCHEMA_VERSION`), so the bench, the ingestion
service's ``/metrics`` document and the ``fouryears telemetry``
subcommand all read the same shape.

Durations are monotonic (``time.perf_counter`` wall, the process-wide
``time.process_time`` CPU clock) — telemetry carries *no* wall-clock
timestamps, keeping the deterministic packages free of ``time.time()``
reads.  Telemetry is observational only: recording it never changes
what an engine run computes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

try:  # pragma: no cover - import shape differs below py3.8 only
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    from typing_extensions import Protocol, runtime_checkable  # type: ignore

#: Version of the JSON document layout.  Bump on any key rename or
#: semantic change; readers refuse documents from a newer schema.
TELEMETRY_SCHEMA_VERSION = 1

#: ``RunTelemetry.kind`` values.
KIND_TRACE = "trace"
KIND_ANALYZE = "analyze"
KIND_REPORT = "report"
KIND_COMPARE = "compare"

_KINDS = frozenset({KIND_TRACE, KIND_ANALYZE, KIND_REPORT, KIND_COMPARE})


class TelemetryError(ValueError):
    """A telemetry document could not be decoded."""


@dataclass(frozen=True)
class StageTiming:
    """One named stage of a run (``plan`` / ``execute`` / ``assemble`` /
    a report section / ...)."""

    name: str
    wall_seconds: float
    cpu_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }


@dataclass(frozen=True)
class ShardTelemetry:
    """One executed trace shard (one data center).

    ``estimated_cost`` is the planner's pre-run cost estimate in
    abstract work units; ``dispatch_order`` is the position at which the
    shard was handed to the pool (cost-ordered under the ``cost``
    strategy); ``queue_depth`` is how many shards were still waiting
    behind it at dispatch time.
    """

    index: int
    idc: str
    n_servers: int
    n_tickets: int
    estimated_cost: float
    dispatch_order: int
    queue_depth: int
    wall_seconds: float
    cpu_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "idc": self.idc,
            "n_servers": self.n_servers,
            "n_tickets": self.n_tickets,
            "estimated_cost": self.estimated_cost,
            "dispatch_order": self.dispatch_order,
            "queue_depth": self.queue_depth,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }


@dataclass(frozen=True)
class PlanDecision:
    """The plan the adaptive planner chose, and why.

    ``requested_jobs`` is the policy's verbatim request (``"auto"``,
    ``"serial"`` or a digit string); ``jobs`` is the effective worker
    count (1 when ``mode`` is ``"serial"``).  ``reason`` is a short
    human-readable sentence — the replacement for the old single-CPU
    ``RuntimeWarning``, recorded instead of printed.
    """

    requested_jobs: str
    mode: str  # "serial" | "parallel"
    jobs: int
    reason: str
    probed_cpus: int
    cpu_source: str
    shard_strategy: str
    n_shards: int
    estimated_serial_seconds: float
    estimated_parallel_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requested_jobs": self.requested_jobs,
            "mode": self.mode,
            "jobs": self.jobs,
            "reason": self.reason,
            "probed_cpus": self.probed_cpus,
            "cpu_source": self.cpu_source,
            "shard_strategy": self.shard_strategy,
            "n_shards": self.n_shards,
            "estimated_serial_seconds": self.estimated_serial_seconds,
            "estimated_parallel_seconds": self.estimated_parallel_seconds,
        }


@dataclass(frozen=True)
class RunTelemetry:
    """One engine run, self-describing and JSON-stable.

    ``plan``/``shards`` are populated for trace generation; analysis
    runs carry per-section stages and a ``cache`` counter snapshot
    instead.  ``to_json``/``from_json`` round-trip exactly.
    """

    kind: str
    stages: Tuple[StageTiming, ...] = ()
    plan: Optional[PlanDecision] = None
    shards: Tuple[ShardTelemetry, ...] = ()
    cache: Optional[Mapping[str, int]] = None
    schema_version: int = TELEMETRY_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise TelemetryError(
                f"unknown telemetry kind {self.kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )

    # ------------------------------------------------------------------
    @property
    def total_wall_seconds(self) -> float:
        for stage in self.stages:
            if stage.name == "total":
                return stage.wall_seconds
        return sum(s.wall_seconds for s in self.stages)

    def stage(self, name: str) -> Optional[StageTiming]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "plan": None if self.plan is None else self.plan.to_dict(),
            "stages": [s.to_dict() for s in self.stages],
            "shards": [s.to_dict() for s in self.shards],
            "cache": None if self.cache is None else dict(self.cache),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunTelemetry":
        try:
            version = int(doc["schema_version"])
            if version > TELEMETRY_SCHEMA_VERSION:
                raise TelemetryError(
                    f"telemetry schema v{version} is newer than this "
                    f"reader (v{TELEMETRY_SCHEMA_VERSION})"
                )
            plan_doc = doc.get("plan")
            cache_doc = doc.get("cache")
            return cls(
                kind=str(doc["kind"]),
                stages=tuple(
                    StageTiming(
                        name=str(s["name"]),
                        wall_seconds=float(s["wall_seconds"]),
                        cpu_seconds=float(s["cpu_seconds"]),
                    )
                    for s in doc["stages"]
                ),
                plan=(
                    None
                    if plan_doc is None
                    else PlanDecision(
                        requested_jobs=str(plan_doc["requested_jobs"]),
                        mode=str(plan_doc["mode"]),
                        jobs=int(plan_doc["jobs"]),
                        reason=str(plan_doc["reason"]),
                        probed_cpus=int(plan_doc["probed_cpus"]),
                        cpu_source=str(plan_doc["cpu_source"]),
                        shard_strategy=str(plan_doc["shard_strategy"]),
                        n_shards=int(plan_doc["n_shards"]),
                        estimated_serial_seconds=float(
                            plan_doc["estimated_serial_seconds"]
                        ),
                        estimated_parallel_seconds=float(
                            plan_doc["estimated_parallel_seconds"]
                        ),
                    )
                ),
                shards=tuple(
                    ShardTelemetry(
                        index=int(s["index"]),
                        idc=str(s["idc"]),
                        n_servers=int(s["n_servers"]),
                        n_tickets=int(s["n_tickets"]),
                        estimated_cost=float(s["estimated_cost"]),
                        dispatch_order=int(s["dispatch_order"]),
                        queue_depth=int(s["queue_depth"]),
                        wall_seconds=float(s["wall_seconds"]),
                        cpu_seconds=float(s["cpu_seconds"]),
                    )
                    for s in doc["shards"]
                ),
                cache=(None if cache_doc is None else dict(cache_doc)),
                schema_version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, TelemetryError):
                raise
            raise TelemetryError(f"malformed telemetry document: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "RunTelemetry":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"telemetry is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise TelemetryError("telemetry document must be a JSON object")
        return cls.from_dict(doc)

    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, str]]:
        """Headline (key, value) rows for table rendering."""
        rows: List[Tuple[str, str]] = [("kind", self.kind)]
        if self.plan is not None:
            rows.extend(
                [
                    ("plan", f"{self.plan.mode} (jobs={self.plan.jobs})"),
                    ("reason", self.plan.reason),
                    (
                        "cpus",
                        f"{self.plan.probed_cpus} ({self.plan.cpu_source})",
                    ),
                    ("shards", str(self.plan.n_shards)),
                ]
            )
        for stage in self.stages:
            rows.append(
                (
                    f"stage:{stage.name}",
                    f"{stage.wall_seconds:.3f}s wall / "
                    f"{stage.cpu_seconds:.3f}s cpu",
                )
            )
        if self.cache is not None:
            hits = int(self.cache.get("hits", 0))
            misses = int(self.cache.get("misses", 0))
            looked = hits + misses
            rate = hits / looked if looked else 0.0
            rows.append(("cache", f"{hits}/{looked} hits ({rate:.0%})"))
        return rows


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
@runtime_checkable
class TelemetrySink(Protocol):
    """Anything that accepts finished :class:`RunTelemetry` documents."""

    def record(self, run: RunTelemetry) -> None:
        """Accept one finished run document."""
        ...  # pragma: no cover - protocol body


@dataclass
class InMemoryTelemetrySink:
    """Collects run documents in order; the default sink for tests and
    the ingestion service's ``/metrics`` surface."""

    runs: List[RunTelemetry] = field(default_factory=list)

    def record(self, run: RunTelemetry) -> None:
        self.runs.append(run)

    @property
    def last(self) -> Optional[RunTelemetry]:
        return self.runs[-1] if self.runs else None

    def last_of(self, kind: str) -> Optional[RunTelemetry]:
        for run in reversed(self.runs):
            if run.kind == kind:
                return run
        return None


@dataclass
class JsonlTelemetrySink:
    """Appends one JSON document per run to a ``.jsonl`` file.

    The file is append-only so several runs (e.g. a simulate followed
    by a report) accumulate; ``fouryears telemetry`` reads it back.
    """

    path: Union[str, Path]

    def record(self, run: RunTelemetry) -> None:
        target = Path(self.path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("a", encoding="utf-8") as handle:
            handle.write(run.to_json() + "\n")


def read_telemetry(path: Union[str, Path]) -> List[RunTelemetry]:
    """Read every run document from a telemetry ``.jsonl`` file."""
    runs: List[RunTelemetry] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            runs.append(RunTelemetry.from_json(line))
        except TelemetryError as exc:
            raise TelemetryError(f"{path}:{lineno}: {exc}") from exc
    return runs


# ----------------------------------------------------------------------
# schema self-check (wired into the CI lint job)
# ----------------------------------------------------------------------
def _sample_run() -> RunTelemetry:
    return RunTelemetry(
        kind=KIND_TRACE,
        plan=PlanDecision(
            requested_jobs="auto",
            mode="parallel",
            jobs=2,
            reason="sample",
            probed_cpus=4,
            cpu_source="sched_getaffinity",
            shard_strategy="cost",
            n_shards=3,
            estimated_serial_seconds=1.5,
            estimated_parallel_seconds=0.9,
        ),
        stages=(
            StageTiming("plan", 0.1, 0.1),
            StageTiming("execute", 1.0, 1.9),
            StageTiming("assemble", 0.05, 0.05),
            StageTiming("total", 1.15, 2.05),
        ),
        shards=(
            ShardTelemetry(0, "dc00", 100, 1200, 100.0, 1, 1, 0.5, 0.5),
            ShardTelemetry(1, "dc01", 140, 1700, 140.0, 0, 2, 0.6, 0.6),
            ShardTelemetry(2, "dc02", 80, 900, 80.0, 2, 0, 0.4, 0.4),
        ),
        cache={"hits": 3, "misses": 1},
    )


def schema_selfcheck() -> None:
    """Assert the telemetry schema round-trips exactly.

    Raises :class:`TelemetryError` (or ``AssertionError``) on any
    drift between the dataclasses and the JSON document layout.  Run
    in CI next to reprolint: ``python -c "from repro.engine import
    telemetry; telemetry.schema_selfcheck()"``.
    """
    sample = _sample_run()
    decoded = RunTelemetry.from_json(sample.to_json())
    if decoded != sample:
        raise TelemetryError("telemetry schema does not round-trip")
    expected_keys = {"schema_version", "kind", "plan", "stages", "shards", "cache"}
    if set(sample.to_dict()) != expected_keys:
        raise TelemetryError(
            f"telemetry top-level keys drifted: {sorted(sample.to_dict())}"
        )
    empty = RunTelemetry(kind=KIND_ANALYZE)
    if RunTelemetry.from_json(empty.to_json()) != empty:
        raise TelemetryError("empty telemetry document does not round-trip")
    # Frozen means frozen: documents can be shared across threads.
    for cls in (RunTelemetry, PlanDecision, StageTiming, ShardTelemetry):
        params = getattr(cls, "__dataclass_params__")
        if not params.frozen:
            raise TelemetryError(f"{cls.__name__} must be a frozen dataclass")


_ = dataclasses  # noqa: F841 - re-exported for sinks built on replace()

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "KIND_TRACE",
    "KIND_ANALYZE",
    "KIND_REPORT",
    "KIND_COMPARE",
    "TelemetryError",
    "StageTiming",
    "ShardTelemetry",
    "PlanDecision",
    "RunTelemetry",
    "TelemetrySink",
    "InMemoryTelemetrySink",
    "JsonlTelemetrySink",
    "read_telemetry",
    "schema_selfcheck",
]
