"""Content-addressed binary columnar persistence with mmap zero-parse load.

Text formats (``.jsonl`` / ``.csv``) pay a per-ticket parse cost on
every open — 11.7s of the 14s 1M-ticket bench total was CSV/JSONL
parsing.  This module stores a :class:`~repro.core.columns.ColumnStore`
*as it is laid out in memory*, so :func:`load_columnar` memory-maps the
column bytes instead of parsing them and a dataset opens in
milliseconds regardless of size.

Layout (a ``<name>.fourcol`` directory)::

    dataset.fourcol/
        manifest.json                 # format/version/schema, shards[]
        blobs/
            <sha256-of-payload>.bin   # content-addressed, immutable

Every blob is named by the SHA-256 of its payload, so identical columns
share storage across shards and the manifest's blob hashes double as
the dataset's content identity: :func:`save_columnar` records the
store's :func:`~repro.core.columns.compute_fingerprint` in the
manifest, and :func:`load_columnar` pre-seeds the loaded store's
fingerprint memo from it — warm :class:`~repro.engine.cache.
AnalysisCache` hits therefore never re-hash column bytes on open.

Per-column encodings (fixed by :data:`NUMERIC_DTYPES` /
:data:`VARSTR_COLUMNS` / :data:`JSONL_COLUMNS`, all little-endian):

* **numeric** — raw dtype bytes, memory-mapped read-only on load;
* **varstr**  — an ``int64`` offsets blob plus a concatenated UTF-8
  data blob (the per-ticket ``hostnames`` / ``error_details`` strings),
  decoded *lazily* on first column access;
* **jsonl**   — one JSON object per row (the free-form ``details``
  dicts), also decoded lazily;
* interned string **tables** — one JSON-array blob per table (small).

Writes are crash-safe in the dead-letter store's file-before-manifest
style: every blob is staged to a temp file and atomically renamed
before the manifest references it, and the manifest itself is replaced
atomically last, so a reader never observes a manifest pointing at a
missing or truncated blob.  Appends (:func:`append_columnar`) add a new
shard's blobs first and rewrite the manifest once.

Failure modes raise typed :class:`StorageError` subclasses (all
``ValueError``) instead of numpy shape garbage: a foreign or unreadable
directory is a :class:`StorageFormatError`, a manifest written by a
different format version or column schema is a
:class:`StorageVersionError`, and a missing/truncated/corrupt blob is a
:class:`StorageIntegrityError`.  Size checks run on every load;
``verify=True`` additionally re-hashes every blob against its
content address.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.columns import (
    ACTION_ORDER,
    CATEGORY_ORDER,
    COLUMN_NAMES,
    COMPONENT_ORDER,
    SOURCE_ORDER,
    TABLE_NAMES,
    ColumnStore,
)
from repro.core.dataset import FOTDataset

#: Manifest ``format`` field; anything else is not ours.
FORMAT_NAME = "fouryears-columnar"

#: Bump on any incompatible layout change.
FORMAT_VERSION = 1

#: Conventional directory suffix the :mod:`repro.core.io` front door
#: dispatches on.
COLUMNAR_SUFFIX = ".fourcol"

MANIFEST_NAME = "manifest.json"
BLOBS_DIR = "blobs"

#: Numeric/categorical column -> on-disk little-endian dtype (matches
#: the in-memory dtypes of :class:`~repro.core.columns.ColumnBuilder`).
NUMERIC_DTYPES: Dict[str, str] = {
    "fot_ids": "<i8",
    "host_ids": "<i8",
    "error_times": "<f8",
    "op_times": "<f8",
    "deployed_ats": "<f8",
    "positions": "<i4",
    "device_slots": "<i4",
    "category_codes": "|i1",
    "component_codes": "|i1",
    "source_codes": "|i1",
    "action_codes": "|i1",
    "idc_codes": "<i4",
    "product_line_codes": "<i4",
    "error_type_codes": "<i4",
    "operator_id_codes": "<i4",
}

#: Per-ticket string columns stored as offsets + UTF-8 data blobs.
VARSTR_COLUMNS: Tuple[str, ...] = ("hostnames", "error_details")

#: Free-form object columns stored as JSON lines.
JSONL_COLUMNS: Tuple[str, ...] = ("details",)

_OFFSETS_DTYPE = "<i8"


class StorageError(ValueError):
    """Base for every defect the columnar storage layer reports."""


class StorageFormatError(StorageError):
    """The path is not a readable columnar dataset (no/foreign/broken
    manifest, unknown column encoding)."""


class StorageVersionError(StorageError):
    """The manifest was written by an incompatible format version or
    column schema (enum orders, dtypes, column set)."""


class StorageIntegrityError(StorageError):
    """A blob named by the manifest is missing, truncated, or fails its
    content-address check."""


def schema_fingerprint() -> str:
    """Hash of everything that fixes the byte-level meaning of a saved
    dataset: the format version, every column's name + encoding +
    dtype, the interned table names, and the categorical enum orders
    (codes index into them).  Changing any of these invalidates old
    files with a clean :class:`StorageVersionError` instead of silently
    misreading codes."""
    digest = hashlib.sha256()
    digest.update(f"{FORMAT_NAME}/{FORMAT_VERSION}".encode())
    for name in COLUMN_NAMES:
        if name in NUMERIC_DTYPES:
            spec = f"numeric:{NUMERIC_DTYPES[name]}"
        elif name in VARSTR_COLUMNS:
            spec = f"varstr:{_OFFSETS_DTYPE}"
        else:
            spec = "jsonl"
        digest.update(f";{name}={spec}".encode())
    for table_name in TABLE_NAMES:
        digest.update(f";table={table_name}".encode())
    for order in (CATEGORY_ORDER, COMPONENT_ORDER, SOURCE_ORDER, ACTION_ORDER):
        digest.update(";".join(member.value for member in order).encode())
        digest.update(b"|")
    return digest.hexdigest()


def is_columnar(path: Union[str, Path]) -> bool:
    """Whether ``path`` holds a columnar dataset (has a manifest)."""
    return (Path(path) / MANIFEST_NAME).is_file()


# ----------------------------------------------------------------------
# blob plumbing
# ----------------------------------------------------------------------
def _write_blob(blobs_dir: Path, payload: bytes) -> Dict[str, object]:
    """Store ``payload`` under its content address (atomic write);
    returns the manifest reference ``{"blob": <hex>, "nbytes": <int>}``.
    An existing blob with the same address is reused, never rewritten —
    identical columns across shards share one file."""
    digest = hashlib.sha256(payload).hexdigest()
    path = blobs_dir / f"{digest}.bin"
    if not path.exists():
        fd, tmp = tempfile.mkstemp(
            dir=str(blobs_dir), prefix=digest[:8] + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
    return {"blob": digest, "nbytes": len(payload)}


def _blob_ref(spec: Dict[str, Any], key: str, what: str) -> Tuple[str, int]:
    """Pull a ``(digest, nbytes)`` reference out of a manifest entry."""
    try:
        digest = str(spec[key])
        nbytes = int(spec[key.replace("blob", "nbytes")])
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(
            f"manifest entry for {what} is malformed: {spec!r}"
        ) from exc
    return digest, nbytes


def _blob_path(root: Path, digest: str, nbytes: int, what: str) -> Path:
    """Resolve a blob reference, size-checking it (cheap ``stat``) so a
    truncated or missing file fails with a typed error at open time
    rather than as a numpy reshape error mid-analysis."""
    path = root / BLOBS_DIR / f"{digest}.bin"
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        raise StorageIntegrityError(
            f"{what}: blob {digest[:12]}… named by the manifest is missing"
        ) from None
    if size != nbytes:
        raise StorageIntegrityError(
            f"{what}: blob {digest[:12]}… is {size} bytes on disk but the "
            f"manifest recorded {nbytes} (truncated or corrupt)"
        )
    return path


def _verify_blob(path: Path, digest: str, what: str) -> None:
    actual = hashlib.sha256(path.read_bytes()).hexdigest()
    if actual != digest:
        raise StorageIntegrityError(
            f"{what}: blob content hash {actual[:12]}… does not match its "
            f"address {digest[:12]}… (bit rot or tampering)"
        )


# ----------------------------------------------------------------------
# column encodings
# ----------------------------------------------------------------------
def _encode_varstr(column: np.ndarray) -> Tuple[bytes, bytes]:
    encoded = [str(value).encode("utf-8") for value in column]
    offsets = np.zeros(len(encoded) + 1, dtype=np.dtype(_OFFSETS_DTYPE))
    if encoded:
        lengths = np.fromiter(
            (len(chunk) for chunk in encoded), dtype=np.int64, count=len(encoded)
        )
        np.cumsum(lengths, out=offsets[1:])
    return offsets.tobytes(), b"".join(encoded)


def _decode_varstr(offsets_path: Path, data_path: Path, n: int, what: str) -> np.ndarray:
    offsets = np.fromfile(offsets_path, dtype=np.dtype(_OFFSETS_DTYPE))
    data = data_path.read_bytes()
    if offsets.size != n + 1 or (n and offsets[0] != 0):
        raise StorageIntegrityError(
            f"{what}: offsets blob has {offsets.size} entries for {n} rows"
        )
    if n and (int(offsets[-1]) != len(data) or np.any(np.diff(offsets) < 0)):
        raise StorageIntegrityError(
            f"{what}: offsets do not tile the {len(data)}-byte data blob"
        )
    out = np.empty(n, dtype=object)
    bounds = offsets.tolist()
    for i in range(n):
        out[i] = data[bounds[i]:bounds[i + 1]].decode("utf-8")
    out.setflags(write=False)
    return out


def _encode_jsonl(column: np.ndarray) -> bytes:
    lines = [
        json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)
        for value in column
    ]
    text = "\n".join(lines)
    if lines:
        text += "\n"
    return text.encode("utf-8")


def _decode_jsonl(path: Path, n: int, what: str) -> np.ndarray:
    out = np.empty(n, dtype=object)
    count = 0
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if count >= n:
                    count += 1
                    break
                out[count] = json.loads(line)
                count += 1
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageIntegrityError(f"{what}: row {count} is not JSON: {exc}") from exc
    if count != n:
        raise StorageIntegrityError(f"{what}: expected {n} JSON rows, found {count}")
    out.setflags(write=False)
    return out


# ----------------------------------------------------------------------
# save / append
# ----------------------------------------------------------------------
def _view_columns(
    dataset: FOTDataset,
) -> Tuple[int, Dict[str, np.ndarray], Dict[str, Tuple[str, ...]]]:
    """Materialize the column values of a dataset *view* (no copy for a
    full view) plus the backing store's interned tables (codes stay
    valid against the full tables, so views need no re-interning)."""
    store = dataset.store
    indices = None if dataset._indices is None else dataset._gindices()
    arrays: Dict[str, np.ndarray] = {}
    for name in COLUMN_NAMES:
        base = store.column(name)
        arrays[name] = base if indices is None else base[indices]
    tables = {name: store.table(name) for name in TABLE_NAMES}
    return len(dataset), arrays, tables


def _store_fingerprint(
    dataset: FOTDataset,
    n: int,
    arrays: Dict[str, np.ndarray],
    tables: Dict[str, Tuple[str, ...]],
) -> str:
    """The :func:`~repro.core.columns.compute_fingerprint` of the store
    a future load of these columns will reconstruct.  For a full view
    this is the backing store's own (memoized) fingerprint; a subset
    view hashes its materialized columns once, here, at save time."""
    store = dataset.store
    if dataset._indices is None:
        return store.fingerprint()
    probe = ColumnStore.adopt_buffers(n, arrays, tables)
    return probe.fingerprint()


def _write_shard(
    root: Path,
    n: int,
    arrays: Dict[str, np.ndarray],
    tables: Dict[str, Tuple[str, ...]],
    fingerprint: str,
) -> Dict[str, object]:
    blobs_dir = root / BLOBS_DIR
    blobs_dir.mkdir(parents=True, exist_ok=True)
    columns: Dict[str, object] = {}
    for name in COLUMN_NAMES:
        column = arrays[name]
        if name in NUMERIC_DTYPES:
            dtype = np.dtype(NUMERIC_DTYPES[name])
            payload = np.ascontiguousarray(column, dtype=dtype).tobytes()
            ref = _write_blob(blobs_dir, payload)
            columns[name] = {
                "encoding": "numeric",
                "dtype": NUMERIC_DTYPES[name],
                **ref,
            }
        elif name in VARSTR_COLUMNS:
            offsets_payload, data_payload = _encode_varstr(column)
            offsets_ref = _write_blob(blobs_dir, offsets_payload)
            data_ref = _write_blob(blobs_dir, data_payload)
            columns[name] = {
                "encoding": "varstr",
                "offsets_blob": offsets_ref["blob"],
                "offsets_nbytes": offsets_ref["nbytes"],
                "data_blob": data_ref["blob"],
                "data_nbytes": data_ref["nbytes"],
            }
        else:
            ref = _write_blob(blobs_dir, _encode_jsonl(column))
            columns[name] = {"encoding": "jsonl", **ref}
    table_specs: Dict[str, object] = {}
    for table_name in TABLE_NAMES:
        payload = json.dumps(
            list(tables[table_name]), ensure_ascii=False, separators=(",", ":")
        ).encode("utf-8")
        ref = _write_blob(blobs_dir, payload)
        table_specs[table_name] = {"n": len(tables[table_name]), **ref}
    return {
        "n_rows": n,
        "fingerprint": fingerprint,
        "columns": columns,
        "tables": table_specs,
    }


def _write_manifest(root: Path, manifest: Dict[str, object]) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(root), prefix="manifest.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, root / MANIFEST_NAME)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def save_columnar(dataset: FOTDataset, path: Union[str, Path]) -> Path:
    """Write ``dataset`` as a single-shard columnar directory at
    ``path`` (conventionally ``*.fourcol``), replacing any dataset
    already there.  Blobs land before the manifest names them, so an
    interrupted save never leaves a readable-but-wrong dataset: either
    the old manifest still reigns or the new one is complete.

    Saving is lossless for JSON-representable ``detail`` dicts (the
    same contract as JSONL) and byte-deterministic: the same dataset
    always produces the same blobs and manifest.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    n, arrays, tables = _view_columns(dataset)
    fingerprint = _store_fingerprint(dataset, n, arrays, tables)
    shard = _write_shard(root, n, arrays, tables, fingerprint)
    _write_manifest(
        root,
        {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "schema": schema_fingerprint(),
            "n_rows": n,
            "fingerprint": fingerprint,
            "shards": [shard],
        },
    )
    return root


def append_columnar(path: Union[str, Path], dataset: FOTDataset) -> Path:
    """Append ``dataset`` as a new shard of an existing columnar
    directory (creating the directory when absent) — the
    :class:`~repro.serve.store.LiveDataset` compaction path.  The new
    shard's blobs are durable before the manifest update lands, and the
    manifest rewrite is atomic, so a crash leaves the previous shard
    list fully readable."""
    root = Path(path)
    if not is_columnar(root):
        return save_columnar(dataset, root)
    manifest = _read_manifest(root)
    if not len(dataset):
        return root
    n, arrays, tables = _view_columns(dataset)
    fingerprint = _store_fingerprint(dataset, n, arrays, tables)
    shard = _write_shard(root, n, arrays, tables, fingerprint)
    shards = list(manifest["shards"])
    shards.append(shard)
    manifest["shards"] = shards
    manifest["n_rows"] = int(manifest.get("n_rows", 0)) + n
    # The concatenated store's fingerprint is no longer the single
    # shard's; leave it to the normal lazy computation on load.
    manifest["fingerprint"] = None
    _write_manifest(root, manifest)
    return root


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _read_manifest(path: Path) -> Dict[str, Any]:
    if not path.exists():
        raise FileNotFoundError(f"no such dataset: {path}")
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise StorageFormatError(
            f"{path} is not a columnar dataset: no {MANIFEST_NAME} "
            "(was a save interrupted before its manifest landed?)"
        )
    try:
        raw = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageFormatError(f"{manifest_path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("format") != FORMAT_NAME:
        raise StorageFormatError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    version = raw.get("version")
    if version != FORMAT_VERSION:
        raise StorageVersionError(
            f"{path}: manifest version {version!r}; this build reads only "
            f"version {FORMAT_VERSION}"
        )
    if raw.get("schema") != schema_fingerprint():
        raise StorageVersionError(
            f"{path}: column schema fingerprint mismatch — the dataset was "
            "written under a different column layout or enum ordering; "
            "re-export it with 'fouryears convert'"
        )
    shards = raw.get("shards")
    if not isinstance(shards, list):
        raise StorageFormatError(f"{manifest_path}: missing shard list")
    return raw


def _load_shard(root: Path, shard: Dict[str, Any], verify: bool) -> ColumnStore:
    try:
        n = int(shard["n_rows"])
        column_specs = shard["columns"]
        table_specs = shard["tables"]
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(f"{root}: malformed shard entry: {exc}") from exc

    arrays: Dict[str, np.ndarray] = {}
    deferred: Dict[str, Callable[[], np.ndarray]] = {}
    for name in COLUMN_NAMES:
        spec = column_specs.get(name)
        if not isinstance(spec, dict):
            raise StorageFormatError(f"{root}: shard lacks column {name!r}")
        encoding = spec.get("encoding")
        what = f"column {name!r}"
        if encoding == "numeric":
            dtype = np.dtype(str(spec.get("dtype", "")))
            if name in NUMERIC_DTYPES and dtype != np.dtype(NUMERIC_DTYPES[name]):
                raise StorageVersionError(
                    f"{root}: {what} stored as {dtype}, schema expects "
                    f"{NUMERIC_DTYPES[name]}"
                )
            digest, nbytes = _blob_ref(spec, "blob", what)
            if nbytes != n * dtype.itemsize:
                raise StorageIntegrityError(
                    f"{what}: manifest says {nbytes} bytes for {n} rows of {dtype}"
                )
            if n:
                blob = _blob_path(root, digest, nbytes, what)
                if verify:
                    _verify_blob(blob, digest, what)
                arrays[name] = np.memmap(blob, dtype=dtype, mode="r")
            else:
                arrays[name] = np.empty(0, dtype=dtype)
        elif encoding == "varstr":
            off_digest, off_nbytes = _blob_ref(spec, "offsets_blob", what)
            data_digest, data_nbytes = _blob_ref(spec, "data_blob", what)
            item = np.dtype(_OFFSETS_DTYPE).itemsize
            if off_nbytes != (n + 1) * item:
                raise StorageIntegrityError(
                    f"{what}: offsets blob holds {off_nbytes // item} entries "
                    f"for {n} rows"
                )
            offsets_blob = _blob_path(root, off_digest, off_nbytes, what)
            data_blob = _blob_path(root, data_digest, data_nbytes, what)
            if verify:
                _verify_blob(offsets_blob, off_digest, what)
                _verify_blob(data_blob, data_digest, what)
            deferred[name] = _varstr_thunk(offsets_blob, data_blob, n, what)
        elif encoding == "jsonl":
            digest, nbytes = _blob_ref(spec, "blob", what)
            blob = _blob_path(root, digest, nbytes, what)
            if verify:
                _verify_blob(blob, digest, what)
            deferred[name] = _jsonl_thunk(blob, n, what)
        else:
            raise StorageFormatError(f"{root}: {what} has unknown encoding {encoding!r}")

    tables: Dict[str, Tuple[str, ...]] = {}
    for table_name in TABLE_NAMES:
        spec = table_specs.get(table_name)
        if not isinstance(spec, dict):
            raise StorageFormatError(f"{root}: shard lacks table {table_name!r}")
        what = f"table {table_name!r}"
        digest, nbytes = _blob_ref(spec, "blob", what)
        blob = _blob_path(root, digest, nbytes, what)
        if verify:
            _verify_blob(blob, digest, what)
        try:
            values = json.loads(blob.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StorageIntegrityError(f"{what}: blob is not JSON: {exc}") from exc
        if not isinstance(values, list):
            raise StorageIntegrityError(f"{what}: blob is not a JSON array")
        tables[table_name] = tuple(str(v) for v in values)

    fingerprint = shard.get("fingerprint")
    return ColumnStore.adopt_buffers(
        n,
        arrays,
        tables,
        deferred=deferred,
        fingerprint=str(fingerprint) if fingerprint else None,
    )


def _varstr_thunk(
    offsets_blob: Path, data_blob: Path, n: int, what: str
) -> Callable[[], np.ndarray]:
    return lambda: _decode_varstr(offsets_blob, data_blob, n, what)


def _jsonl_thunk(blob: Path, n: int, what: str) -> Callable[[], np.ndarray]:
    return lambda: _decode_jsonl(blob, n, what)


def load_columnar(path: Union[str, Path], *, verify: bool = False) -> FOTDataset:
    """Open a columnar dataset by memory-mapping its blobs.

    Numeric columns come back as read-only ``np.memmap`` views (the OS
    pages them in on demand); per-ticket string and detail columns
    decode lazily on first access.  Open time is therefore
    near-constant in dataset size.  The manifest's recorded fingerprint
    pre-seeds :meth:`ColumnStore.fingerprint`, so analysis-cache keys
    are available without hashing a single column byte.

    ``verify=True`` additionally re-hashes every referenced blob
    against its content address (full read; use for audits, not hot
    paths).  Size/shape consistency is checked on every load.
    """
    root = Path(path)
    manifest = _read_manifest(root)
    shards: List[Dict[str, Any]] = list(manifest["shards"])
    stores = [_load_shard(root, shard, verify) for shard in shards]
    stores = [store for store in stores if store.n]
    if not stores:
        return FOTDataset()
    if len(stores) == 1:
        return FOTDataset.from_store(stores[0])
    parts = [(store, np.arange(store.n, dtype=np.int64)) for store in stores]
    return FOTDataset.from_store(ColumnStore.concatenate(parts))


def manifest_summary(path: Union[str, Path]) -> Dict[str, object]:
    """Cheap header info (row count, shard count, fingerprint) without
    touching any blob — for the CLI and tests."""
    manifest = _read_manifest(Path(path))
    shards = list(manifest["shards"])
    return {
        "n_rows": int(manifest.get("n_rows", 0)),
        "n_shards": len(shards),
        "fingerprint": manifest.get("fingerprint"),
        "schema": manifest.get("schema"),
    }


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "COLUMNAR_SUFFIX",
    "MANIFEST_NAME",
    "NUMERIC_DTYPES",
    "VARSTR_COLUMNS",
    "JSONL_COLUMNS",
    "StorageError",
    "StorageFormatError",
    "StorageVersionError",
    "StorageIntegrityError",
    "schema_fingerprint",
    "is_columnar",
    "save_columnar",
    "append_columnar",
    "load_columnar",
    "manifest_summary",
]
