"""Enumerations shared across the whole library.

These mirror the vocabulary of Section II of the paper: the nine hardware
component classes plus the ``miscellaneous`` catch-all (ten classes the
FMS records), the three ticket categories of Table I, and the two
detection sources (programmatic agents vs. human operators).
"""

from __future__ import annotations

import enum


class ComponentClass(str, enum.Enum):
    """Hardware component classes recorded by the FMS.

    The paper's FMS covers nine hardware classes plus ``MISC`` for
    manually entered tickets (Section II-A).  ``HDD_BACKBOARD`` appears
    only in Table II; it is a distinct class there and so it is one here.
    """

    HDD = "hdd"
    SSD = "ssd"
    RAID_CARD = "raid_card"
    FLASH_CARD = "flash_card"
    MEMORY = "memory"
    MOTHERBOARD = "motherboard"
    CPU = "cpu"
    FAN = "fan"
    POWER = "power"
    HDD_BACKBOARD = "hdd_backboard"
    MISC = "miscellaneous"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_mechanical(self) -> bool:
        """Mechanical components wear out fastest (Section III-C)."""
        return self in (ComponentClass.HDD, ComponentClass.FAN, ComponentClass.POWER)

    @classmethod
    def hardware(cls) -> tuple["ComponentClass", ...]:
        """All classes except the manual ``MISC`` catch-all."""
        return tuple(c for c in cls if c is not cls.MISC)


class FOTCategory(str, enum.Enum):
    """Ticket categories from Table I of the paper.

    * ``FIXING`` — operators issue a repair order (RO), 70.3 % of FOTs.
    * ``ERROR`` — not repaired (typically out-of-warranty) and set to
      decommission, 28.0 %.
    * ``FALSE_ALARM`` — marked as a false alarm, 1.7 %.
    """

    FIXING = "d_fixing"
    ERROR = "d_error"
    FALSE_ALARM = "d_falsealarm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def counts_as_failure(self) -> bool:
        """The paper counts every FOT in D_fixing or D_error as a failure."""
        return self is not FOTCategory.FALSE_ALARM


class DetectionSource(str, enum.Enum):
    """How a ticket entered the FMS (Figure 1).

    About 90 % of FOTs are detected automatically, either by agents
    listening to syslogs or by agents periodically polling device status;
    the remaining ~10 % are entered manually by operators and land in the
    ``miscellaneous`` component class.
    """

    SYSLOG = "syslog"
    POLLING = "polling"
    MANUAL = "manual"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_automatic(self) -> bool:
        return self is not DetectionSource.MANUAL


class OperatorAction(str, enum.Enum):
    """The handling decision an operator records when closing a ticket."""

    REPAIR_ORDER = "repair_order"
    DECOMMISSION = "decommission"
    MARK_FALSE_ALARM = "mark_false_alarm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def category(self) -> FOTCategory:
        """The ticket category implied by this action (Table I)."""
        if self is OperatorAction.REPAIR_ORDER:
            return FOTCategory.FIXING
        if self is OperatorAction.DECOMMISSION:
            return FOTCategory.ERROR
        return FOTCategory.FALSE_ALARM


__all__ = [
    "ComponentClass",
    "FOTCategory",
    "DetectionSource",
    "OperatorAction",
]
