"""Core FOT (failure operation ticket) data model.

This package defines the ticket schema described in Section II of the
paper: component classes, failure categories, the failure-type registry
(Table III), the :class:`~repro.core.ticket.FOT` record itself, the
:class:`~repro.core.dataset.FOTDataset` container every analysis consumes,
and serialization so real ticket dumps can be loaded in place of the
synthetic trace: CSV/JSONL for interchange plus the native binary
columnar format (:mod:`repro.core.storage`) that opens by memory-mapping
instead of parsing.
"""

from repro.core.types import ComponentClass, FOTCategory, DetectionSource
from repro.core.failure_types import FailureType, REGISTRY, failure_types_for
from repro.core.ticket import FOT
from repro.core.dataset import FOTDataset

__all__ = [
    "ComponentClass",
    "FOTCategory",
    "DetectionSource",
    "FailureType",
    "REGISTRY",
    "failure_types_for",
    "FOT",
    "FOTDataset",
]
