"""Serialization of FOT datasets.

Three formats are supported.  The text formats, each optionally
gzip-compressed (``.jsonl.gz`` / ``.csv.gz``), are for interchange:

* **JSONL** — one JSON object per ticket, lossless (including the
  free-form ``detail`` dict).
* **CSV** — flat columns matching the paper's field names, for loading a
  real ticket dump into the toolkit; the ``detail`` dict is dropped.

The native format is **columnar** (a ``.fourcol`` directory, see
:mod:`repro.core.storage`): content-addressed binary column blobs under
a versioned manifest, loaded by memory-mapping rather than parsing, so
open time is near-constant in dataset size.  ``fouryears convert``
turns a text dump into a columnar dataset once; analyses then open it
in milliseconds.

Loading has two modes:

* **strict (default)** — validate every field and raise ``ValueError``
  with the offending line number, so a malformed real-world dump fails
  loudly instead of skewing statistics.
* **quarantining** (``strict=False``) — route malformed lines and
  applied repairs (timestamp coercion, category/component aliasing,
  dropped inconsistent ``op_time``) into a
  :class:`~repro.robustness.quarantine.QuarantineReport` and return it
  alongside the dataset as a :class:`LoadResult`.  Every input line is
  accounted for: it is either a loaded ticket or a quarantine entry.

All ``save*`` functions are crash-safe: they write to a temporary file
in the destination directory and atomically rename, so an interrupted
``fouryears generate`` never leaves a truncated dump behind.
"""

from __future__ import annotations

import contextlib
import csv
import gzip
import io as _stdio
import json
import os
import tempfile
from datetime import datetime, timezone
from enum import Enum
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    Literal,
    NamedTuple,
    Optional,
    TextIO,
    Tuple,
    Type,
    TypeVar,
    Union,
    overload,
)

from repro.core.columns import ColumnBuilder
from repro.core.dataset import FOTDataset
from repro.core.storage import (
    COLUMNAR_SUFFIX,
    StorageError,
    StorageFormatError,
    StorageIntegrityError,
    StorageVersionError,
    is_columnar,
    load_columnar,
    save_columnar,
)
from repro.core.ticket import FOT
from repro.core.types import (
    ComponentClass,
    DetectionSource,
    FOTCategory,
    OperatorAction,
)
from repro.robustness import quarantine as q
from repro.robustness.quarantine import QuarantineReport, RowError

CSV_FIELDS = [
    "fot_id",
    "host_id",
    "hostname",
    "host_idc",
    "error_device",
    "error_type",
    "error_time",
    "error_position",
    "error_detail",
    "category",
    "source",
    "product_line",
    "deployed_at",
    "device_slot",
    "action",
    "operator_id",
    "op_time",
]

#: Columns a CSV dump may omit entirely in quarantining mode — fields the
#: FOT schema treats as optional (open tickets carry no action/op_time).
OPTIONAL_CSV_FIELDS = frozenset(
    ["error_detail", "device_slot", "action", "operator_id", "op_time"]
)

SUPPORTED_SUFFIXES = (".jsonl", ".csv", ".jsonl.gz", ".csv.gz", COLUMNAR_SUFFIX)


class LoadResult(NamedTuple):
    """What a quarantining (``strict=False``) load returns."""

    dataset: FOTDataset
    quarantine: QuarantineReport


# ----------------------------------------------------------------------
# alias tables for quarantining repairs
# ----------------------------------------------------------------------
def _norm_label(text: str) -> str:
    return text.strip().lower().replace("-", "_").replace(" ", "_")


CATEGORY_ALIASES: Dict[str, FOTCategory] = {
    "fixing": FOTCategory.FIXING,
    "dfixing": FOTCategory.FIXING,
    "fix": FOTCategory.FIXING,
    "repair": FOTCategory.FIXING,
    "repaired": FOTCategory.FIXING,
    "error": FOTCategory.ERROR,
    "derror": FOTCategory.ERROR,
    "decommission": FOTCategory.ERROR,
    "decommissioned": FOTCategory.ERROR,
    "false_alarm": FOTCategory.FALSE_ALARM,
    "falsealarm": FOTCategory.FALSE_ALARM,
    "dfalsealarm": FOTCategory.FALSE_ALARM,
    "d_false_alarm": FOTCategory.FALSE_ALARM,
    "fa": FOTCategory.FALSE_ALARM,
}

COMPONENT_ALIASES: Dict[str, ComponentClass] = {
    "disk": ComponentClass.HDD,
    "hard_disk": ComponentClass.HDD,
    "hard_drive": ComponentClass.HDD,
    "harddisk": ComponentClass.HDD,
    "harddrive": ComponentClass.HDD,
    "sata": ComponentClass.HDD,
    "solid_state_drive": ComponentClass.SSD,
    "nvme": ComponentClass.SSD,
    "raid": ComponentClass.RAID_CARD,
    "raidcard": ComponentClass.RAID_CARD,
    "flash": ComponentClass.FLASH_CARD,
    "flashcard": ComponentClass.FLASH_CARD,
    "mem": ComponentClass.MEMORY,
    "dimm": ComponentClass.MEMORY,
    "dram": ComponentClass.MEMORY,
    "ram": ComponentClass.MEMORY,
    "mainboard": ComponentClass.MOTHERBOARD,
    "mobo": ComponentClass.MOTHERBOARD,
    "system_board": ComponentClass.MOTHERBOARD,
    "processor": ComponentClass.CPU,
    "cooling_fan": ComponentClass.FAN,
    "psu": ComponentClass.POWER,
    "power_supply": ComponentClass.POWER,
    "backboard": ComponentClass.HDD_BACKBOARD,
    "hdd_back_board": ComponentClass.HDD_BACKBOARD,
    "misc": ComponentClass.MISC,
    "manual": ComponentClass.MISC,
    "other": ComponentClass.MISC,
}

SOURCE_ALIASES: Dict[str, DetectionSource] = {
    "log": DetectionSource.SYSLOG,
    "sys_log": DetectionSource.SYSLOG,
    "poll": DetectionSource.POLLING,
    "polling_agent": DetectionSource.POLLING,
    "human": DetectionSource.MANUAL,
    "operator": DetectionSource.MANUAL,
    "manual_report": DetectionSource.MANUAL,
}

ACTION_ALIASES: Dict[str, OperatorAction] = {
    "ro": OperatorAction.REPAIR_ORDER,
    "repair": OperatorAction.REPAIR_ORDER,
    "repairorder": OperatorAction.REPAIR_ORDER,
    "decom": OperatorAction.DECOMMISSION,
    "decommissioned": OperatorAction.DECOMMISSION,
    "false_alarm": OperatorAction.MARK_FALSE_ALARM,
    "falsealarm": OperatorAction.MARK_FALSE_ALARM,
    "markfalsealarm": OperatorAction.MARK_FALSE_ALARM,
}

_ENUM_ALIASES = {
    FOTCategory: (CATEGORY_ALIASES, q.CATEGORY_ALIASED),
    ComponentClass: (COMPONENT_ALIASES, q.COMPONENT_ALIASED),
    DetectionSource: (SOURCE_ALIASES, q.SOURCE_ALIASED),
    OperatorAction: (ACTION_ALIASES, q.ACTION_ALIASED),
}


# ----------------------------------------------------------------------
# field parsers (raise RowError with a stable error class)
# ----------------------------------------------------------------------
class _Repairs:
    """Per-line repair collector; ``None`` stands for strict mode."""

    def __init__(self, report: QuarantineReport, line: int) -> None:
        self.report = report
        self.line = line

    def note(self, repair: str, field: str, original: object, fixed: object) -> None:
        self.report.record_repair(self.line, repair, field, original, fixed)


def _require(record: Dict[str, object], key: str) -> object:
    if key not in record or record[key] in ("", None):
        raise RowError(q.MISSING_FIELD, f"missing required field {key!r}", key)
    return record[key]


def _parse_int(value: object, field: str) -> int:
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        pass
    try:
        as_float = float(value)  # type: ignore[arg-type]
        if as_float.is_integer():
            return int(as_float)
    except (TypeError, ValueError):
        pass
    raise RowError(q.BAD_NUMBER, f"{field}: {value!r} is not an integer", field)


_E = TypeVar("_E", bound=Enum)


def _parse_enum(
    enum_cls: Type[_E], value: object, field: str, repairs: Optional[_Repairs]
) -> _E:
    text = str(value)
    try:
        return enum_cls(text)
    except ValueError:
        pass
    if repairs is not None:
        key = _norm_label(text)
        try:
            fixed = enum_cls(key)
        except ValueError:
            aliases, repair_kind = _ENUM_ALIASES[enum_cls]
            fixed = aliases.get(key)
            if fixed is None:
                raise RowError(
                    q.BAD_ENUM,
                    f"{field}: {text!r} is not a valid {enum_cls.__name__}",
                    field,
                ) from None
        else:
            _, repair_kind = _ENUM_ALIASES[enum_cls]
        repairs.note(repair_kind, field, text, fixed.value)
        return fixed
    raise RowError(
        q.BAD_ENUM, f"{field}: {text!r} is not a valid {enum_cls.__name__}", field
    )


def _parse_timestamp(
    value: object, field: str, repairs: Optional[_Repairs]
) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        pass
    if repairs is not None and isinstance(value, str):
        text = value.strip().replace("T", " ")
        try:
            stamp = datetime.fromisoformat(text)
        except ValueError:
            pass
        else:
            if stamp.tzinfo is None:
                stamp = stamp.replace(tzinfo=timezone.utc)
            seconds = stamp.timestamp()
            repairs.note(q.TIMESTAMP_COERCED, field, value, seconds)
            return seconds
    raise RowError(
        q.BAD_TIMESTAMP, f"{field}: {value!r} is not a timestamp", field
    )


def _ticket_to_record(ticket: FOT, include_detail: bool) -> Dict[str, object]:
    record: Dict[str, object] = {
        "fot_id": ticket.fot_id,
        "host_id": ticket.host_id,
        "hostname": ticket.hostname,
        "host_idc": ticket.host_idc,
        "error_device": ticket.error_device.value,
        "error_type": ticket.error_type,
        "error_time": ticket.error_time,
        "error_position": ticket.error_position,
        "error_detail": ticket.error_detail,
        "category": ticket.category.value,
        "source": ticket.source.value,
        "product_line": ticket.product_line,
        "deployed_at": ticket.deployed_at,
        "device_slot": ticket.device_slot,
        "action": ticket.action.value if ticket.action else "",
        "operator_id": ticket.operator_id or "",
        "op_time": "" if ticket.op_time is None else ticket.op_time,
    }
    if include_detail:
        record["detail"] = ticket.detail
    return record


def _parse_fields(
    record: Dict[str, object], repairs: Optional[_Repairs]
) -> Dict[str, object]:
    """Parse one record into validated FOT field values, raising
    :class:`RowError` on any unrecoverable defect.  With ``repairs`` set
    (quarantining mode) the recoverable defects are repaired in place
    and recorded.  The returned dict feeds either ``FOT(**fields)`` or
    :meth:`~repro.core.columns.ColumnBuilder.append` — the loaders use
    the latter, building columns directly without intermediate tickets."""
    error_time = _parse_timestamp(_require(record, "error_time"), "error_time", repairs)
    if error_time < 0:
        raise RowError(
            q.NEGATIVE_TIME, f"error_time: {error_time!r} is negative", "error_time"
        )

    op_raw = record.get("op_time")
    op_time: Optional[float] = (
        None if op_raw in ("", None) else _parse_timestamp(op_raw, "op_time", repairs)
    )
    if op_time is not None and op_time < error_time:
        if repairs is not None:
            repairs.note(q.OP_TIME_DROPPED, "op_time", op_time, "")
            op_time = None
        else:
            raise RowError(
                q.INCONSISTENT_TIMES,
                f"op_time {op_time!r} precedes error_time {error_time!r}",
                "op_time",
            )

    slot_raw = record.get("device_slot", 0) or 0
    try:
        device_slot = _parse_int(slot_raw, "device_slot")
    except RowError:
        if repairs is None:
            raise
        repairs.note(q.SLOT_DEFAULTED, "device_slot", slot_raw, 0)
        device_slot = 0

    action_raw = record.get("action") or ""
    return dict(
        fot_id=_parse_int(_require(record, "fot_id"), "fot_id"),
        host_id=_parse_int(_require(record, "host_id"), "host_id"),
        hostname=str(_require(record, "hostname")),
        host_idc=str(_require(record, "host_idc")),
        error_device=_parse_enum(
            ComponentClass, _require(record, "error_device"), "error_device", repairs
        ),
        error_type=str(_require(record, "error_type")),
        error_time=error_time,
        error_position=_parse_int(
            _require(record, "error_position"), "error_position"
        ),
        error_detail=str(record.get("error_detail", "") or ""),
        category=_parse_enum(
            FOTCategory, _require(record, "category"), "category", repairs
        ),
        source=_parse_enum(
            DetectionSource, _require(record, "source"), "source", repairs
        ),
        product_line=str(_require(record, "product_line")),
        deployed_at=_parse_timestamp(
            _require(record, "deployed_at"), "deployed_at", repairs
        ),
        device_slot=device_slot,
        action=_parse_enum(OperatorAction, action_raw, "action", repairs)
        if action_raw
        else None,
        operator_id=str(record["operator_id"]) if record.get("operator_id") else None,
        op_time=op_time,
        detail=dict(record.get("detail") or {}),  # type: ignore[arg-type]
    )


def _build_ticket(record: Dict[str, object], repairs: Optional[_Repairs]) -> FOT:
    """Parse one record into an FOT (single-ticket convenience path)."""
    return FOT(**_parse_fields(record, repairs))  # type: ignore[arg-type]


def _record_to_ticket(record: Dict[str, object], line: int) -> FOT:
    """Strict single-record parse (kept for backwards compatibility)."""
    try:
        return _build_ticket(record, repairs=None)
    except RowError as exc:
        raise ValueError(f"line {line}: malformed ticket record: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"line {line}: malformed ticket record: {exc}") from exc


@overload
def parse_records(
    numbered: Iterable[Tuple[int, Dict[str, object]]],
    *,
    strict: Literal[True] = ...,
    source: str = ...,
    report: Optional[QuarantineReport] = ...,
) -> FOTDataset: ...


@overload
def parse_records(
    numbered: Iterable[Tuple[int, Dict[str, object]]],
    *,
    strict: Literal[False],
    source: str = ...,
    report: Optional[QuarantineReport] = ...,
) -> LoadResult: ...


def parse_records(
    numbered: Iterable[Tuple[int, Dict[str, object]]],
    *,
    strict: bool = True,
    source: str = "<records>",
    report: Optional[QuarantineReport] = None,
) -> Union[FOTDataset, LoadResult]:
    """Parse ``(line_number, record)`` pairs into a dataset.

    Strict mode raises on the first defect; quarantining mode skips the
    defective line, records it, and keeps going.  Pass ``report`` to
    accumulate into an existing :class:`QuarantineReport` (the JSONL
    loader uses this so bad-JSON skips land in the same report).
    """
    if report is None:
        report = QuarantineReport(source)
    builder = ColumnBuilder()
    for line_no, record in numbered:
        if strict:
            try:
                builder.append(**_parse_fields(record, repairs=None))
            except RowError as exc:
                raise ValueError(
                    f"line {line_no}: malformed ticket record: {exc}"
                ) from exc
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"line {line_no}: malformed ticket record: {exc}"
                ) from exc
            continue
        repairs = _Repairs(report, line_no)
        try:
            builder.append(**_parse_fields(record, repairs))
        except RowError as exc:
            report.record_skip(line_no, exc.error_class, str(exc), exc.field)
        except (KeyError, TypeError, ValueError) as exc:
            report.record_skip(line_no, q.BAD_NUMBER, str(exc))
    report.n_loaded += len(builder)
    dataset = FOTDataset.from_store(builder.build())
    if strict:
        return dataset
    return LoadResult(dataset, report)


# ----------------------------------------------------------------------
# suffix dispatch and (de)compression
# ----------------------------------------------------------------------
def _format_of(path: Path) -> str:
    """The logical format (``.jsonl`` / ``.csv`` / ``.fourcol``) behind
    a path, looking through a trailing ``.gz``.  A directory that holds
    a columnar manifest counts as columnar regardless of its name."""
    suffixes = path.suffixes
    if suffixes and suffixes[-1] == ".gz":
        base = suffixes[-2] if len(suffixes) >= 2 else ""
    else:
        base = suffixes[-1] if suffixes else ""
    if base == COLUMNAR_SUFFIX or is_columnar(path):
        return COLUMNAR_SUFFIX
    if base in (".jsonl", ".csv"):
        return base
    hint = " (did you mean '.jsonl'?)" if base == ".json" else ""
    raise ValueError(
        f"unsupported dataset format: {path.suffix!r}{hint}; "
        f"supported suffixes: {', '.join(SUPPORTED_SUFFIXES)}"
    )


def _is_gzip(path: Path) -> bool:
    return path.suffix == ".gz"


def _open_read(path: Path) -> TextIO:
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8", newline="")


@contextlib.contextmanager
def _atomic_write(path: Path, newline: str) -> Iterator[TextIO]:
    """Crash-safe writer: stage into a temp file next to ``path`` and
    atomically rename on success, so readers never observe a truncated
    dump.  Gzip output is byte-deterministic (no mtime/name in header)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        if _is_gzip(path):
            raw = os.fdopen(fd, "wb")
            try:
                gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
                fh = _stdio.TextIOWrapper(gz, encoding="utf-8", newline=newline)
                try:
                    yield fh
                finally:
                    fh.flush()
                    fh.detach()
                    gz.close()
            finally:
                raw.close()
        else:
            fh = os.fdopen(fd, "w", encoding="utf-8", newline=newline)
            try:
                yield fh
            finally:
                fh.close()
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl_records(records: Iterable[Dict[str, object]], path: Union[str, Path]) -> None:
    """Write raw record dicts as JSONL (atomic; used by the chaos
    harness to emit corrupted dumps the loaders can chew on)."""
    with _atomic_write(Path(path), newline="\n") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=False))
            fh.write("\n")


def save_jsonl(dataset: FOTDataset, path: Union[str, Path]) -> None:
    """Write one JSON object per ticket (lossless)."""
    write_jsonl_records(
        (_ticket_to_record(t, include_detail=True) for t in dataset), path
    )


def _iter_jsonl(
    path: Path, report: Optional[QuarantineReport]
) -> Iterator[Tuple[int, Dict[str, object]]]:
    with contextlib.closing(_open_read(path)) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield line_no, json.loads(line)
            except json.JSONDecodeError as exc:
                if report is None:
                    raise ValueError(f"line {line_no}: invalid JSON: {exc}") from exc
                report.record_skip(line_no, q.BAD_JSON, f"invalid JSON: {exc}")


@overload
def load_jsonl(
    path: Union[str, Path], *, strict: Literal[True] = ...
) -> FOTDataset: ...


@overload
def load_jsonl(path: Union[str, Path], *, strict: Literal[False]) -> LoadResult: ...


def load_jsonl(
    path: Union[str, Path], *, strict: bool = True
) -> Union[FOTDataset, LoadResult]:
    """Load a JSONL ticket dump written by :func:`save_jsonl`.

    With ``strict=False``, returns ``(dataset, quarantine)`` instead of
    raising on malformed lines.
    """
    path = Path(path)
    if strict:
        return parse_records(_iter_jsonl(path, None), strict=True, source=str(path))
    report = QuarantineReport(str(path))
    return parse_records(
        _iter_jsonl(path, report), strict=False, source=str(path), report=report
    )


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def write_csv_records(records: Iterable[Dict[str, object]], path: Union[str, Path]) -> None:
    """Write raw record dicts as CSV (atomic; ``detail`` is dropped)."""
    with _atomic_write(Path(path), newline="") as fh:
        writer = csv.DictWriter(
            fh, fieldnames=CSV_FIELDS, restval="", extrasaction="ignore"
        )
        writer.writeheader()
        for record in records:
            writer.writerow(record)


def save_csv(dataset: FOTDataset, path: Union[str, Path]) -> None:
    """Write a flat CSV (drops the ``detail`` dict)."""
    write_csv_records(
        (_ticket_to_record(t, include_detail=False) for t in dataset), path
    )


@overload
def load_csv(
    path: Union[str, Path], *, strict: Literal[True] = ...
) -> FOTDataset: ...


@overload
def load_csv(path: Union[str, Path], *, strict: Literal[False]) -> LoadResult: ...


def load_csv(
    path: Union[str, Path], *, strict: bool = True
) -> Union[FOTDataset, LoadResult]:
    """Load a CSV ticket dump written by :func:`save_csv` (or a real
    dump exported with the same column names).

    With ``strict=False``, returns ``(dataset, quarantine)``; columns in
    :data:`OPTIONAL_CSV_FIELDS` may then be absent entirely.
    """
    path = Path(path)
    with contextlib.closing(_open_read(path)) as fh:
        reader = csv.DictReader(fh)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or [])
        if not strict:
            missing -= OPTIONAL_CSV_FIELDS
        if missing:
            raise ValueError(f"CSV is missing columns: {sorted(missing)}")
        numbered = ((line_no, row) for line_no, row in enumerate(reader, start=2))
        if strict:
            return parse_records(numbered, strict=True, source=str(path))
        return parse_records(numbered, strict=False, source=str(path))


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def save(dataset: FOTDataset, path: Union[str, Path]) -> None:
    """Dispatch on file suffix (``.jsonl[.gz]`` / ``.csv[.gz]`` /
    ``.fourcol``)."""
    path = Path(path)
    fmt = _format_of(path)
    if fmt == COLUMNAR_SUFFIX:
        save_columnar(dataset, path)
    elif fmt == ".jsonl":
        save_jsonl(dataset, path)
    else:
        save_csv(dataset, path)


@overload
def load(path: Union[str, Path], *, strict: Literal[True] = ...) -> FOTDataset: ...


@overload
def load(path: Union[str, Path], *, strict: Literal[False]) -> LoadResult: ...


def load(
    path: Union[str, Path], *, strict: bool = True
) -> Union[FOTDataset, LoadResult]:
    """Dispatch on file suffix (``.jsonl[.gz]`` / ``.csv[.gz]`` /
    ``.fourcol``).

    Columnar datasets are validated structurally at write time, so
    ``strict=False`` simply returns an empty quarantine report alongside
    the dataset — a corrupt columnar file raises a typed
    :class:`~repro.core.storage.StorageError` in either mode.
    """
    path = Path(path)
    fmt = _format_of(path)
    if fmt == COLUMNAR_SUFFIX:
        dataset = load_columnar(path)
        if strict:
            return dataset
        report = QuarantineReport(str(path))
        report.n_loaded = len(dataset)
        return LoadResult(dataset, report)
    if fmt == ".jsonl":
        return load_jsonl(path) if strict else load_jsonl(path, strict=False)
    return load_csv(path) if strict else load_csv(path, strict=False)


def write_records(records: Iterable[Dict[str, object]], path: Union[str, Path]) -> None:
    """Write raw record dicts, dispatching on file suffix — the chaos
    harness's output path (records may be deliberately malformed)."""
    path = Path(path)
    fmt = _format_of(path)
    if fmt == COLUMNAR_SUFFIX:
        raise ValueError(
            "raw record dicts cannot be written as columnar; parse them "
            "into a dataset first, then save_columnar()"
        )
    if fmt == ".jsonl":
        write_jsonl_records(records, path)
    else:
        write_csv_records(records, path)


__all__ = [
    "CSV_FIELDS",
    "OPTIONAL_CSV_FIELDS",
    "SUPPORTED_SUFFIXES",
    "COLUMNAR_SUFFIX",
    "LoadResult",
    "StorageError",
    "StorageFormatError",
    "StorageVersionError",
    "StorageIntegrityError",
    "is_columnar",
    "save_columnar",
    "load_columnar",
    "CATEGORY_ALIASES",
    "COMPONENT_ALIASES",
    "SOURCE_ALIASES",
    "ACTION_ALIASES",
    "parse_records",
    "save",
    "load",
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
    "write_jsonl_records",
    "write_csv_records",
    "write_records",
]
