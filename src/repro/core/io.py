"""Serialization of FOT datasets.

Two interchange formats are supported:

* **JSONL** — one JSON object per ticket, lossless (including the
  free-form ``detail`` dict).
* **CSV** — flat columns matching the paper's field names, for loading a
  real ticket dump into the toolkit; the ``detail`` dict is dropped.

Both loaders validate categorical fields and raise ``ValueError`` with
the offending line number, so a malformed real-world dump fails loudly
instead of skewing statistics.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.dataset import FOTDataset
from repro.core.ticket import FOT
from repro.core.types import (
    ComponentClass,
    DetectionSource,
    FOTCategory,
    OperatorAction,
)

CSV_FIELDS = [
    "fot_id",
    "host_id",
    "hostname",
    "host_idc",
    "error_device",
    "error_type",
    "error_time",
    "error_position",
    "error_detail",
    "category",
    "source",
    "product_line",
    "deployed_at",
    "device_slot",
    "action",
    "operator_id",
    "op_time",
]


def _ticket_to_record(ticket: FOT, include_detail: bool) -> Dict[str, object]:
    record: Dict[str, object] = {
        "fot_id": ticket.fot_id,
        "host_id": ticket.host_id,
        "hostname": ticket.hostname,
        "host_idc": ticket.host_idc,
        "error_device": ticket.error_device.value,
        "error_type": ticket.error_type,
        "error_time": ticket.error_time,
        "error_position": ticket.error_position,
        "error_detail": ticket.error_detail,
        "category": ticket.category.value,
        "source": ticket.source.value,
        "product_line": ticket.product_line,
        "deployed_at": ticket.deployed_at,
        "device_slot": ticket.device_slot,
        "action": ticket.action.value if ticket.action else "",
        "operator_id": ticket.operator_id or "",
        "op_time": "" if ticket.op_time is None else ticket.op_time,
    }
    if include_detail:
        record["detail"] = ticket.detail
    return record


def _record_to_ticket(record: Dict[str, object], line: int) -> FOT:
    def require(key: str) -> object:
        if key not in record or record[key] in ("", None):
            raise ValueError(f"line {line}: missing required field {key!r}")
        return record[key]

    def optional_float(key: str) -> Optional[float]:
        value = record.get(key)
        if value in ("", None):
            return None
        return float(value)  # type: ignore[arg-type]

    try:
        action_raw = record.get("action") or ""
        return FOT(
            fot_id=int(require("fot_id")),  # type: ignore[arg-type]
            host_id=int(require("host_id")),  # type: ignore[arg-type]
            hostname=str(require("hostname")),
            host_idc=str(require("host_idc")),
            error_device=ComponentClass(str(require("error_device"))),
            error_type=str(require("error_type")),
            error_time=float(require("error_time")),  # type: ignore[arg-type]
            error_position=int(require("error_position")),  # type: ignore[arg-type]
            error_detail=str(record.get("error_detail", "")),
            category=FOTCategory(str(require("category"))),
            source=DetectionSource(str(require("source"))),
            product_line=str(require("product_line")),
            deployed_at=float(require("deployed_at")),  # type: ignore[arg-type]
            device_slot=int(record.get("device_slot", 0) or 0),  # type: ignore[arg-type]
            action=OperatorAction(str(action_raw)) if action_raw else None,
            operator_id=str(record["operator_id"]) if record.get("operator_id") else None,
            op_time=optional_float("op_time"),
            detail=dict(record.get("detail") or {}),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"line {line}: malformed ticket record: {exc}") from exc


def save_jsonl(dataset: FOTDataset, path: Union[str, Path]) -> None:
    """Write one JSON object per ticket (lossless)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for ticket in dataset:
            fh.write(json.dumps(_ticket_to_record(ticket, include_detail=True)))
            fh.write("\n")


def load_jsonl(path: Union[str, Path]) -> FOTDataset:
    """Load a JSONL ticket dump written by :func:`save_jsonl`."""
    path = Path(path)
    tickets = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_no}: invalid JSON: {exc}") from exc
            tickets.append(_record_to_ticket(record, line_no))
    return FOTDataset(tickets)


def save_csv(dataset: FOTDataset, path: Union[str, Path]) -> None:
    """Write a flat CSV (drops the ``detail`` dict)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for ticket in dataset:
            writer.writerow(_ticket_to_record(ticket, include_detail=False))


def load_csv(path: Union[str, Path]) -> FOTDataset:
    """Load a CSV ticket dump written by :func:`save_csv` (or a real
    dump exported with the same column names)."""
    path = Path(path)
    tickets = []
    with path.open("r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"CSV is missing columns: {sorted(missing)}")
        for line_no, row in enumerate(reader, start=2):
            tickets.append(_record_to_ticket(row, line_no))
    return FOTDataset(tickets)


def save(dataset: FOTDataset, path: Union[str, Path]) -> None:
    """Dispatch on file suffix (``.jsonl`` / ``.csv``)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        save_jsonl(dataset, path)
    elif path.suffix == ".csv":
        save_csv(dataset, path)
    else:
        raise ValueError(f"unsupported dataset format: {path.suffix!r}")


def load(path: Union[str, Path]) -> FOTDataset:
    """Dispatch on file suffix (``.jsonl`` / ``.csv``)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return load_jsonl(path)
    if path.suffix == ".csv":
        return load_csv(path)
    raise ValueError(f"unsupported dataset format: {path.suffix!r}")


__all__ = [
    "CSV_FIELDS",
    "save",
    "load",
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
]
