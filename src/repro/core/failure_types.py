"""Failure-type registry (Table III of the paper).

The FMS records over 70 failure types across the component classes; the
paper publishes explanations for a representative subset (Table III) and
per-class type mixes for four classes (Figure 2).  This module is the
single registry of the types the reproduction models: each type carries
its component class, the paper's (or a paraphrased) explanation, and
whether it is *fatal* ("e.g. NotReady in a hard drive") or an early
warning ("e.g. SMARTFail").

Types not spelled out in the paper are marked ``documented=False``; they
exist so that every component class has a plausible mix, and their share
of the synthetic trace is configured in
:mod:`repro.simulation.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.types import ComponentClass


@dataclass(frozen=True)
class FailureType:
    """One failure type the FMS can report.

    Attributes:
        name: The FMS type identifier, e.g. ``"SMARTFail"``.
        component: Component class this type belongs to.
        explanation: What the type means (Table III wording where the
            paper gives it).
        fatal: True when the failure means the component has stopped
            working (vs. a predictive warning).
        documented: True when the type appears verbatim in the paper.
    """

    name: str
    component: ComponentClass
    explanation: str
    fatal: bool = False
    documented: bool = True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _ft(
    name: str,
    component: ComponentClass,
    explanation: str,
    *,
    fatal: bool = False,
    documented: bool = True,
) -> FailureType:
    return FailureType(name, component, explanation, fatal, documented)


#: All failure types known to the reproduction, keyed by name.
REGISTRY: Dict[str, FailureType] = {
    ft.name: ft
    for ft in [
        # ---- HDD (Table III (a) + Table VIII) -------------------------
        _ft(
            "SMARTFail",
            ComponentClass.HDD,
            "Some HDD SMART value exceeds the predefined threshold.",
        ),
        _ft(
            "RaidPdPreErr",
            ComponentClass.HDD,
            "The prediction error count exceeds the predefined threshold.",
        ),
        _ft(
            "Missing",
            ComponentClass.HDD,
            "Some device file could not be detected.",
            fatal=True,
        ),
        _ft(
            "NotReady",
            ComponentClass.HDD,
            "Some device file could not be accessed.",
            fatal=True,
        ),
        _ft(
            "PendingLBA",
            ComponentClass.HDD,
            "Failures are detected on the sectors that are not accessed.",
        ),
        _ft(
            "TooMany",
            ComponentClass.HDD,
            "Large number of failed sectors are detected on the HDD.",
            fatal=True,
        ),
        _ft(
            "DStatus",
            ComponentClass.HDD,
            "IO requests are not handled by the HDD and are in D status.",
            fatal=True,
        ),
        _ft(
            "SixthFixing",
            ComponentClass.HDD,
            "The same drive slot has been repaired repeatedly "
            "(appears in the synchronous-repeat example, Table VIII).",
        ),
        # ---- RAID card (Table III (b)) --------------------------------
        _ft(
            "RaidVdNoBBUCacheErr",
            ComponentClass.RAID_CARD,
            "Abnormal cache setting due to BBU (Battery Backup Unit) is "
            "detected, which degrades the performance.",
        ),
        _ft(
            "BBUFail",
            ComponentClass.RAID_CARD,
            "The RAID card battery backup unit fails, forcing "
            "write-through mode (root cause of the 400-failure server in "
            "Section III-D).",
            documented=False,
        ),
        _ft(
            "RaidCtrlMissing",
            ComponentClass.RAID_CARD,
            "The RAID controller stops responding to management commands.",
            fatal=True,
            documented=False,
        ),
        # ---- Flash card (Table III (c)) --------------------------------
        _ft(
            "BBTFail",
            ComponentClass.FLASH_CARD,
            "The bad block table (BBT) could not be accessed.",
            fatal=True,
        ),
        _ft(
            "HighMaxBbRate",
            ComponentClass.FLASH_CARD,
            "The max bad block rate exceeds the predefined threshold.",
        ),
        _ft(
            "FlashIOErr",
            ComponentClass.FLASH_CARD,
            "IO requests on the flash card return errors.",
            fatal=True,
            documented=False,
        ),
        # ---- Memory (Table III (d)) ------------------------------------
        _ft(
            "DIMMCE",
            ComponentClass.MEMORY,
            "Large number of correctable errors are detected.",
        ),
        _ft(
            "DIMMUE",
            ComponentClass.MEMORY,
            "Uncorrectable errors are detected on the memory.",
            fatal=True,
        ),
        # ---- SSD --------------------------------------------------------
        _ft(
            "SSDSMARTFail",
            ComponentClass.SSD,
            "Some SSD SMART value exceeds the predefined threshold.",
            documented=False,
        ),
        _ft(
            "SSDWearHigh",
            ComponentClass.SSD,
            "The SSD media wear indicator exceeds the threshold.",
            documented=False,
        ),
        _ft(
            "SSDNotReady",
            ComponentClass.SSD,
            "The SSD device file could not be accessed.",
            fatal=True,
            documented=False,
        ),
        # ---- Motherboard ------------------------------------------------
        _ft(
            "SASCardErr",
            ComponentClass.MOTHERBOARD,
            "The on-board SAS (Serial Attached SCSI) card misbehaves "
            "(cause of batch failure Case 2, Section V-A).",
            fatal=True,
            documented=False,
        ),
        _ft(
            "MBSensorErr",
            ComponentClass.MOTHERBOARD,
            "A motherboard health sensor reports an out-of-range value.",
            documented=False,
        ),
        _ft(
            "MBNoPost",
            ComponentClass.MOTHERBOARD,
            "The server fails to complete POST after a reboot.",
            fatal=True,
            documented=False,
        ),
        # ---- CPU ----------------------------------------------------------
        _ft(
            "CPUCacheErr",
            ComponentClass.CPU,
            "Machine-check reports cache errors on a CPU.",
            documented=False,
        ),
        _ft(
            "CPUOverheat",
            ComponentClass.CPU,
            "The CPU temperature exceeds the protection threshold.",
            documented=False,
        ),
        # ---- Fan ----------------------------------------------------------
        _ft(
            "FanSpeedLow",
            ComponentClass.FAN,
            "A chassis fan spins below its expected RPM range.",
            documented=False,
        ),
        _ft(
            "FanStopped",
            ComponentClass.FAN,
            "A chassis fan reports zero RPM.",
            fatal=True,
            documented=False,
        ),
        # ---- Power --------------------------------------------------------
        _ft(
            "PSUVoltageErr",
            ComponentClass.POWER,
            "A power supply output voltage drifts out of range.",
            documented=False,
        ),
        _ft(
            "PSUFail",
            ComponentClass.POWER,
            "A power supply unit stops supplying power.",
            fatal=True,
            documented=False,
        ),
        _ft(
            "PSUInputLost",
            ComponentClass.POWER,
            "A power supply loses its input feed (e.g. a PDU outage, "
            "batch failure Case 3, Section V-A).",
            fatal=True,
            documented=False,
        ),
        # ---- HDD backboard -------------------------------------------------
        _ft(
            "BackboardErr",
            ComponentClass.HDD_BACKBOARD,
            "The HDD backboard reports link errors on multiple slots.",
            fatal=True,
            documented=False,
        ),
        # ---- Miscellaneous (Section II-A prose) -----------------------------
        _ft(
            "ManualNoDescription",
            ComponentClass.MISC,
            "Manually entered ticket without any description "
            "(44 % of miscellaneous FOTs).",
        ),
        _ft(
            "ManualSuspectHDD",
            ComponentClass.MISC,
            "Manually entered ticket the operator suspects to be hard "
            "drive related (~25 % of miscellaneous FOTs).",
        ),
        _ft(
            "ManualServerCrash",
            ComponentClass.MISC,
            "Manually entered ticket marked 'server crash' without a "
            "clear reason (~25 % of miscellaneous FOTs).",
            fatal=True,
        ),
        _ft(
            "ManualOther",
            ComponentClass.MISC,
            "Any other manually entered problem description.",
            documented=False,
        ),
    ]
}


def failure_types_for(component: ComponentClass) -> List[FailureType]:
    """All registered failure types of one component class."""
    return [ft for ft in REGISTRY.values() if ft.component is component]


def get(name: str) -> FailureType:
    """Look up a failure type by name, raising ``KeyError`` with the
    offending name if it is unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown failure type: {name!r}") from None


def table_iii_rows() -> List[Tuple[str, str, str]]:
    """Rows of Table III: (failure type, component class, explanation),
    restricted to the types the paper documents verbatim."""
    return [
        (ft.name, ft.component.value, ft.explanation)
        for ft in REGISTRY.values()
        if ft.documented
    ]


__all__ = ["FailureType", "REGISTRY", "failure_types_for", "get", "table_iii_rows"]
