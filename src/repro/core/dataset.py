"""The FOT dataset container every analysis consumes.

:class:`FOTDataset` wraps an immutable sequence of :class:`~repro.core.ticket.FOT`
records and exposes:

* lazily-built **columnar numpy views** of the hot fields (timestamps,
  category/component codes, host ids, rack positions, ...) so the
  statistical analyses vectorize instead of looping over tickets, and
* **filtering / grouping** helpers (`failures()`, `where()`,
  `by_component()`, ...) that return new datasets sharing nothing mutable.

The container is deliberately schema-first: a real ticket dump loaded via
:mod:`repro.core.io` behaves identically to the synthetic trace.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.ticket import FOT
from repro.core.types import ComponentClass, DetectionSource, FOTCategory

#: Stable integer coding for categorical columns.
COMPONENT_ORDER: Sequence[ComponentClass] = tuple(ComponentClass)
CATEGORY_ORDER: Sequence[FOTCategory] = tuple(FOTCategory)
_COMPONENT_CODE = {c: i for i, c in enumerate(COMPONENT_ORDER)}
_CATEGORY_CODE = {c: i for i, c in enumerate(CATEGORY_ORDER)}


class FOTDataset:
    """An immutable collection of FOTs with columnar accessors."""

    def __init__(self, tickets: Iterable[FOT]):
        self._tickets: List[FOT] = list(tickets)
        self._columns: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tickets)

    def __iter__(self) -> Iterator[FOT]:
        return iter(self._tickets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return FOTDataset(self._tickets[index])
        return self._tickets[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FOTDataset({len(self)} tickets)"

    @property
    def tickets(self) -> Sequence[FOT]:
        """The underlying tickets (do not mutate)."""
        return self._tickets

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------
    def _column(self, name: str, build: Callable[[], np.ndarray]) -> np.ndarray:
        col = self._columns.get(name)
        if col is None:
            col = build()
            col.setflags(write=False)
            self._columns[name] = col
        return col

    @property
    def error_times(self) -> np.ndarray:
        """Failure detection timestamps, seconds since trace epoch."""
        return self._column(
            "error_times",
            lambda: np.fromiter(
                (t.error_time for t in self._tickets), dtype=float, count=len(self)
            ),
        )

    @property
    def op_times(self) -> np.ndarray:
        """Operator close timestamps; ``nan`` where the ticket has none."""
        return self._column(
            "op_times",
            lambda: np.fromiter(
                (
                    np.nan if t.op_time is None else t.op_time
                    for t in self._tickets
                ),
                dtype=float,
                count=len(self),
            ),
        )

    @property
    def response_times(self) -> np.ndarray:
        """``op_time - error_time`` in seconds; ``nan`` where undefined."""
        return self._column(
            "response_times", lambda: self.op_times - self.error_times
        )

    @property
    def category_codes(self) -> np.ndarray:
        """Integer code per ticket, index into :data:`CATEGORY_ORDER`."""
        return self._column(
            "category_codes",
            lambda: np.fromiter(
                (_CATEGORY_CODE[t.category] for t in self._tickets),
                dtype=np.int8,
                count=len(self),
            ),
        )

    @property
    def component_codes(self) -> np.ndarray:
        """Integer code per ticket, index into :data:`COMPONENT_ORDER`."""
        return self._column(
            "component_codes",
            lambda: np.fromiter(
                (_COMPONENT_CODE[t.error_device] for t in self._tickets),
                dtype=np.int8,
                count=len(self),
            ),
        )

    @property
    def host_ids(self) -> np.ndarray:
        return self._column(
            "host_ids",
            lambda: np.fromiter(
                (t.host_id for t in self._tickets), dtype=np.int64, count=len(self)
            ),
        )

    @property
    def positions(self) -> np.ndarray:
        """Rack slot numbers."""
        return self._column(
            "positions",
            lambda: np.fromiter(
                (t.error_position for t in self._tickets),
                dtype=np.int32,
                count=len(self),
            ),
        )

    @property
    def deployed_ats(self) -> np.ndarray:
        return self._column(
            "deployed_ats",
            lambda: np.fromiter(
                (t.deployed_at for t in self._tickets), dtype=float, count=len(self)
            ),
        )

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def where(self, mask: np.ndarray) -> "FOTDataset":
        """Subset by boolean mask (vectorized filters build the mask from
        the columnar views)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(
                f"mask shape {mask.shape} does not match dataset of {len(self)}"
            )
        return FOTDataset([t for t, keep in zip(self._tickets, mask) if keep])

    def filter(self, predicate: Callable[[FOT], bool]) -> "FOTDataset":
        """Subset by per-ticket predicate."""
        return FOTDataset([t for t in self._tickets if predicate(t)])

    def failures(self) -> "FOTDataset":
        """Tickets in D_fixing or D_error — the paper's failure
        definition, excluding false alarms (Section II)."""
        false_code = _CATEGORY_CODE[FOTCategory.FALSE_ALARM]
        return self.where(self.category_codes != false_code)

    def of_category(self, category: FOTCategory) -> "FOTDataset":
        return self.where(self.category_codes == _CATEGORY_CODE[category])

    def of_component(self, component: ComponentClass) -> "FOTDataset":
        return self.where(self.component_codes == _COMPONENT_CODE[component])

    def of_idc(self, idc: str) -> "FOTDataset":
        return self.filter(lambda t: t.host_idc == idc)

    def of_product_line(self, line: str) -> "FOTDataset":
        return self.filter(lambda t: t.product_line == line)

    def of_source(self, source: DetectionSource) -> "FOTDataset":
        return self.filter(lambda t: t.source is source)

    def between(self, start: float, end: float) -> "FOTDataset":
        """Tickets with ``start <= error_time < end``."""
        times = self.error_times
        return self.where((times >= start) & (times < end))

    def sorted_by_time(self) -> "FOTDataset":
        order = np.argsort(self.error_times, kind="stable")
        return FOTDataset([self._tickets[i] for i in order])

    def with_op_time(self) -> "FOTDataset":
        """Tickets carrying an operator close time (RT is defined)."""
        return self.where(~np.isnan(self.op_times))

    def duplicate_suspect_mask(self, window_seconds: float = 86400.0) -> np.ndarray:
        """Boolean mask flagging stateless-FMS re-open suspects: tickets
        on the same physical component within ``window_seconds`` of the
        previous ticket on that component (the §VII-B pathology).  Drop
        them with ``dataset.where(~mask)``."""
        mask = np.zeros(len(self), dtype=bool)
        order = np.argsort(self.error_times, kind="stable")
        last_seen: Dict[tuple, float] = {}
        for idx in order:
            ticket = self._tickets[idx]
            prev = last_seen.get(ticket.component_key)
            if prev is not None and ticket.error_time - prev <= window_seconds:
                mask[idx] = True
            last_seen[ticket.component_key] = ticket.error_time
        return mask

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def _group_by_key(self, key: Callable[[FOT], object]) -> Dict[object, "FOTDataset"]:
        buckets: Dict[object, List[FOT]] = {}
        for ticket in self._tickets:
            buckets.setdefault(key(ticket), []).append(ticket)
        return {k: FOTDataset(v) for k, v in buckets.items()}

    def by_component(self) -> Dict[ComponentClass, "FOTDataset"]:
        return self._group_by_key(lambda t: t.error_device)

    def by_category(self) -> Dict[FOTCategory, "FOTDataset"]:
        return self._group_by_key(lambda t: t.category)

    def by_idc(self) -> Dict[str, "FOTDataset"]:
        return self._group_by_key(lambda t: t.host_idc)

    def by_product_line(self) -> Dict[str, "FOTDataset"]:
        return self._group_by_key(lambda t: t.product_line)

    def by_host(self) -> Dict[int, "FOTDataset"]:
        return self._group_by_key(lambda t: t.host_id)

    def by_failure_type(self) -> Dict[str, "FOTDataset"]:
        return self._group_by_key(lambda t: t.error_type)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    @property
    def idcs(self) -> List[str]:
        """Distinct data-center names, sorted."""
        return sorted({t.host_idc for t in self._tickets})

    @property
    def product_lines(self) -> List[str]:
        """Distinct product-line names, sorted."""
        return sorted({t.product_line for t in self._tickets})

    @property
    def span_seconds(self) -> float:
        """Time between the first and last ticket; 0 for < 2 tickets."""
        if len(self) < 2:
            return 0.0
        times = self.error_times
        return float(times.max() - times.min())

    def concat(self, other: "FOTDataset") -> "FOTDataset":
        return FOTDataset(list(self._tickets) + list(other._tickets))

    def summary(self) -> Dict[str, object]:
        """Cheap headline numbers, mostly for logging and the CLI."""
        return {
            "tickets": len(self),
            "failures": len(self.failures()),
            "idcs": len(self.idcs),
            "product_lines": len(self.product_lines),
            "span_days": self.span_seconds / 86400.0,
            "hosts": int(np.unique(self.host_ids).size) if len(self) else 0,
        }


__all__ = ["FOTDataset", "COMPONENT_ORDER", "CATEGORY_ORDER"]
