"""The FOT dataset container every analysis consumes.

:class:`FOTDataset` is a thin, immutable **view** over a
:class:`~repro.core.columns.ColumnStore` (struct-of-arrays storage):

* subsets (`failures()`, `where()`, `of_idc()`, ...) are index arrays
  into the shared parent store — **no tickets are copied, and no
  :class:`~repro.core.ticket.FOT` objects are allocated**;
* columns of a view are fancy-indexed from the store lazily and
  memoized, so the statistical analyses vectorize instead of looping;
* group-bys (`by_component()`, `by_idc()`, ...) partition one stable
  ``argsort`` into a dict of views, preserving first-appearance order;
* ``FOT`` dataclasses materialize only on demand — iteration,
  ``dataset[i]`` and the ``tickets`` property — and are memoized per
  store row.

The container is deliberately schema-first: a real ticket dump loaded
via :mod:`repro.core.io` behaves identically to the synthetic trace.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    overload,
)

import numpy as np
from numpy.typing import ArrayLike

from repro.core.columns import (
    CATEGORY_CODE,
    CATEGORY_ORDER,
    COMPONENT_CODE,
    COMPONENT_ORDER,
    SOURCE_CODE,
    SOURCE_ORDER,
    ColumnStore,
)
from repro.core.ticket import FOT
from repro.core.timeutil import DAY
from repro.core.types import ComponentClass, DetectionSource, FOTCategory

_COMPONENT_CODE = COMPONENT_CODE
_CATEGORY_CODE = CATEGORY_CODE


class FOTDataset:
    """An immutable collection of FOTs with columnar accessors.

    Constructing from an iterable of tickets wraps them in a fresh
    store; every derived subset shares that store and only carries an
    index array.  Use :meth:`from_store` to wrap a store built by a
    :class:`~repro.core.columns.ColumnBuilder` (loaders, pipeline).
    """

    def __init__(self, tickets: Iterable[FOT] = ()) -> None:
        self._store = ColumnStore.from_tickets(tickets)
        self._indices: Optional[np.ndarray] = None
        self._cols: Dict[str, np.ndarray] = {}
        self._gind: Optional[np.ndarray] = None
        self._tickets_memo: Optional[List[FOT]] = None
        self._fingerprint_memo: Optional[str] = None

    @classmethod
    def from_store(
        cls, store: ColumnStore, indices: Optional[np.ndarray] = None
    ) -> "FOTDataset":
        """A view of ``store``: all rows (``indices=None``) or the given
        row index array."""
        dataset = cls.__new__(cls)
        dataset._store = store
        if indices is None:
            dataset._indices = None
        else:
            indices = np.asarray(indices, dtype=np.int64)
            indices.setflags(write=False)
            dataset._indices = indices
        dataset._cols = {}
        dataset._gind = None
        dataset._tickets_memo = None
        dataset._fingerprint_memo = None
        return dataset

    # ------------------------------------------------------------------
    # view plumbing
    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        """The shared column store backing this view (read-only)."""
        return self._store

    def _gindices(self) -> np.ndarray:
        """Global store-row indices of this view."""
        if self._indices is not None:
            return self._indices
        if self._gind is None:
            gind = np.arange(self._store.n, dtype=np.int64)
            gind.setflags(write=False)
            self._gind = gind
        return self._gind

    def fingerprint(self) -> str:
        """Content fingerprint of this *view*: the store's content hash
        plus a hash of the view's index array.  Any filter/take/concat
        yields a different fingerprint (different rows or row order);
        the :class:`~repro.engine.cache.AnalysisCache` keys on it."""
        if self._fingerprint_memo is None:
            store_fp = self._store.fingerprint()
            if self._indices is None:
                view_fp = "all"
            else:
                import hashlib

                view_fp = hashlib.sha256(
                    np.ascontiguousarray(self._indices).tobytes()
                ).hexdigest()[:16]
            self._fingerprint_memo = f"{store_fp}:{view_fp}"
        return self._fingerprint_memo

    def _view(self, rows: np.ndarray) -> "FOTDataset":
        """A sibling view from *global* store rows."""
        return FOTDataset.from_store(self._store, rows)

    def _take_local(self, local_rows: np.ndarray) -> "FOTDataset":
        """A sub-view from already-validated *local* positions."""
        if self._indices is None:
            rows = np.asarray(local_rows, dtype=np.int64)
        else:
            rows = self._indices[local_rows]
        return self._view(rows)

    def _col(self, name: str) -> np.ndarray:
        array = self._cols.get(name)
        if array is None:
            base = self._store.column(name)
            if self._indices is None:
                array = base
            else:
                array = base[self._indices]
                array.setflags(write=False)
            self._cols[name] = array
        return array

    def _derived(self, name: str, build: Callable[[], np.ndarray]) -> np.ndarray:
        array = self._cols.get(name)
        if array is None:
            array = build()
            array.setflags(write=False)
            self._cols[name] = array
        return array

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._indices is None:
            return self._store.n
        return int(self._indices.size)

    def __iter__(self) -> Iterator[FOT]:
        store = self._store
        if self._indices is None:
            for row in range(store.n):
                yield store.ticket(row)
        else:
            for row in self._indices:
                yield store.ticket(int(row))

    @overload
    def __getitem__(self, index: slice) -> "FOTDataset": ...

    @overload
    def __getitem__(self, index: int) -> FOT: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[FOT, "FOTDataset"]:
        if isinstance(index, slice):
            return self._view(self._gindices()[index])
        row = int(index)
        n = len(self)
        if row < 0:
            row += n
        if not 0 <= row < n:
            raise IndexError(f"index {index} out of range for dataset of {n}")
        if self._indices is not None:
            row = int(self._indices[row])
        return self._store.ticket(row)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FOTDataset({len(self)} tickets)"

    @property
    def tickets(self) -> Sequence[FOT]:
        """The tickets of this view, materializing (and memoizing) them
        on first access (do not mutate)."""
        if self._tickets_memo is None:
            self._tickets_memo = list(iter(self))
        return self._tickets_memo

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------
    @property
    def error_times(self) -> np.ndarray:
        """Failure detection timestamps, seconds since trace epoch."""
        return self._col("error_times")

    @property
    def op_times(self) -> np.ndarray:
        """Operator close timestamps; ``nan`` where the ticket has none."""
        return self._col("op_times")

    @property
    def response_times(self) -> np.ndarray:
        """``op_time - error_time`` in seconds; ``nan`` where undefined."""
        return self._derived(
            "response_times", lambda: self.op_times - self.error_times
        )

    @property
    def category_codes(self) -> np.ndarray:
        """Integer code per ticket, index into :data:`CATEGORY_ORDER`."""
        return self._col("category_codes")

    @property
    def component_codes(self) -> np.ndarray:
        """Integer code per ticket, index into :data:`COMPONENT_ORDER`."""
        return self._col("component_codes")

    @property
    def source_codes(self) -> np.ndarray:
        """Integer code per ticket, index into :data:`SOURCE_ORDER`."""
        return self._col("source_codes")

    @property
    def action_codes(self) -> np.ndarray:
        """Integer code per ticket into the operator-action order; -1
        where the ticket carries no action."""
        return self._col("action_codes")

    @property
    def host_ids(self) -> np.ndarray:
        return self._col("host_ids")

    @property
    def fot_ids(self) -> np.ndarray:
        return self._col("fot_ids")

    @property
    def positions(self) -> np.ndarray:
        """Rack slot numbers."""
        return self._col("positions")

    @property
    def device_slots(self) -> np.ndarray:
        """Component slot index on the server."""
        return self._col("device_slots")

    @property
    def deployed_ats(self) -> np.ndarray:
        return self._col("deployed_ats")

    @property
    def idc_codes(self) -> np.ndarray:
        """Interned data-center code per ticket (see :attr:`idc_table`)."""
        return self._col("idc_codes")

    @property
    def product_line_codes(self) -> np.ndarray:
        return self._col("product_line_codes")

    @property
    def error_type_codes(self) -> np.ndarray:
        return self._col("error_type_codes")

    @property
    def operator_id_codes(self) -> np.ndarray:
        """Interned operator-id code per ticket; -1 where absent."""
        return self._col("operator_id_codes")

    @property
    def error_details(self) -> np.ndarray:
        """Free-form detail strings (object column)."""
        return self._col("error_details")

    @property
    def idc_table(self) -> Tuple[str, ...]:
        """Interned data-center names, indexed by :attr:`idc_codes`."""
        return self._store.table("idc")

    @property
    def product_line_table(self) -> Tuple[str, ...]:
        return self._store.table("product_line")

    @property
    def error_type_table(self) -> Tuple[str, ...]:
        return self._store.table("error_type")

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def where(self, mask: np.ndarray) -> "FOTDataset":
        """Subset by boolean mask (vectorized filters build the mask
        from the columnar views).  Integer index arrays are rejected —
        use :meth:`take` for those."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TypeError(
                f"where() expects a boolean mask, got dtype {mask.dtype}; "
                "use take(indices) to subset by integer positions"
            )
        if mask.shape != (len(self),):
            raise ValueError(
                f"mask shape {mask.shape} does not match dataset of {len(self)}"
            )
        if self._indices is None:
            rows = np.flatnonzero(mask)
        else:
            rows = self._indices[mask]
        return self._view(rows)

    def take(self, indices: ArrayLike) -> "FOTDataset":
        """Subset by integer positions (negative indices allowed),
        preserving the given order."""
        indices = np.asarray(indices)
        if indices.dtype == np.bool_:
            raise TypeError(
                "take() expects integer indices; use where(mask) for boolean masks"
            )
        if indices.size == 0:
            indices = indices.astype(np.int64)
        elif not np.issubdtype(indices.dtype, np.integer):
            raise TypeError(
                f"take() expects integer indices, got dtype {indices.dtype}"
            )
        if indices.ndim != 1:
            raise ValueError(
                f"take() expects a 1-D index array, got shape {indices.shape}"
            )
        n = len(self)
        local = indices.astype(np.int64, copy=True)
        negative = local < 0
        if negative.any():
            local[negative] += n
        if local.size and (local.min() < 0 or local.max() >= n):
            raise IndexError(f"take() index out of range for dataset of {n}")
        return self._take_local(local)

    def filter(self, predicate: Callable[[FOT], bool]) -> "FOTDataset":
        """Subset by per-ticket predicate (materializes tickets; prefer
        mask-based filters on the columns for hot paths)."""
        n = len(self)
        keep = np.fromiter(
            (bool(predicate(t)) for t in self), dtype=bool, count=n
        )
        return self.where(keep)

    def failures(self) -> "FOTDataset":
        """Tickets in D_fixing or D_error — the paper's failure
        definition, excluding false alarms (Section II)."""
        false_code = _CATEGORY_CODE[FOTCategory.FALSE_ALARM]
        return self.where(self.category_codes != false_code)

    def of_category(self, category: FOTCategory) -> "FOTDataset":
        return self.where(self.category_codes == _CATEGORY_CODE[category])

    def of_component(self, component: ComponentClass) -> "FOTDataset":
        return self.where(self.component_codes == _COMPONENT_CODE[component])

    def of_idc(self, idc: str) -> "FOTDataset":
        code = self._store.code_for("idc", idc)
        return self.where(self.idc_codes == code)

    def of_product_line(self, line: str) -> "FOTDataset":
        code = self._store.code_for("product_line", line)
        return self.where(self.product_line_codes == code)

    def of_source(self, source: DetectionSource) -> "FOTDataset":
        return self.where(self.source_codes == SOURCE_CODE[source])

    def between(self, start: float, end: float) -> "FOTDataset":
        """Tickets with ``start <= error_time < end``."""
        times = self.error_times
        return self.where((times >= start) & (times < end))

    def sorted_by_time(self) -> "FOTDataset":
        order = np.argsort(self.error_times, kind="stable")
        return self._take_local(order)

    def with_op_time(self) -> "FOTDataset":
        """Tickets carrying an operator close time (RT is defined)."""
        return self.where(~np.isnan(self.op_times))

    def duplicate_suspect_mask(self, window_seconds: float = 86400.0) -> np.ndarray:
        """Boolean mask flagging stateless-FMS re-open suspects: tickets
        on the same physical component within ``window_seconds`` of the
        previous ticket on that component (the §VII-B pathology).  Drop
        them with ``dataset.where(~mask)``.

        Vectorized: one lexsort over (component key, time) and a
        consecutive-gap comparison replace the per-ticket dict walk.
        """
        n = len(self)
        mask = np.zeros(n, dtype=bool)
        if n < 2:
            mask.setflags(write=False)
            return mask
        times = self.error_times
        # Sort by component key, then time, then original position — the
        # same visit order as iterating tickets in stable time order and
        # tracking the previous ticket per component key.
        perm = np.lexsort(
            (
                np.arange(n),
                times,
                self.device_slots,
                self.component_codes,
                self.host_ids,
            )
        )
        host_s = self.host_ids[perm]
        comp_s = self.component_codes[perm]
        slot_s = self.device_slots[perm]
        time_s = times[perm]
        same_key = (
            (host_s[1:] == host_s[:-1])
            & (comp_s[1:] == comp_s[:-1])
            & (slot_s[1:] == slot_s[:-1])
        )
        close = (time_s[1:] - time_s[:-1]) <= window_seconds
        mask[perm[1:][same_key & close]] = True
        mask.setflags(write=False)
        return mask

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def _grouped(self, values: np.ndarray) -> List[Tuple[int, "FOTDataset"]]:
        """Partition this view by an integer key column with a single
        stable argsort; groups come back in first-appearance order and
        each keeps its tickets in original view order."""
        values = np.asarray(values)
        n = values.size
        if n == 0:
            return []
        order = np.argsort(values, kind="stable")
        ordered = values[order]
        bounds = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [n]))
        groups = sorted(
            ((int(ordered[s]), order[s:e]) for s, e in zip(starts, ends)),
            key=lambda group: int(group[1][0]),
        )
        return [(key, self._take_local(rows)) for key, rows in groups]

    def by_component(self) -> Dict[ComponentClass, "FOTDataset"]:
        return {
            COMPONENT_ORDER[code]: view
            for code, view in self._grouped(self.component_codes)
        }

    def by_category(self) -> Dict[FOTCategory, "FOTDataset"]:
        return {
            CATEGORY_ORDER[code]: view
            for code, view in self._grouped(self.category_codes)
        }

    def by_idc(self) -> Dict[str, "FOTDataset"]:
        table = self.idc_table
        return {table[code]: view for code, view in self._grouped(self.idc_codes)}

    def by_product_line(self) -> Dict[str, "FOTDataset"]:
        table = self.product_line_table
        return {
            table[code]: view
            for code, view in self._grouped(self.product_line_codes)
        }

    def by_host(self) -> Dict[int, "FOTDataset"]:
        return {code: view for code, view in self._grouped(self.host_ids)}

    def by_failure_type(self) -> Dict[str, "FOTDataset"]:
        table = self.error_type_table
        return {
            table[code]: view
            for code, view in self._grouped(self.error_type_codes)
        }

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    @property
    def idcs(self) -> List[str]:
        """Distinct data-center names, sorted."""
        table = self.idc_table
        return sorted(table[code] for code in np.unique(self.idc_codes))

    @property
    def product_lines(self) -> List[str]:
        """Distinct product-line names, sorted."""
        table = self.product_line_table
        return sorted(table[code] for code in np.unique(self.product_line_codes))

    @property
    def span_seconds(self) -> float:
        """Time between the first and last ticket; 0 for < 2 tickets."""
        if len(self) < 2:
            return 0.0
        times = self.error_times
        return float(times.max() - times.min())

    def concat(self, other: "FOTDataset") -> "FOTDataset":
        """Concatenate two datasets.  Views of the same store just join
        their index arrays; distinct stores are merged column-wise
        (string tables re-interned) — neither path allocates tickets."""
        if self._store is other._store:
            rows = np.concatenate([self._gindices(), other._gindices()])
            return self._view(rows)
        store = ColumnStore.concatenate(
            [
                (self._store, self._gindices()),
                (other._store, other._gindices()),
            ]
        )
        return FOTDataset.from_store(store)

    @classmethod
    def concat_many(cls, datasets: Sequence["FOTDataset"]) -> "FOTDataset":
        """Concatenate many datasets in one pass.

        This is the streaming append path: the live ingestion store
        compacts its pending batch views into the base store with a
        single :meth:`ColumnStore.concatenate` call (one copy of every
        column) instead of pairwise :meth:`concat` (which would copy
        the whole store once per batch).
        """
        parts = [d for d in datasets if len(d)]
        if not parts:
            return cls()
        if len(parts) == 1:
            single = parts[0]
            return cls.from_store(single._store, single._indices)
        store = ColumnStore.concatenate(
            [(d._store, d._gindices()) for d in parts]
        )
        return cls.from_store(store)

    def summary(self) -> Dict[str, object]:
        """Cheap headline numbers, mostly for logging and the CLI."""
        return {
            "tickets": len(self),
            "failures": len(self.failures()),
            "idcs": len(self.idcs),
            "product_lines": len(self.product_lines),
            "span_days": self.span_seconds / DAY,
            "hosts": int(np.unique(self.host_ids).size) if len(self) else 0,
        }


__all__ = [
    "FOTDataset",
    "COMPONENT_ORDER",
    "CATEGORY_ORDER",
    "SOURCE_ORDER",
]
