"""The failure operation ticket (FOT) record.

Section II of the paper lists the fields every FOT carries: ``id``,
``host_id``, ``hostname``, ``host_idc``, ``error_device``, ``error_type``,
``error_time``, ``error_position``, ``error_detail`` — plus, for tickets
in D_fixing and D_falsealarm, the action taken, the operator's user ID and
the ``op_time`` of the action.

The reproduction adds a few fields the paper's analyses need but obtains
from server metadata rather than the ticket itself (product line, server
deployment time, component slot), and keeps them on the ticket for
convenience.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.types import (
    ComponentClass,
    DetectionSource,
    FOTCategory,
    OperatorAction,
)


@dataclass(frozen=True)
class FOT:
    """One failure operation ticket.

    Attributes:
        fot_id: Unique ticket id.
        host_id: Numeric server id (unique fleet-wide).
        hostname: Human-readable server name.
        host_idc: Data center (IDC) name the server lives in.
        error_device: Component class the failure was reported against.
        error_type: Failure type name (see :mod:`repro.core.failure_types`).
        error_time: Failure detection timestamp (seconds since trace epoch).
        error_position: Rack slot number of the server, 0-based.
        error_detail: Free-form detail string (device path, sensor, ...).
        category: Ticket category (Table I).
        source: How the ticket entered the FMS (syslog/polling/manual).
        product_line: Product line that owns the server.
        deployed_at: Server deployment timestamp (for lifecycle analysis).
        device_slot: Component slot index on the server (e.g. which of the
            twelve drives); lets repeat analysis tell components apart.
        action: Operator's closing action; ``None`` while still open or
            for D_error tickets the reproduction closes implicitly.
        operator_id: Operator user id for the closing action.
        op_time: Timestamp the operator closed the ticket (issued the RO
            or marked it not-fixing); ``None`` for unhandled tickets.
        detail: Extra metadata (simulator ground truth such as the batch
            event id); analyses never rely on it.
    """

    fot_id: int
    host_id: int
    hostname: str
    host_idc: str
    error_device: ComponentClass
    error_type: str
    error_time: float
    error_position: int
    error_detail: str
    category: FOTCategory
    source: DetectionSource
    product_line: str
    deployed_at: float
    device_slot: int = 0
    action: Optional[OperatorAction] = None
    operator_id: Optional[str] = None
    op_time: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.error_time < 0:
            raise ValueError(f"error_time must be >= 0, got {self.error_time}")
        if self.op_time is not None and self.op_time < self.error_time:
            raise ValueError(
                "op_time must not precede error_time "
                f"({self.op_time} < {self.error_time})"
            )

    @property
    def is_failure(self) -> bool:
        """True for D_fixing and D_error tickets (the paper's definition
        of a failure, Section II)."""
        return self.category.counts_as_failure

    @property
    def response_time(self) -> Optional[float]:
        """Operator response time ``RT = op_time - error_time`` in
        seconds (Section VI), or ``None`` when the ticket has no
        operator action recorded (D_error / still open)."""
        if self.op_time is None:
            return None
        return self.op_time - self.error_time

    @property
    def component_key(self) -> tuple:
        """Identity of the physical component the ticket points at."""
        return (self.host_id, self.error_device, self.device_slot)

    def close(
        self, action: OperatorAction, operator_id: str, op_time: float
    ) -> "FOT":
        """Return a closed copy of this ticket.

        The category is re-derived from the action so a ticket queued as a
        candidate repair can still end up decommissioned (out-of-warranty)
        or marked a false alarm.
        """
        return replace(
            self,
            action=action,
            operator_id=operator_id,
            op_time=op_time,
            category=action.category,
        )


__all__ = ["FOT"]
