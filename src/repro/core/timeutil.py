"""Time arithmetic for FOT timestamps.

All timestamps in the library are **seconds since the trace epoch**
(float).  The default epoch is 2013-01-01 00:00 local time, which makes a
four-year trace end on 2016-12-31 — matching the study window of the
paper.  Keeping timestamps numeric (instead of ``datetime`` objects) lets
the simulator and the analyses vectorize with numpy; the helpers below
derive calendar facets (hour of day, day of week, month of service life)
with plain integer arithmetic.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Callable, NewType, TypeVar

import numpy as np
from numpy.typing import ArrayLike

# ---------------------------------------------------------------------------
# unit annotations
# ---------------------------------------------------------------------------
#: Distinct scalar types per time unit.  mypy treats them as
#: incompatible floats, and the reprolint dataflow engine
#: (``repro.devtools.dataflow``) reads the same names off annotations —
#: one source of truth for both checkers.
Seconds = NewType("Seconds", float)
Minutes = NewType("Minutes", float)
Hours = NewType("Hours", float)
Days = NewType("Days", float)
Months = NewType("Months", float)
Years = NewType("Years", float)

#: Unit names accepted by :func:`unit`.
UNIT_NAMES = ("seconds", "minutes", "hours", "days", "months", "years")

_F = TypeVar("_F", bound=Callable)


def unit(name: str) -> Callable[[_F], _F]:
    """Declare the time unit of a function's return value.

    Array-returning helpers cannot use the scalar NewTypes above, so
    they carry the unit as a marker attribute instead::

        @unit("days")
        def day_index(ts): ...

    The dataflow engine treats the declaration as ground truth and
    flags returns whose inferred unit disagrees.
    """
    if name not in UNIT_NAMES:
        raise ValueError(f"unknown time unit {name!r}; expected one of "
                         f"{UNIT_NAMES}")

    def mark(fn: _F) -> _F:
        fn.__repro_unit__ = name  # type: ignore[attr-defined]
        return fn

    return mark

#: Seconds in one minute / hour / day — used throughout the package.
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
#: The paper computes *monthly* failure rates; a fixed 30-day month keeps
#: month indexing simple and reproducible.
MONTH = 30.0 * DAY
YEAR = 365.0 * DAY

#: Calendar date of trace second 0.
TRACE_EPOCH = datetime(2013, 1, 1)
#: ``TRACE_EPOCH`` is a Tuesday; Monday == 0 in our day-of-week encoding.
_EPOCH_WEEKDAY = TRACE_EPOCH.weekday()

#: The paper examines D = 1411 days of data (Section V-A).
PAPER_TRACE_DAYS = 1411
PAPER_TRACE_SECONDS = PAPER_TRACE_DAYS * DAY


def to_datetime(ts: float) -> datetime:
    """Convert a trace timestamp to a calendar ``datetime``."""
    return TRACE_EPOCH + timedelta(seconds=float(ts))


@unit("seconds")
def from_datetime(dt: datetime) -> float:
    """Convert a calendar ``datetime`` to a trace timestamp."""
    return (dt - TRACE_EPOCH).total_seconds()


@unit("days")
def day_index(ts: ArrayLike) -> np.ndarray:
    """0-based day number of a timestamp (array-friendly)."""
    return np.asarray(ts, dtype=float) // DAY


@unit("hours")
def hour_of_day(ts: ArrayLike) -> np.ndarray:
    """Hour in ``0..23`` of a timestamp (array-friendly)."""
    return (np.asarray(ts, dtype=float) % DAY) // HOUR


def day_of_week(ts: ArrayLike) -> np.ndarray:
    """Day of week in ``0..6`` with Monday == 0 (array-friendly)."""
    return (day_index(ts) + _EPOCH_WEEKDAY) % 7


def is_weekend(ts: ArrayLike) -> np.ndarray:
    """True for Saturday/Sunday timestamps (array-friendly)."""
    return day_of_week(ts) >= 5


@unit("months")
def month_of_service(
    ts: ArrayLike, deployed_at: ArrayLike
) -> np.ndarray:
    """0-based month of service life at time ``ts`` for a component
    deployed at ``deployed_at`` (30-day months, array-friendly).

    Failures that predate deployment (which the simulator never emits,
    but a loaded real dataset might contain due to clock skew) land in
    month 0 rather than a negative month.
    """
    delta = np.asarray(ts, dtype=float) - np.asarray(deployed_at, dtype=float)
    return np.maximum(delta, 0.0) // MONTH


def format_duration(seconds: float) -> str:
    """Human-readable rendering used by the report tables.

    >>> format_duration(90)
    '1.5 min'
    >>> format_duration(7 * 86400)
    '7.0 days'
    """
    seconds = float(seconds)
    if seconds < MINUTE:
        return f"{seconds:.1f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f} h"
    return f"{seconds / DAY:.1f} days"


DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

__all__ = [
    "MINUTE",
    "Seconds",
    "Minutes",
    "Hours",
    "Days",
    "Months",
    "Years",
    "UNIT_NAMES",
    "unit",
    "HOUR",
    "DAY",
    "MONTH",
    "YEAR",
    "TRACE_EPOCH",
    "PAPER_TRACE_DAYS",
    "PAPER_TRACE_SECONDS",
    "DAY_NAMES",
    "to_datetime",
    "from_datetime",
    "day_index",
    "hour_of_day",
    "day_of_week",
    "is_weekend",
    "month_of_service",
    "format_duration",
]
