"""Vectorized group-by primitives for hot analysis paths.

The perf lint rules (RPL301/RPL304) forbid Python-level row loops in
the hot packages; the idiom that replaces ``for ticket in failures:
bucket[key(ticket)].append(...)`` is one stable argsort over an integer
key column plus boundary detection — O(n log n) in numpy instead of n
interpreter round-trips.  This module centralizes that idiom so every
analysis groups the same way:

* :func:`composite_key` packs two integer columns into one collision
  free ``int64`` key.
* :func:`group_slices` sorts a key column once and returns the group
  boundaries; callers slice per group (the per-*group* loop is over the
  handful of groups, not over n rows).

Both are pure functions over immutable inputs — safe on frozen
``ColumnStore`` column views.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def composite_key(major: np.ndarray, minor: np.ndarray) -> np.ndarray:
    """Pack two integer columns into one collision-free ``int64`` key.

    Keys order lexicographically by (major, minor).  ``minor`` may
    contain negative values (e.g. -1 sentinel codes); it is shifted to
    zero before packing.
    """
    major = np.asarray(major).astype(np.int64)
    minor = np.asarray(minor).astype(np.int64)
    if major.shape != minor.shape:
        raise ValueError(
            f"key columns differ in shape: {major.shape} vs {minor.shape}"
        )
    if major.size == 0:
        return major
    low = int(minor.min())
    span = int(minor.max()) - low + 1
    return major * span + (minor - low)


def group_slices(
    keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One stable sort over ``keys`` -> per-group index slices.

    Returns ``(order, starts, stops)``: ``order`` is the stable argsort
    of ``keys`` (ties keep input order, so time-sorted input stays
    time-sorted within each group); group ``g`` occupies
    ``order[starts[g]:stops[g]]`` and groups appear in ascending key
    order.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"expected a 1-D key array, got shape {keys.shape}")
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        empty.setflags(write=False)
        return empty, empty, empty
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    )
    stops = np.r_[starts[1:], sorted_keys.size]
    return order, starts, stops


__all__ = ["composite_key", "group_slices"]
