"""Columnar ticket storage — the struct-of-arrays substrate behind
:class:`~repro.core.dataset.FOTDataset`.

A :class:`ColumnStore` holds every ticket field as an immutable numpy
column: float64 timestamps, small integer codes for the categorical
enums (category / component / source / action), int-coded **interned
string tables** for the high-cardinality string fields (data center,
product line, failure type, operator id) and plain object columns for
the remaining per-ticket strings.  Datasets are *views* into a store
(index arrays), so filtering and grouping never copy tickets; the
:class:`~repro.core.ticket.FOT` dataclasses the public API hands out
are materialized lazily, one row at a time, and memoized.

Two ways to build a store:

* :meth:`ColumnStore.from_tickets` — wraps an existing list of ``FOT``
  objects; columns are derived lazily and the originals are kept, so
  iteration returns the exact objects that were passed in.
* :class:`ColumnBuilder` — append raw field values row by row (the
  loaders and the FMS pipeline use this) and :meth:`ColumnBuilder.build`
  a store without ever constructing intermediate ``FOT`` objects.

``ColumnStore.n_materialized`` counts on-demand materializations, so
tests can assert that subsetting and grouping allocate no tickets.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ticket import FOT
from repro.core.types import (
    ComponentClass,
    DetectionSource,
    FOTCategory,
    OperatorAction,
)

#: Stable integer coding for the categorical columns.  Codes index into
#: these tuples; analyses rely on the ordering being enum-declaration
#: order, exactly as the row-first implementation did.
COMPONENT_ORDER: Sequence[ComponentClass] = tuple(ComponentClass)
CATEGORY_ORDER: Sequence[FOTCategory] = tuple(FOTCategory)
SOURCE_ORDER: Sequence[DetectionSource] = tuple(DetectionSource)
ACTION_ORDER: Sequence[OperatorAction] = tuple(OperatorAction)

COMPONENT_CODE: Dict[ComponentClass, int] = {
    c: i for i, c in enumerate(COMPONENT_ORDER)
}
CATEGORY_CODE: Dict[FOTCategory, int] = {c: i for i, c in enumerate(CATEGORY_ORDER)}
SOURCE_CODE: Dict[DetectionSource, int] = {s: i for i, s in enumerate(SOURCE_ORDER)}
ACTION_CODE: Dict[OperatorAction, int] = {a: i for i, a in enumerate(ACTION_ORDER)}

#: Numeric / categorical columns: name -> (dtype, per-ticket getter).
_NUMERIC_BUILDERS = {
    "fot_ids": (np.int64, lambda t: t.fot_id),
    "host_ids": (np.int64, lambda t: t.host_id),
    "error_times": (np.float64, lambda t: t.error_time),
    "op_times": (np.float64, lambda t: np.nan if t.op_time is None else t.op_time),
    "deployed_ats": (np.float64, lambda t: t.deployed_at),
    "positions": (np.int32, lambda t: t.error_position),
    "device_slots": (np.int32, lambda t: t.device_slot),
    "category_codes": (np.int8, lambda t: CATEGORY_CODE[t.category]),
    "component_codes": (np.int8, lambda t: COMPONENT_CODE[t.error_device]),
    "source_codes": (np.int8, lambda t: SOURCE_CODE[t.source]),
    "action_codes": (
        np.int8,
        lambda t: -1 if t.action is None else ACTION_CODE[t.action],
    ),
}

#: Per-ticket Python objects kept as object columns (no interning).
_OBJECT_BUILDERS = {
    "hostnames": lambda t: t.hostname,
    "error_details": lambda t: t.error_detail,
    "details": lambda t: t.detail,
}

#: Interned string columns: codes-column name -> (table name, ticket
#: attribute, whether ``None`` is a legal value, coded as -1).
_INTERNED = {
    "idc_codes": ("idc", "host_idc", False),
    "product_line_codes": ("product_line", "product_line", False),
    "error_type_codes": ("error_type", "error_type", False),
    "operator_id_codes": ("operator_id", "operator_id", True),
}

COLUMN_NAMES: Tuple[str, ...] = (
    *_NUMERIC_BUILDERS, *_OBJECT_BUILDERS, *_INTERNED,
)

TABLE_NAMES: Tuple[str, ...] = tuple(spec[0] for spec in _INTERNED.values())

_TABLE_TO_CODES = {spec[0]: codes_name for codes_name, spec in _INTERNED.items()}


def compute_fingerprint(store: "ColumnStore") -> str:
    """Content hash of a store, computed *fresh* (never memoized).

    Covers every numeric/code column (raw bytes), the interned string
    columns (as values, see below) and the plain string columns.  The
    free-form ``details`` dict column is deliberately **excluded**: it
    carries generator ground-truth (tags, chain ids) that no analysis
    reads, and hashing arbitrary dicts stably is not worth the cost.

    Interned columns are hashed *canonically*: the raw codes are an
    artifact of construction order (the generator, the JSONL loader and
    a shard concatenation all intern in different orders), so each codes
    column is remapped through the sorted set of its **used** values and
    hashed together with those values.  Two stores holding identical
    ticket content therefore share a fingerprint however they were
    built — which is what lets :class:`~repro.engine.cache.
    AnalysisCache` entries transfer between a text-loaded dataset and
    its columnar conversion.

    :meth:`ColumnStore.fingerprint` memoizes this; the runtime sanitizer
    (:mod:`repro.devtools.sanitize`) calls it directly to detect
    content drift behind a stale memo.
    """
    digest = hashlib.sha256()
    digest.update(str(store.n).encode())
    for name in COLUMN_NAMES:
        if name == "details":
            continue
        column = store.column(name)
        digest.update(name.encode())
        if name in _INTERNED:
            table = store.table(_INTERNED[name][0])
            used = sorted({table[int(code)] for code in np.unique(column) if code >= 0})
            value_rank = {value: rank for rank, value in enumerate(used)}
            lookup = np.asarray(
                [value_rank.get(value, -1) for value in table], dtype=np.int64
            )
            if lookup.size:
                remapped = np.where(
                    column < 0, np.int64(-1), lookup[np.maximum(column, 0)]
                ).astype(np.int64)
            else:
                remapped = column.astype(np.int64)
            digest.update(remapped.tobytes())
            digest.update("\x1f".join(used).encode())
        elif column.dtype == object:
            for value in column:
                digest.update(str(value).encode())
                digest.update(b"\x1e")
        else:
            digest.update(str(column.dtype).encode())
            digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()


class ColumnStore:
    """Immutable struct-of-arrays storage for one batch of tickets.

    Stores are shared by every view derived from a dataset; all columns
    are marked non-writeable.  Do not mutate them.
    """

    __slots__ = (
        "n",
        "n_materialized",
        "_arrays",
        "_tables",
        "_table_index",
        "_ticket_cache",
        "_fingerprint",
        "_deferred",
    )

    def __init__(
        self,
        n: int,
        arrays: Dict[str, np.ndarray],
        tables: Dict[str, Tuple[str, ...]],
        table_index: Dict[str, Dict[str, int]],
        ticket_cache: np.ndarray,
        deferred: Optional[Dict[str, Callable[[], np.ndarray]]] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.n = int(n)
        self.n_materialized = 0
        self._arrays = arrays
        self._tables = tables
        self._table_index = table_index
        self._ticket_cache = ticket_cache
        self._fingerprint: Optional[str] = fingerprint
        self._deferred: Dict[str, Callable[[], np.ndarray]] = (
            {} if deferred is None else dict(deferred)
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tickets(cls, tickets: Iterable[FOT]) -> "ColumnStore":
        """Wrap an existing ticket sequence; columns build lazily and
        the original objects are returned on iteration."""
        ticket_list = list(tickets)
        cache = np.empty(len(ticket_list), dtype=object)
        for i, ticket in enumerate(ticket_list):
            cache[i] = ticket
        return cls(
            n=len(ticket_list),
            arrays={},
            tables={},
            table_index={},
            ticket_cache=cache,
        )

    @classmethod
    def from_columns(
        cls,
        n: int,
        arrays: Dict[str, np.ndarray],
        tables: Dict[str, Tuple[str, ...]],
    ) -> "ColumnStore":
        """Build from fully-populated columns (loader / pipeline path);
        tickets materialize lazily on demand."""
        missing = set(COLUMN_NAMES) - set(arrays)
        if missing:
            raise ValueError(f"ColumnStore.from_columns missing columns: {sorted(missing)}")
        for arr in arrays.values():
            arr.setflags(write=False)
        table_index = {
            name: {value: i for i, value in enumerate(table)}
            for name, table in tables.items()
        }
        return cls(
            n=n,
            arrays=dict(arrays),
            tables=dict(tables),
            table_index=table_index,
            ticket_cache=np.empty(n, dtype=object),
        )

    @classmethod
    def adopt_buffers(
        cls,
        n: int,
        arrays: Dict[str, np.ndarray],
        tables: Dict[str, Tuple[str, ...]],
        *,
        deferred: Optional[Dict[str, Callable[[], np.ndarray]]] = None,
        fingerprint: Optional[str] = None,
    ) -> "ColumnStore":
        """Zero-copy construction from externally-owned buffers — the
        :mod:`repro.core.storage` mmap load path.

        Unlike :meth:`from_columns` this never copies ``arrays`` (they
        may be ``np.memmap`` views into on-disk blobs) and accepts
        ``deferred`` thunks for columns that are expensive to
        materialize (the per-ticket object columns): a thunk runs once,
        on first :meth:`column` access, so opening a dataset stays
        near-constant in its size.  ``fingerprint`` pre-seeds the
        content-hash memo from a trusted source (the storage manifest),
        so warm :class:`~repro.engine.cache.AnalysisCache` lookups never
        re-hash column bytes; it must equal what
        :func:`compute_fingerprint` would return for these columns.
        """
        deferred = {} if deferred is None else dict(deferred)
        missing = set(COLUMN_NAMES) - set(arrays) - set(deferred)
        if missing:
            raise ValueError(
                f"ColumnStore.adopt_buffers missing columns: {sorted(missing)}"
            )
        for name, arr in arrays.items():
            if arr.shape != (n,):
                raise ValueError(
                    f"ColumnStore.adopt_buffers: column {name!r} has shape "
                    f"{arr.shape}, expected ({n},)"
                )
            arr.setflags(write=False)
        table_index = {
            name: {value: i for i, value in enumerate(table)}
            for name, table in tables.items()
        }
        return cls(
            n=n,
            arrays=dict(arrays),
            tables=dict(tables),
            table_index=table_index,
            ticket_cache=np.empty(n, dtype=object),
            deferred=deferred,
            fingerprint=fingerprint,
        )

    @classmethod
    def concatenate(
        cls, parts: Sequence[Tuple["ColumnStore", np.ndarray]]
    ) -> "ColumnStore":
        """Merge ``(store, row_indices)`` views into one store, remapping
        the interned code columns through a shared table.  Tickets
        already materialized in a part stay shared (no re-allocation)."""
        arrays: Dict[str, np.ndarray] = {}
        for name in (*_NUMERIC_BUILDERS, *_OBJECT_BUILDERS):
            chunks = [store.column(name)[idx] for store, idx in parts]
            dtype = _NUMERIC_BUILDERS[name][0] if name in _NUMERIC_BUILDERS else object
            arrays[name] = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=dtype)
            )
        tables: Dict[str, Tuple[str, ...]] = {}
        for codes_name, (table_name, _, _) in _INTERNED.items():
            index: Dict[str, int] = {}
            table: List[str] = []
            chunks = []
            for store, idx in parts:
                mapping: List[int] = []
                for value in store.table(table_name):
                    code = index.get(value)
                    if code is None:
                        code = len(table)
                        index[value] = code
                        table.append(value)
                    mapping.append(code)
                codes = store.column(codes_name)[idx]
                if mapping:
                    lookup = np.asarray(mapping, dtype=np.int32)
                    remapped = np.where(
                        codes < 0, np.int32(-1), lookup[np.maximum(codes, 0)]
                    ).astype(np.int32)
                else:
                    remapped = codes.astype(np.int32)
                chunks.append(remapped)
            arrays[codes_name] = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
            )
            tables[table_name] = tuple(table)
        caches = [store._ticket_cache[idx] for store, idx in parts]
        cache = np.concatenate(caches) if caches else np.empty(0, dtype=object)
        for arr in arrays.values():
            arr.setflags(write=False)
        table_index = {
            name: {value: i for i, value in enumerate(table)}
            for name, table in tables.items()
        }
        n = sum(int(idx.size) for _, idx in parts)
        return cls(
            n=n,
            arrays=arrays,
            tables=tables,
            table_index=table_index,
            ticket_cache=cache,
        )

    # ------------------------------------------------------------------
    # column / table access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The full-length column ``name``, building it from the ticket
        cache (ticket-wrapped stores) or a deferred thunk (adopted
        buffers) on first access."""
        arr = self._arrays.get(name)
        if arr is None:
            thunk = self._deferred.pop(name, None) if self._deferred else None
            if thunk is not None:
                arr = thunk()
                if arr.shape != (self.n,):
                    raise ValueError(
                        f"deferred column {name!r} materialized shape "
                        f"{arr.shape}, expected ({self.n},)"
                    )
                arr.setflags(write=False)
                self._arrays[name] = arr
            else:
                arr = self._build_column(name)
        return arr

    def _build_column(self, name: str) -> np.ndarray:
        tickets = self._ticket_cache
        if name in _NUMERIC_BUILDERS:
            dtype, get = _NUMERIC_BUILDERS[name]
            arr = np.fromiter((get(t) for t in tickets), dtype=dtype, count=self.n)
        elif name in _OBJECT_BUILDERS:
            get = _OBJECT_BUILDERS[name]
            arr = np.empty(self.n, dtype=object)
            for i, ticket in enumerate(tickets):
                arr[i] = get(ticket)
        elif name in _INTERNED:
            table_name, attr, noneable = _INTERNED[name]
            index: Dict[str, int] = {}
            table: List[str] = []
            codes = np.empty(self.n, dtype=np.int32)
            for i, ticket in enumerate(tickets):
                value = getattr(ticket, attr)
                if noneable and value is None:
                    codes[i] = -1
                    continue
                code = index.get(value)
                if code is None:
                    code = len(table)
                    index[value] = code
                    table.append(value)
                codes[i] = code
            self._tables[table_name] = tuple(table)
            self._table_index[table_name] = index
            arr = codes
        else:
            raise KeyError(f"unknown column {name!r}")
        arr.setflags(write=False)
        self._arrays[name] = arr
        return arr

    def table(self, name: str) -> Tuple[str, ...]:
        """The interned string table for ``name`` (``idc`` /
        ``product_line`` / ``error_type`` / ``operator_id``)."""
        if name not in self._tables:
            codes_name = _TABLE_TO_CODES.get(name)
            if codes_name is None:
                raise KeyError(f"unknown string table {name!r}")
            self.column(codes_name)
        return self._tables.get(name, ())

    def code_for(self, table_name: str, value: Optional[str]) -> int:
        """The integer code of ``value`` in a string table, or -1 when
        the value never occurs (so ``codes == code_for(...)`` is a valid
        never-matching filter)."""
        self.table(table_name)
        return self._table_index.get(table_name, {}).get(value, -1)

    # ------------------------------------------------------------------
    # content fingerprint
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the store (see :func:`compute_fingerprint`),
        memoized on first use — columns are immutable, so the memo can
        never go stale."""
        if self._fingerprint is None:
            self._fingerprint = compute_fingerprint(self)
        return self._fingerprint

    # ------------------------------------------------------------------
    # ticket materialization
    # ------------------------------------------------------------------
    def ticket(self, row: int) -> FOT:
        """The ``FOT`` at a store row, materializing and memoizing it on
        first access."""
        cached = self._ticket_cache[row]
        if cached is not None:
            return cached
        ticket = self._materialize(int(row))
        self._ticket_cache[row] = ticket
        return ticket

    def _materialize(self, row: int) -> FOT:
        self.n_materialized += 1
        col = self.column
        op_time = float(col("op_times")[row])
        action_code = int(col("action_codes")[row])
        operator_code = int(col("operator_id_codes")[row])
        return FOT(
            fot_id=int(col("fot_ids")[row]),
            host_id=int(col("host_ids")[row]),
            hostname=col("hostnames")[row],
            host_idc=self.table("idc")[int(col("idc_codes")[row])],
            error_device=COMPONENT_ORDER[int(col("component_codes")[row])],
            error_type=self.table("error_type")[int(col("error_type_codes")[row])],
            error_time=float(col("error_times")[row]),
            error_position=int(col("positions")[row]),
            error_detail=col("error_details")[row],
            category=CATEGORY_ORDER[int(col("category_codes")[row])],
            source=SOURCE_ORDER[int(col("source_codes")[row])],
            product_line=self.table("product_line")[
                int(col("product_line_codes")[row])
            ],
            deployed_at=float(col("deployed_ats")[row]),
            device_slot=int(col("device_slots")[row]),
            action=None if action_code < 0 else ACTION_ORDER[action_code],
            operator_id=None
            if operator_code < 0
            else self.table("operator_id")[operator_code],
            op_time=None if np.isnan(op_time) else op_time,
            detail=col("details")[row],
        )


class _Interner:
    """Append-side string interning: value -> dense int code."""

    __slots__ = ("index", "table")

    def __init__(self) -> None:
        self.index: Dict[str, int] = {}
        self.table: List[str] = []

    def intern(self, value: str) -> int:
        code = self.index.get(value)
        if code is None:
            code = len(self.table)
            self.index[value] = code
            self.table.append(value)
        return code


class ColumnBuilder:
    """Accumulates ticket fields row by row and builds a
    :class:`ColumnStore` — the zero-``FOT`` emission path used by the
    loaders and the FMS pipeline."""

    def __init__(self) -> None:
        self._fot_ids: List[int] = []
        self._host_ids: List[int] = []
        self._error_times: List[float] = []
        self._op_times: List[float] = []
        self._deployed_ats: List[float] = []
        self._positions: List[int] = []
        self._device_slots: List[int] = []
        self._category_codes: List[int] = []
        self._component_codes: List[int] = []
        self._source_codes: List[int] = []
        self._action_codes: List[int] = []
        self._hostnames: List[str] = []
        self._error_details: List[str] = []
        self._details: List[dict] = []
        self._idc = _Interner()
        self._product_line = _Interner()
        self._error_type = _Interner()
        self._operator_id = _Interner()
        self._idc_codes: List[int] = []
        self._product_line_codes: List[int] = []
        self._error_type_codes: List[int] = []
        self._operator_id_codes: List[int] = []

    def __len__(self) -> int:
        return len(self._fot_ids)

    def append(
        self,
        *,
        fot_id: int,
        host_id: int,
        hostname: str,
        host_idc: str,
        error_device: ComponentClass,
        error_type: str,
        error_time: float,
        error_position: int,
        error_detail: str,
        category: FOTCategory,
        source: DetectionSource,
        product_line: str,
        deployed_at: float,
        device_slot: int = 0,
        action: Optional[OperatorAction] = None,
        operator_id: Optional[str] = None,
        op_time: Optional[float] = None,
        detail: Optional[dict] = None,
    ) -> None:
        """Append one ticket's fields (same invariants as
        :class:`~repro.core.ticket.FOT`; validation happens before any
        column is touched, so a raise leaves the builder consistent)."""
        error_time = float(error_time)
        if error_time < 0:
            raise ValueError(f"error_time must be >= 0, got {error_time}")
        if op_time is not None:
            op_time = float(op_time)
            if op_time < error_time:
                raise ValueError(
                    "op_time must not precede error_time "
                    f"({op_time} < {error_time})"
                )
        category_code = CATEGORY_CODE[category]
        component_code = COMPONENT_CODE[error_device]
        source_code = SOURCE_CODE[source]
        action_code = -1 if action is None else ACTION_CODE[action]

        self._fot_ids.append(int(fot_id))
        self._host_ids.append(int(host_id))
        self._hostnames.append(hostname)
        self._idc_codes.append(self._idc.intern(host_idc))
        self._component_codes.append(component_code)
        self._error_type_codes.append(self._error_type.intern(error_type))
        self._error_times.append(error_time)
        self._positions.append(int(error_position))
        self._error_details.append(error_detail)
        self._category_codes.append(category_code)
        self._source_codes.append(source_code)
        self._product_line_codes.append(self._product_line.intern(product_line))
        self._deployed_ats.append(float(deployed_at))
        self._device_slots.append(int(device_slot))
        self._action_codes.append(action_code)
        self._operator_id_codes.append(
            -1 if operator_id is None else self._operator_id.intern(operator_id)
        )
        self._op_times.append(np.nan if op_time is None else op_time)
        self._details.append({} if detail is None else detail)

    def append_ticket(self, ticket: FOT) -> None:
        self.append(
            fot_id=ticket.fot_id,
            host_id=ticket.host_id,
            hostname=ticket.hostname,
            host_idc=ticket.host_idc,
            error_device=ticket.error_device,
            error_type=ticket.error_type,
            error_time=ticket.error_time,
            error_position=ticket.error_position,
            error_detail=ticket.error_detail,
            category=ticket.category,
            source=ticket.source,
            product_line=ticket.product_line,
            deployed_at=ticket.deployed_at,
            device_slot=ticket.device_slot,
            action=ticket.action,
            operator_id=ticket.operator_id,
            op_time=ticket.op_time,
            detail=ticket.detail,
        )

    def build(self) -> ColumnStore:
        n = len(self)
        arrays: Dict[str, np.ndarray] = {
            "fot_ids": np.asarray(self._fot_ids, dtype=np.int64),
            "host_ids": np.asarray(self._host_ids, dtype=np.int64),
            "error_times": np.asarray(self._error_times, dtype=np.float64),
            "op_times": np.asarray(self._op_times, dtype=np.float64),
            "deployed_ats": np.asarray(self._deployed_ats, dtype=np.float64),
            "positions": np.asarray(self._positions, dtype=np.int32),
            "device_slots": np.asarray(self._device_slots, dtype=np.int32),
            "category_codes": np.asarray(self._category_codes, dtype=np.int8),
            "component_codes": np.asarray(self._component_codes, dtype=np.int8),
            "source_codes": np.asarray(self._source_codes, dtype=np.int8),
            "action_codes": np.asarray(self._action_codes, dtype=np.int8),
            "idc_codes": np.asarray(self._idc_codes, dtype=np.int32),
            "product_line_codes": np.asarray(
                self._product_line_codes, dtype=np.int32
            ),
            "error_type_codes": np.asarray(self._error_type_codes, dtype=np.int32),
            "operator_id_codes": np.asarray(
                self._operator_id_codes, dtype=np.int32
            ),
        }
        for name, values in (
            ("hostnames", self._hostnames),
            ("error_details", self._error_details),
            ("details", self._details),
        ):
            column = np.empty(n, dtype=object)
            for i, value in enumerate(values):
                column[i] = value
            column.setflags(write=False)
            arrays[name] = column
        tables = {
            "idc": tuple(self._idc.table),
            "product_line": tuple(self._product_line.table),
            "error_type": tuple(self._error_type.table),
            "operator_id": tuple(self._operator_id.table),
        }
        return ColumnStore.from_columns(n, arrays, tables)


__all__ = [
    "COMPONENT_ORDER",
    "CATEGORY_ORDER",
    "SOURCE_ORDER",
    "ACTION_ORDER",
    "COMPONENT_CODE",
    "CATEGORY_CODE",
    "SOURCE_CODE",
    "ACTION_CODE",
    "COLUMN_NAMES",
    "TABLE_NAMES",
    "ColumnStore",
    "ColumnBuilder",
    "compute_fingerprint",
]
