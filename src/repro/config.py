"""Scenario configuration and presets.

A :class:`ScenarioConfig` fully determines a synthetic trace: the fleet
shape (:class:`FleetConfig`), the time horizon, the random seed and a
global ``scale`` knob that shrinks the fleet *and* the failure volume
together so small scenarios keep the same per-server statistics.

Presets:

* :func:`paper_scenario` — 24 data centers, ~100k servers, 1411 days,
  ~290k FOTs: the configuration every benchmark uses (optionally scaled
  down via ``scale``).
* :func:`small_scenario` — a few thousand servers for examples.
* :func:`tiny_scenario` — hundreds of servers for fast unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.core.timeutil import DAY, PAPER_TRACE_DAYS


@dataclass(frozen=True)
class SpatialProfile:
    """How failure risk varies with rack slot in one data center.

    ``kind`` is one of:

    * ``"uniform"`` — every slot identical (the paper's post-2014 DCs).
    * ``"hotspot"`` — uniform except a few hot slots (DC A in Fig. 8:
      slots near the top of the rack and next to the rack-level power
      module run several degrees warmer).
    * ``"gradient"`` — risk grows with slot height (under-floor cooling:
      the top of the rack is the last place cooling air reaches).
    """

    kind: str = "uniform"
    #: (slot, multiplier) pairs for ``hotspot`` profiles.
    hot_slots: Tuple[Tuple[int, float], ...] = ()
    #: Multiplier at the top slot for ``gradient`` profiles (bottom = 1).
    gradient_top: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "hotspot", "gradient"):
            raise ValueError(f"unknown spatial profile kind: {self.kind!r}")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the simulated fleet."""

    n_datacenters: int = 24
    #: Mean servers per data center (actual counts vary around this).
    servers_per_dc: int = 13000
    #: Slots per rack; operators leave some top/bottom slots empty.
    rack_slots: int = 40
    #: Racks sharing one power distribution unit.
    racks_per_pdu: int = 4
    #: Number of product lines; sizes follow a Zipf-like law.
    n_product_lines: int = 200
    #: Zipf exponent for product-line sizes.
    product_line_zipf: float = 1.1
    #: Hardware generations get deployed in yearly waves starting this
    #: many years *before* the trace epoch (ages up to ~7 years by the
    #: end of a 4-year trace, so ~28 % of failures land out-of-warranty).
    oldest_wave_years: float = 2.0
    #: Waves continue until this many years after the trace epoch.
    newest_wave_years: float = 3.5
    #: Effective warranty from deployment, after which failures become
    #: D_error (a nominal 3-year term plus procurement/burn-in lag);
    #: tuned so ~28 % of failures land out-of-warranty (Table I).
    warranty_years: float = 3.3
    #: Fraction of data centers "built after 2014" with modern, uniform
    #: cooling (the paper: ~90 % of post-2014 DCs look uniform).
    modern_dc_fraction: float = 10.0 / 24.0
    #: Per-DC spatial profiles for the legacy DCs are drawn from this mix
    #: (kind -> probability); modern DCs are always uniform.
    legacy_profile_mix: Dict[str, float] = field(
        default_factory=lambda: {"gradient": 0.55, "hotspot": 0.45}
    )


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything :func:`repro.simulation.trace.generate_trace` needs."""

    fleet: FleetConfig = field(default_factory=FleetConfig)
    #: Trace length in days; the paper examines D = 1411 days.
    horizon_days: float = float(PAPER_TRACE_DAYS)
    #: Target number of failure tickets (D_fixing + D_error) before
    #: scaling; the paper observes ~290k FOTs total.
    target_failures: int = 286_000
    #: Global scale knob in (0, 1]: multiplies fleet size and failure
    #: volume together.
    scale: float = 1.0
    #: FMS monitoring-coverage rollout, modelling the paper's stated
    #: limitation ("people incrementally rolled out FMS during the four
    #: years, and thus the actual coverage might vary").  0.0 (default)
    #: means full agent coverage from day one; a positive value means
    #: agent coverage ramps linearly from ``monitoring_initial_coverage``
    #: to 1.0 over that many years, and automatic detections on
    #: not-yet-monitored servers are silently lost (manual reports still
    #: get filed).
    monitoring_rollout_years: float = 0.0
    monitoring_initial_coverage: float = 0.5
    seed: int = 20170626

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.horizon_days <= 30:
            raise ValueError("horizon must exceed one month")
        if self.target_failures < 100:
            raise ValueError("target_failures too small to be meaningful")
        if self.monitoring_rollout_years < 0:
            raise ValueError("monitoring rollout cannot be negative")
        if not 0.0 <= self.monitoring_initial_coverage <= 1.0:
            raise ValueError(
                "monitoring_initial_coverage must be in [0, 1], got "
                f"{self.monitoring_initial_coverage}"
            )

    @property
    def horizon_seconds(self) -> float:
        return self.horizon_days * DAY

    @property
    def scaled_target_failures(self) -> int:
        return max(100, int(self.target_failures * self.scale))

    def scaled_fleet(self) -> FleetConfig:
        """Fleet config with server counts (and, below 10 % scale, the
        DC count) shrunk by ``scale``."""
        fleet = self.fleet
        if self.scale >= 1.0:
            return fleet
        n_dcs = fleet.n_datacenters
        servers = max(20, int(fleet.servers_per_dc * self.scale))
        if self.scale < 0.1:
            # Keep at least 6 DCs so spatial/per-DC analyses stay exercised.
            n_dcs = max(6, int(fleet.n_datacenters * self.scale * 10))
            servers = max(20, int(fleet.servers_per_dc * self.scale * fleet.n_datacenters / n_dcs))
        n_lines = max(12, int(fleet.n_product_lines * min(1.0, self.scale * 4)))
        return replace(
            fleet,
            n_datacenters=n_dcs,
            servers_per_dc=servers,
            n_product_lines=n_lines,
        )


def paper_scenario(scale: float = 1.0, seed: int = 20170626) -> ScenarioConfig:
    """The calibrated paper-scale scenario (~100k servers, ~290k FOTs at
    ``scale=1.0``)."""
    return ScenarioConfig(scale=scale, seed=seed)


def small_scenario(seed: int = 20170626) -> ScenarioConfig:
    """A few thousand servers / ~15k FOTs — comfortable for examples."""
    return ScenarioConfig(scale=0.05, seed=seed)


def tiny_scenario(seed: int = 20170626) -> ScenarioConfig:
    """Hundreds of servers / ~3k FOTs — fast enough for unit tests."""
    return ScenarioConfig(scale=0.01, seed=seed)


__all__ = [
    "SpatialProfile",
    "FleetConfig",
    "ScenarioConfig",
    "paper_scenario",
    "small_scenario",
    "tiny_scenario",
]
