"""The assembled fleet with columnar views for the simulator."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.types import ComponentClass
from repro.fleet.component import GENERATIONS
from repro.fleet.datacenter import DataCenter
from repro.fleet.product_line import ProductLine
from repro.fleet.server import Server
from repro.fleet.inventory import Inventory


class Fleet:
    """All data centers, product lines and servers of one scenario.

    Besides the object graph, the fleet exposes lazily-built columnar
    numpy views of the per-server fields the failure sampler reads in
    its inner loops (deployment times, slot-risk multipliers, component
    counts), so paper-scale sampling never iterates over ``Server``
    objects.
    """

    def __init__(
        self,
        datacenters: Sequence[DataCenter],
        product_lines: Sequence[ProductLine],
        servers: Sequence[Server],
    ):
        if not servers:
            raise ValueError("a fleet needs at least one server")
        self.datacenters: Tuple[DataCenter, ...] = tuple(datacenters)
        self.product_lines: Dict[str, ProductLine] = {
            pl.name: pl for pl in product_lines
        }
        self.servers: Tuple[Server, ...] = tuple(servers)
        self._dc_by_name = {dc.name: dc for dc in self.datacenters}
        self._columns: Dict[str, np.ndarray] = {}
        self._count_columns: Dict[ComponentClass, np.ndarray] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.servers)

    def datacenter(self, name: str) -> DataCenter:
        try:
            return self._dc_by_name[name]
        except KeyError:
            raise KeyError(f"unknown data center: {name!r}") from None

    def product_line(self, name: str) -> ProductLine:
        try:
            return self.product_lines[name]
        except KeyError:
            raise KeyError(f"unknown product line: {name!r}") from None

    # ------------------------------------------------------------------
    # columnar views
    # ------------------------------------------------------------------
    def _column(self, name: str, build) -> np.ndarray:
        col = self._columns.get(name)
        if col is None:
            col = build()
            col.setflags(write=False)
            self._columns[name] = col
        return col

    @property
    def deployed_ats(self) -> np.ndarray:
        return self._column(
            "deployed_ats",
            lambda: np.fromiter(
                (s.deployed_at for s in self.servers), dtype=float, count=len(self)
            ),
        )

    @property
    def positions(self) -> np.ndarray:
        return self._column(
            "positions",
            lambda: np.fromiter(
                (s.position for s in self.servers), dtype=np.int32, count=len(self)
            ),
        )

    @property
    def host_ids(self) -> np.ndarray:
        return self._column(
            "host_ids",
            lambda: np.fromiter(
                (s.host_id for s in self.servers), dtype=np.int64, count=len(self)
            ),
        )

    @property
    def idc_codes(self) -> np.ndarray:
        """Index into :attr:`datacenters` per server."""
        codes = {dc.name: i for i, dc in enumerate(self.datacenters)}
        return self._column(
            "idc_codes",
            lambda: np.fromiter(
                (codes[s.idc] for s in self.servers), dtype=np.int32, count=len(self)
            ),
        )

    @property
    def line_codes(self) -> np.ndarray:
        """Index into :attr:`line_names` per server."""
        codes = {name: i for i, name in enumerate(self.line_names)}
        return self._column(
            "line_codes",
            lambda: np.fromiter(
                (codes[s.product_line] for s in self.servers),
                dtype=np.int32,
                count=len(self),
            ),
        )

    @property
    def line_names(self) -> List[str]:
        return sorted(self.product_lines)

    @property
    def generation_codes(self) -> np.ndarray:
        codes = {g.name: i for i, g in enumerate(GENERATIONS)}
        return self._column(
            "generation_codes",
            lambda: np.fromiter(
                (codes[s.generation.name] for s in self.servers),
                dtype=np.int8,
                count=len(self),
            ),
        )

    @property
    def slot_risk(self) -> np.ndarray:
        """Per-server environment multiplier from the DC spatial profile."""

        def build() -> np.ndarray:
            per_dc = {
                dc.name: dc.slot_multipliers() for dc in self.datacenters
            }
            return np.fromiter(
                (per_dc[s.idc][s.position] for s in self.servers),
                dtype=float,
                count=len(self),
            )

        return self._column("slot_risk", build)

    def counts_for(self, component: ComponentClass) -> np.ndarray:
        """Per-server component count."""
        col = self._count_columns.get(component)
        if col is None:
            col = np.fromiter(
                (s.component_count(component) for s in self.servers),
                dtype=np.int32,
                count=len(self),
            )
            col.setflags(write=False)
            self._count_columns[component] = col
        return col

    # ------------------------------------------------------------------
    def servers_of_line(self, line: str) -> List[Server]:
        return [s for s in self.servers if s.product_line == line]

    def servers_of_idc(self, idc: str) -> List[Server]:
        return [s for s in self.servers if s.idc == idc]

    def cohorts(self) -> Dict[Tuple[str, str, str], np.ndarray]:
        """Homogeneous cohorts (idc, product line, generation) -> server
        row indices; batch-failure injectors draw their victims from one
        cohort ("same model, in the same cluster, serving the same
        product line")."""
        keys = [
            (s.idc, s.product_line, s.generation.name) for s in self.servers
        ]
        buckets: Dict[Tuple[str, str, str], List[int]] = {}
        for i, key in enumerate(keys):
            buckets.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.int64) for k, v in buckets.items()}

    def to_inventory(self) -> Inventory:
        """Export the per-server metadata table the analyses consume.

        Mirrors the paper: component counts are reported for HDD, SSD
        and CPU only; other classes fall back to one-per-server inside
        the analysis.
        """
        reported = (ComponentClass.HDD, ComponentClass.SSD, ComponentClass.CPU)
        return Inventory(
            host_ids=self.host_ids,
            idcs=[s.idc for s in self.servers],
            positions=self.positions,
            deployed_ats=self.deployed_ats,
            product_lines=[s.product_line for s in self.servers],
            component_counts={c: self.counts_for(c) for c in reported},
        )

    def summary(self) -> Dict[str, object]:
        return {
            "servers": len(self),
            "datacenters": len(self.datacenters),
            "product_lines": len(self.product_lines),
            "modern_dcs": sum(dc.is_modern for dc in self.datacenters),
        }


__all__ = ["Fleet"]
