"""Per-server inventory table used by the analyses.

The paper's lifecycle analysis (Section III-C) divides failure counts by
the number of properly-working components in each service-month, and the
spatial analysis (Section IV) normalizes failures by the number of
servers at each rack position.  Both denominators come from server
metadata, not from the tickets — so they live in this lightweight
columnar table, which the fleet can export and a real deployment could
load from CSV alongside its ticket dump.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.timeutil import MONTH
from repro.core.types import ComponentClass


class Inventory:
    """Columnar per-server metadata.

    All arrays are parallel, one entry per server:

    * ``host_ids`` — fleet-wide server ids.
    * ``idcs`` — data center name per server.
    * ``positions`` — rack slot per server.
    * ``deployed_ats`` — deployment timestamps (may be negative:
      deployed before the trace window opened).
    * ``product_lines`` — owning product line per server.
    * ``component_counts`` — mapping component class -> per-server count
      array.  Classes missing from the mapping fall back to "one per
      server", the paper's own approximation for components whose counts
      the dataset does not report.
    """

    def __init__(
        self,
        host_ids: Sequence[int],
        idcs: Sequence[str],
        positions: Sequence[int],
        deployed_ats: Sequence[float],
        product_lines: Sequence[str],
        component_counts: Optional[Mapping[ComponentClass, Sequence[int]]] = None,
    ):
        self.host_ids = np.asarray(host_ids, dtype=np.int64)
        self.positions = np.asarray(positions, dtype=np.int32)
        self.deployed_ats = np.asarray(deployed_ats, dtype=float)
        self.idcs = list(idcs)
        self.product_lines = list(product_lines)
        n = self.host_ids.size
        for name, length in [
            ("idcs", len(self.idcs)),
            ("positions", self.positions.size),
            ("deployed_ats", self.deployed_ats.size),
            ("product_lines", len(self.product_lines)),
        ]:
            if length != n:
                raise ValueError(f"inventory column {name} has {length} rows, expected {n}")
        self.component_counts: Dict[ComponentClass, np.ndarray] = {}
        for cls, counts in (component_counts or {}).items():
            arr = np.asarray(counts, dtype=np.int32)
            if arr.size != n:
                raise ValueError(f"component counts for {cls} have {arr.size} rows, expected {n}")
            self.component_counts[cls] = arr
        self._host_index: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.host_ids.size)

    @property
    def host_index(self) -> Dict[int, int]:
        """host_id -> row index."""
        if self._host_index is None:
            self._host_index = {int(h): i for i, h in enumerate(self.host_ids)}
        return self._host_index

    def counts_for(self, component: ComponentClass) -> np.ndarray:
        """Per-server component count, defaulting to one per server for
        classes the inventory does not report (the paper's assumption)."""
        counts = self.component_counts.get(component)
        if counts is None:
            return np.ones(len(self), dtype=np.int32)
        return counts

    # ------------------------------------------------------------------
    # denominators for the analyses
    # ------------------------------------------------------------------
    def servers_per_position(self, idc: Optional[str] = None) -> np.ndarray:
        """Server count per rack slot, optionally restricted to one DC."""
        if idc is None:
            positions = self.positions
        else:
            mask = np.fromiter(
                (name == idc for name in self.idcs), dtype=bool, count=len(self)
            )
            if not mask.any():
                raise ValueError(f"no servers in data center {idc!r}")
            positions = self.positions[mask]
        return np.bincount(positions).astype(float)

    def component_month_exposure(
        self,
        component: ComponentClass,
        n_months: int,
        window_start: float,
        window_end: float,
    ) -> np.ndarray:
        """Component-months of exposure for each month-of-service.

        ``out[m]`` is the (fractional) number of components that spent
        service-month ``m`` inside the observation window — the
        denominator of the normalized monthly failure rate in Figure 6.
        """
        if window_end <= window_start:
            raise ValueError("window must have positive length")
        counts = self.counts_for(component).astype(float)
        out = np.zeros(n_months, dtype=float)
        deployed = self.deployed_ats
        for m in range(n_months):
            starts = deployed + m * MONTH
            ends = starts + MONTH
            overlap = np.minimum(ends, window_end) - np.maximum(starts, window_start)
            frac = np.clip(overlap / MONTH, 0.0, 1.0)
            out[m] = float((counts * frac).sum())
        return out

    def idc_names(self) -> List[str]:
        return sorted(set(self.idcs))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    _CSV_BASE: ClassVar[Tuple[str, ...]] = (
        "host_id", "idc", "position", "deployed_at", "product_line",
    )

    def save_csv(self, path: Union[str, Path]) -> None:
        from repro.core.io import _atomic_write

        path = Path(path)
        count_cols = sorted(self.component_counts, key=lambda c: c.value)
        fields = [*self._CSV_BASE, *(f"n_{c.value}" for c in count_cols)]
        with _atomic_write(path, newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(fields)
            for i in range(len(self)):
                row = [
                    int(self.host_ids[i]),
                    self.idcs[i],
                    int(self.positions[i]),
                    float(self.deployed_ats[i]),
                    self.product_lines[i],
                ]
                row.extend(int(self.component_counts[c][i]) for c in count_cols)
                writer.writerow(row)

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "Inventory":
        path = Path(path)
        with path.open("r", encoding="utf-8", newline="") as fh:
            reader = csv.DictReader(fh)
            fields = reader.fieldnames or []
            missing = set(cls._CSV_BASE) - set(fields)
            if missing:
                raise ValueError(f"inventory CSV missing columns: {sorted(missing)}")
            count_cols = [
                ComponentClass(f[2:]) for f in fields if f.startswith("n_")
            ]
            host_ids, idcs, positions, deployed, lines = [], [], [], [], []
            counts: Dict[ComponentClass, List[int]] = {c: [] for c in count_cols}
            for row in reader:
                host_ids.append(int(row["host_id"]))
                idcs.append(row["idc"])
                positions.append(int(row["position"]))
                deployed.append(float(row["deployed_at"]))
                lines.append(row["product_line"])
                for c in count_cols:
                    counts[c].append(int(row[f"n_{c.value}"]))
        return cls(host_ids, idcs, positions, deployed, lines, counts)


__all__ = ["Inventory"]
