"""Fleet substrate: the physical world the failures happen in.

Models data centers (with per-slot cooling profiles and shared PDUs),
racks, servers (hardware generation, component counts, deployment time,
owning product line) and product lines (size, fault-tolerance level —
which drives operator response behaviour).

The builder assembles a whole fleet from a
:class:`~repro.config.FleetConfig`; :class:`~repro.fleet.inventory.Inventory`
is the lightweight per-server table the analyses use for exposure
normalization (lifecycle rates, rack-position occupancy) without needing
the full object graph.
"""

from repro.fleet.component import ServerGeneration, GENERATIONS
from repro.fleet.server import Server
from repro.fleet.rack import Rack
from repro.fleet.datacenter import DataCenter
from repro.fleet.product_line import ProductLine
from repro.fleet.inventory import Inventory
from repro.fleet.fleet import Fleet
from repro.fleet.builder import build_fleet

__all__ = [
    "ServerGeneration",
    "GENERATIONS",
    "Server",
    "Rack",
    "DataCenter",
    "ProductLine",
    "Inventory",
    "Fleet",
    "build_fleet",
]
