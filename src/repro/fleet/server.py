"""The server record.

Servers are plain slotted dataclasses — a paper-scale fleet holds ~100k
of them, so the representation stays lean and the simulator reads the
hot fields through the fleet's columnar views instead of touching these
objects in inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ComponentClass
from repro.fleet.component import ServerGeneration


@dataclass(frozen=True)
class Server:
    """One physical server.

    Attributes:
        host_id: Fleet-wide unique id.
        hostname: Human-readable name, e.g. ``"dc03-r012-s21"``.
        idc: Data center name.
        rack_id: Rack index within the data center.
        position: Slot number within the rack (0 = bottom).
        pdu_id: Power distribution unit feeding the server's rack.
        product_line: Owning product line name.
        generation: Hardware generation (component counts, model).
        deployed_at: Deployment timestamp, seconds relative to the trace
            epoch (negative = deployed before the study window opened).
    """

    host_id: int
    hostname: str
    idc: str
    rack_id: int
    position: int
    pdu_id: int
    product_line: str
    generation: ServerGeneration
    deployed_at: float

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError(f"position must be >= 0, got {self.position}")

    def component_count(self, component: ComponentClass) -> int:
        return self.generation.count(component)

    def age_seconds(self, at: float) -> float:
        """Service age at time ``at`` (clamped at zero)."""
        return max(0.0, at - self.deployed_at)

    def in_warranty(self, at: float, warranty_seconds: float) -> bool:
        """Whether a failure at time ``at`` is still covered."""
        return self.age_seconds(at) <= warranty_seconds


__all__ = ["Server"]
