"""Racks: slot occupancy and per-slot environment multipliers.

Two physical effects from Section IV live here:

* **Occupancy** — "operators often leave the top position and bottom
  position of the racks empty", so the spatial analysis must normalize
  failures by servers-per-slot, not assume full racks.
* **Per-slot risk** — legacy under-floor-cooled rooms run hotter near
  the top of the rack, and the custom rack design puts a power module
  next to slot 22; both raise the local failure rate (the paper measured
  motherboard temperatures several degrees above rack average there).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.config import SpatialProfile


@dataclass(frozen=True)
class Rack:
    """One rack within a data center.

    Attributes:
        rack_id: Index within the data center.
        idc: Owning data center name.
        n_slots: Physical slot count.
        pdu_id: Power distribution unit feeding this rack.
    """

    rack_id: int
    idc: str
    n_slots: int
    pdu_id: int

    def __post_init__(self) -> None:
        if self.n_slots <= 0:
            raise ValueError("rack needs at least one slot")


def slot_risk_multipliers(profile: SpatialProfile, n_slots: int) -> np.ndarray:
    """Per-slot failure-rate multiplier implied by a spatial profile.

    * ``uniform`` — all ones.
    * ``hotspot`` — ones except the configured hot slots.
    * ``gradient`` — linear ramp from 1 at slot 0 to ``gradient_top``.
    """
    mult = np.ones(n_slots, dtype=float)
    if profile.kind == "hotspot":
        for slot, factor in profile.hot_slots:
            if 0 <= slot < n_slots:
                mult[slot] = factor
    elif profile.kind == "gradient":
        if n_slots > 1:
            mult = np.linspace(1.0, profile.gradient_top, n_slots)
    return mult


def slot_occupancy_weights(n_slots: int, edge_vacancy: float = 0.5) -> np.ndarray:
    """Relative chance each slot holds a server.

    The two bottom and two top slots carry weight ``edge_vacancy`` —
    operators leave them empty more often — and everything else weight 1.
    """
    if not 0 <= edge_vacancy <= 1:
        raise ValueError(f"edge_vacancy must be in [0, 1], got {edge_vacancy}")
    weights = np.ones(n_slots, dtype=float)
    edge = min(2, n_slots // 2)
    weights[:edge] = edge_vacancy
    weights[n_slots - edge:] = edge_vacancy
    return weights


__all__ = ["Rack", "slot_risk_multipliers", "slot_occupancy_weights"]
