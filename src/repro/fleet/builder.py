"""Fleet assembly from a :class:`~repro.config.FleetConfig`.

The builder reproduces the structural facts the paper's analyses lean
on:

* dozens of data centers of very different sizes (per-DC MTBF in the
  paper spans 32–390 minutes, so sizes are lognormal, not equal);
* modern (post-2014) DCs with uniform cooling vs. legacy DCs with
  gradient or hot-spot slot profiles (Section IV / Table IV);
* hundreds of product lines with Zipf sizes, each owning whole racks in
  clusters (batch failures hit "the same model, in the same cluster,
  serving the same product line");
* incremental deployment in rack-sized waves over ~6.5 years, with the
  hardware generation implied by the deployment date.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.config import FleetConfig, SpatialProfile
from repro.core.timeutil import DAY, YEAR
from repro.fleet.component import GENERATIONS
from repro.fleet.datacenter import DataCenter
from repro.fleet.fleet import Fleet
from repro.fleet.product_line import ProductLine
from repro.fleet.rack import Rack, slot_occupancy_weights
from repro.fleet.server import Server

#: Hot slots of the legacy custom rack design: slot 22 sits next to the
#: rack-level power module, slot 35 is near the top where under-floor
#: cooling air arrives last (Section IV).
HOTSPOT_SLOTS: Tuple[Tuple[int, float], ...] = ((22, 2.0), (35, 2.2))
#: Slot-risk ramp for legacy gradient-cooled rooms.
GRADIENT_TOP = 3.2


def _spatial_profile(modern: bool, rng: np.random.Generator, mix) -> SpatialProfile:
    if modern:
        return SpatialProfile(kind="uniform")
    kinds = sorted(mix)
    probs = np.asarray([mix[k] for k in kinds], dtype=float)
    probs = probs / probs.sum()
    kind = str(rng.choice(kinds, p=probs))
    if kind == "hotspot":
        return SpatialProfile(kind="hotspot", hot_slots=HOTSPOT_SLOTS)
    if kind == "gradient":
        return SpatialProfile(kind="gradient", gradient_top=GRADIENT_TOP)
    return SpatialProfile(kind="uniform")


def _dc_sizes(config: FleetConfig, rng: np.random.Generator) -> np.ndarray:
    """Lognormal server counts per DC, mean ≈ ``servers_per_dc``."""
    sigma = 0.55
    raw = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=config.n_datacenters)
    sizes = np.maximum(
        20, (raw * config.servers_per_dc).round().astype(int)
    )
    return sizes


def _product_lines(
    config: FleetConfig, total_servers: int, rng: np.random.Generator
) -> List[ProductLine]:
    """Zipf-sized product lines with workload/fault-tolerance attributes.

    The biggest lines run batch (Hadoop-style) workloads on resilient
    software and review their failure pools lazily; a minority of lines
    are strict online services; very small lines often have nobody
    watching closely (long review intervals — the slow small lines of
    Figure 11).
    """
    n = config.n_product_lines
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-config.product_line_zipf)
    weights /= weights.sum()
    sizes = np.maximum(1, (weights * total_servers).round().astype(int))

    lines: List[ProductLine] = []
    huge_cut = np.quantile(sizes, 0.98)
    for i, size in enumerate(sizes):
        name = f"pl{i:03d}"
        big = size >= np.quantile(sizes, 0.9)
        huge = size >= huge_cut
        if huge:
            # The very biggest lines are the Hadoop-style batch fleets
            # with the most resilient software (Section VI-C).
            workload = "batch"
            fault_tolerance = float(rng.uniform(0.85, 0.98))
            review = float(rng.uniform(25.0, 45.0))
        elif big and rng.random() < 0.75:
            workload = "batch" if rng.random() < 0.7 else "storage"
            fault_tolerance = float(rng.uniform(0.75, 0.98))
            review = float(rng.uniform(5.0, 12.0))
        elif rng.random() < 0.25:
            workload = "online"
            fault_tolerance = float(rng.uniform(0.05, 0.35))
            review = float(rng.uniform(0.0, 1.0))
        else:
            workload = str(rng.choice(["batch", "storage", "online"]))
            fault_tolerance = float(rng.uniform(0.3, 0.8))
            # Small lines frequently have long, lazy review cycles.
            small = size < np.quantile(sizes, 0.5)
            if small and rng.random() < 0.55:
                review = float(rng.uniform(180.0, 400.0))
            else:
                review = float(rng.uniform(2.0, 20.0))
        lines.append(
            ProductLine(
                name=name,
                workload=workload,
                fault_tolerance=fault_tolerance,
                review_interval_days=review,
                expected_servers=int(size),
            )
        )
    return lines


def _generation_for(deployed_at: float, config: FleetConfig):
    """Hardware generation implied by the deployment date: the wave
    window is split evenly across the five generations."""
    start = -config.oldest_wave_years * YEAR
    end = config.newest_wave_years * YEAR
    frac = (deployed_at - start) / (end - start)
    idx = min(len(GENERATIONS) - 1, max(0, int(frac * len(GENERATIONS))))
    return GENERATIONS[idx]


def build_fleet(config: FleetConfig, rng: np.random.Generator) -> Fleet:
    """Assemble the full fleet for one scenario."""
    dc_sizes = _dc_sizes(config, rng)
    total_servers = int(dc_sizes.sum())
    lines = _product_lines(config, total_servers, rng)

    # Modern DCs are the newest ones; assign construction years so that
    # exactly round(modern_fraction * n) of them are post-2014.
    n_dcs = config.n_datacenters
    n_modern = int(round(config.modern_dc_fraction * n_dcs))
    built_years = [
        *(2015 + (i % 2) for i in range(n_modern)),
        *(2010 + (i % 5) for i in range(n_dcs - n_modern)),
    ]
    rng.shuffle(built_years)

    occupancy = slot_occupancy_weights(config.rack_slots)
    occupancy_probs = occupancy / occupancy.sum()
    # Mean occupied slots per rack, used to size rack counts.
    servers_per_rack = config.rack_slots * 0.8

    wave_start = -config.oldest_wave_years * YEAR
    wave_end = config.newest_wave_years * YEAR

    # Line assignment works over a global rack budget: each line gets a
    # contiguous run of racks proportional to its size so that cohorts
    # (same DC + line + generation) are physically clustered.
    line_sizes = np.asarray([pl.expected_servers for pl in lines], dtype=float)
    line_rack_quota = np.maximum(1, np.round(line_sizes / servers_per_rack)).astype(int)
    rack_line_assignment: List[int] = []
    for line_idx, quota in enumerate(line_rack_quota):
        rack_line_assignment.extend([line_idx] * int(quota))
    rng.shuffle(rack_line_assignment)
    assignment_cursor = 0

    datacenters: List[DataCenter] = []
    servers: List[Server] = []
    host_id = 0
    global_pdu = 0

    for dc_idx in range(n_dcs):
        idc = f"dc{dc_idx:02d}"
        built = built_years[dc_idx]
        profile = _spatial_profile(built > 2014, rng, config.legacy_profile_mix)
        target = int(dc_sizes[dc_idx])
        n_racks = max(1, math.ceil(target / servers_per_rack))

        racks: List[Rack] = []
        placed = 0
        for rack_idx in range(n_racks):
            pdu_id = global_pdu + rack_idx // config.racks_per_pdu
            rack = Rack(
                rack_id=rack_idx, idc=idc, n_slots=config.rack_slots, pdu_id=pdu_id
            )
            racks.append(rack)

            if assignment_cursor < len(rack_line_assignment):
                line = lines[rack_line_assignment[assignment_cursor]]
                assignment_cursor += 1
            else:
                line = lines[int(rng.integers(len(lines)))]

            # The whole rack is deployed together (one wave), servers get
            # a small per-server jitter.
            wave = float(rng.uniform(wave_start, wave_end))
            remaining = target - placed
            n_here = min(
                remaining, int(rng.binomial(config.rack_slots, 0.8))
            )
            if n_here <= 0:
                continue
            slots = rng.choice(
                config.rack_slots, size=n_here, replace=False, p=occupancy_probs
            )
            for slot in sorted(int(s) for s in slots):
                deployed_at = wave + float(rng.uniform(0, 14)) * DAY
                generation = _generation_for(deployed_at, config)
                servers.append(
                    Server(
                        host_id=host_id,
                        hostname=f"{idc}-r{rack_idx:03d}-s{slot:02d}",
                        idc=idc,
                        rack_id=rack_idx,
                        position=slot,
                        pdu_id=rack.pdu_id,
                        product_line=line.name,
                        generation=generation,
                        deployed_at=deployed_at,
                    )
                )
                host_id += 1
                placed += 1
            if placed >= target:
                break
        global_pdu += n_racks // config.racks_per_pdu + 1
        datacenters.append(
            DataCenter(
                name=idc,
                built_year=built,
                spatial_profile=profile,
                racks=tuple(racks),
            )
        )

    # Drop product lines that ended up owning no servers (tiny tails).
    owned = {s.product_line for s in servers}
    lines = [pl for pl in lines if pl.name in owned]
    return Fleet(datacenters, lines, servers)


__all__ = ["build_fleet", "HOTSPOT_SLOTS", "GRADIENT_TOP"]
