"""Server hardware generations and their component complements.

The paper's fleet spans "generations of heterogeneous hardware, both
commodity and custom design" deployed incrementally over several years
(five generations for the product line in Section V-A).  Each generation
here fixes the per-server component counts — the exposure denominators
the lifecycle analysis divides by — plus model/firmware identifiers that
batch-failure injectors use to pick homogeneous cohorts ("components with
the same model and same firmware version may contain the same design
flaws").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.types import ComponentClass


@dataclass(frozen=True)
class ServerGeneration:
    """One hardware generation.

    Attributes:
        name: Generation identifier, e.g. ``"gen3"``.
        component_counts: How many of each hardware component one server
            of this generation carries.
        hdd_model: Drive model string (cohort key for batch failures).
        firmware: Firmware revision string (cohort key).
        storage_heavy: True for generations aimed at batch data
            processing (dense drive complements; these product lines run
            the Hadoop-style workloads of Section V-A).
    """

    name: str
    component_counts: Mapping[ComponentClass, int]
    hdd_model: str
    firmware: str
    storage_heavy: bool = False

    def __post_init__(self) -> None:
        counts = dict(self.component_counts)
        for cls, count in counts.items():
            if cls is ComponentClass.MISC:
                raise ValueError("MISC is not a physical component")
            if count < 0:
                raise ValueError(f"negative count for {cls}: {count}")
        object.__setattr__(self, "component_counts", counts)

    def count(self, component: ComponentClass) -> int:
        """Component count per server; MISC counts as one reporting
        surface (the server itself)."""
        if component is ComponentClass.MISC:
            return 1
        return int(self.component_counts.get(component, 0))


def _counts(
    hdd: int,
    ssd: int,
    memory: int,
    flash: int,
) -> Dict[ComponentClass, int]:
    return {
        ComponentClass.HDD: hdd,
        ComponentClass.SSD: ssd,
        ComponentClass.MEMORY: memory,
        ComponentClass.FLASH_CARD: flash,
        ComponentClass.RAID_CARD: 1,
        ComponentClass.MOTHERBOARD: 1,
        ComponentClass.CPU: 2,
        ComponentClass.FAN: 5,
        ComponentClass.POWER: 2,
        ComponentClass.HDD_BACKBOARD: 1,
    }


#: The five generations, oldest first.  Newer generations trade HDDs for
#: SSDs/flash, mirroring the cost-driven hardware shifts the paper
#: describes.
GENERATIONS: Tuple[ServerGeneration, ...] = (
    ServerGeneration("gen1", _counts(hdd=12, ssd=0, memory=8, flash=0), "HD-A400", "fw-1.0", storage_heavy=True),
    ServerGeneration("gen2", _counts(hdd=12, ssd=0, memory=12, flash=1), "HD-A400", "fw-1.2", storage_heavy=True),
    ServerGeneration("gen3", _counts(hdd=12, ssd=1, memory=12, flash=1), "HD-B210", "fw-2.0", storage_heavy=True),
    ServerGeneration("gen4", _counts(hdd=8, ssd=2, memory=16, flash=1), "HD-B210", "fw-2.1"),
    ServerGeneration("gen5", _counts(hdd=6, ssd=4, memory=16, flash=2), "HD-C550", "fw-3.0"),
)

_BY_NAME = {g.name: g for g in GENERATIONS}


def generation(name: str) -> ServerGeneration:
    """Look up a generation by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown server generation: {name!r}") from None


__all__ = ["ServerGeneration", "GENERATIONS", "generation"]
