"""Data centers: cooling era, spatial profile, PDU topology."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import SpatialProfile
from repro.fleet.rack import Rack, slot_risk_multipliers


@dataclass(frozen=True)
class DataCenter:
    """One data center (IDC).

    Attributes:
        name: IDC name, e.g. ``"dc07"``.
        built_year: Construction year; DCs built after 2014 have modern
            cooling and a uniform spatial profile (Section IV).
        spatial_profile: How failure risk varies with rack slot.
        racks: The racks in deployment order.
    """

    name: str
    built_year: int
    spatial_profile: SpatialProfile
    racks: Tuple[Rack, ...]

    @property
    def is_modern(self) -> bool:
        """Built after 2014 — the paper's cut for uniform cooling."""
        return self.built_year > 2014

    @property
    def n_slots(self) -> int:
        if not self.racks:
            raise ValueError(f"data center {self.name} has no racks")
        return self.racks[0].n_slots

    @property
    def pdu_ids(self) -> List[int]:
        """Distinct PDUs feeding this DC, sorted."""
        return sorted({rack.pdu_id for rack in self.racks})

    def slot_multipliers(self) -> np.ndarray:
        """Per-slot failure-rate multipliers from the spatial profile."""
        return slot_risk_multipliers(self.spatial_profile, self.n_slots)


__all__ = ["DataCenter"]
