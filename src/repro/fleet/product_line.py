"""Product lines: ownership, workload style and fault-tolerance level.

Section VI of the paper ties operator behaviour to the product line:
lines with highly resilient software (large Hadoop-style clusters)
tolerate long response times, crucial user-facing online services with
SSDs have strict operation guidelines and respond within hours.  The
:class:`ProductLine` record carries exactly the attributes that drive
those behaviours in the operator model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProductLine:
    """One product line.

    Attributes:
        name: Line name, e.g. ``"pl042"``.
        workload: ``"batch"`` (Hadoop-style data processing),
            ``"online"`` (user-facing service) or ``"storage"``
            (distributed storage).
        fault_tolerance: In ``[0, 1]``; higher means better software
            redundancy — and therefore *slower* operator response (the
            paper's inversion of the MTTR doctrine).
        review_interval_days: Operators of lazy lines only review the
            failure pool periodically and process tickets in batches;
            this is that period (0 = continuous attention).
        expected_servers: Nominal size used by the builder when
            partitioning servers.
    """

    name: str
    workload: str
    fault_tolerance: float
    review_interval_days: float
    expected_servers: int

    def __post_init__(self) -> None:
        if self.workload not in ("batch", "online", "storage"):
            raise ValueError(f"unknown workload kind: {self.workload!r}")
        if not 0.0 <= self.fault_tolerance <= 1.0:
            raise ValueError(
                f"fault_tolerance must be in [0, 1], got {self.fault_tolerance}"
            )
        if self.review_interval_days < 0:
            raise ValueError("review interval cannot be negative")
        if self.expected_servers <= 0:
            raise ValueError("a product line must own at least one server")

    @property
    def is_batch(self) -> bool:
        return self.workload == "batch"


__all__ = ["ProductLine"]
