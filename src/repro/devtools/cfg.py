"""Per-function control-flow graphs over Python ASTs.

A :class:`CFG` is a list of basic blocks.  Each block carries the AST
*items* the transfer function must interpret in order — plain simple
statements, plus structured-statement *headers* (the ``ast.If`` /
``ast.While`` node for its test expression, the ``ast.For`` node for
its iterable and target binding).  Bodies of structured statements live
in their own blocks connected by edges, so a loop becomes a genuine
back edge and the worklist fixpoint in
:mod:`repro.devtools.dataflow` joins facts around it.

Handled control flow: ``if``/``elif``/``else``, ``while``/``for``
(+ ``else``), ``break``/``continue``, ``try``/``except``/``else``/
``finally`` (conservatively: every block of the ``try`` body may jump
to every handler), ``with``, ``return``/``raise``.  ``match`` is
treated as opaque straight-line code (none in this repo).  Nested
function and class definitions are *name bindings only* — their bodies
get their own CFGs from the caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

#: What a block stores: simple statements, or the header node of a
#: structured statement (only its test/iter is interpreted there).
Item = Union[ast.stmt, ast.expr]


@dataclass
class Block:
    idx: int
    items: List[Item] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)

    def add_succ(self, idx: int) -> None:
        if idx not in self.succs:
            self.succs.append(idx)


@dataclass
class CFG:
    blocks: List[Block]
    entry: int
    exit: int

    def preds(self, idx: int) -> List[int]:
        return [b.idx for b in self.blocks if idx in b.succs]


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        #: (continue_target, break_target) per enclosing loop.
        self.loops: List[tuple] = []
        #: handler-entry block ids per enclosing ``try``.
        self.handlers: List[List[int]] = []
        self.exit = -1

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: Block, dst: Block) -> None:
        src.add_succ(dst.idx)

    # -- statement sequences -------------------------------------------
    def seq(self, stmts: Sequence[ast.stmt],
            cur: Optional[Block]) -> Optional[Block]:
        """Thread ``stmts`` through the graph starting at ``cur``;
        returns the fall-through block, or None when every path left."""
        for stmt in stmts:
            if cur is None:
                cur = self.new_block()  # unreachable; keeps analysis total
            cur = self.stmt(stmt, cur)
        return cur

    def _may_raise_to_handlers(self, block: Block) -> None:
        if self.handlers:
            for handler_idx in self.handlers[-1]:
                block.add_succ(handler_idx)

    def stmt(self, node: ast.stmt, cur: Block) -> Optional[Block]:
        if isinstance(node, ast.If):
            cur.items.append(node)
            after = self.new_block()
            then = self.new_block()
            self.edge(cur, then)
            then_end = self.seq(node.body, then)
            if then_end is not None:
                self.edge(then_end, after)
            if node.orelse:
                orelse = self.new_block()
                self.edge(cur, orelse)
                orelse_end = self.seq(node.orelse, orelse)
                if orelse_end is not None:
                    self.edge(orelse_end, after)
            else:
                self.edge(cur, after)
            return after

        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            header = self.new_block()
            self.edge(cur, header)
            header.items.append(node)
            after = self.new_block()
            body = self.new_block()
            self.edge(header, body)
            self.edge(header, after)  # loop may not run / terminates
            self.loops.append((header, after))
            body_end = self.seq(node.body, body)
            self.loops.pop()
            if body_end is not None:
                self.edge(body_end, header)
            if node.orelse:
                orelse_end = self.seq(node.orelse, self.new_block())
                self.edge(header, self.blocks[after.idx])  # already present
                if orelse_end is not None:
                    self.edge(orelse_end, after)
            return after

        if isinstance(node, ast.Try):
            handler_blocks = [self.new_block() for _ in node.handlers]
            for handler, block in zip(node.handlers, handler_blocks):
                block.items.append(handler)
            self.handlers.append([b.idx for b in handler_blocks])
            first_body = len(self.blocks)
            body_start = self.new_block()
            self.edge(cur, body_start)
            self._may_raise_to_handlers(cur)
            body_end = self.seq(node.body, body_start)
            # Any block materialized for the try body may raise into any
            # handler.
            for idx in range(first_body, len(self.blocks)):
                if idx not in {b.idx for b in handler_blocks}:
                    for handler_block in handler_blocks:
                        self.blocks[idx].add_succ(handler_block.idx)
            self.handlers.pop()
            after = self.new_block()
            if body_end is not None:
                if node.orelse:
                    orelse_end = self.seq(node.orelse, body_end)
                    if orelse_end is not None:
                        self.edge(orelse_end, after)
                else:
                    self.edge(body_end, after)
            for handler, block in zip(node.handlers, handler_blocks):
                handler_end = self.seq(handler.body, block)
                if handler_end is not None:
                    self.edge(handler_end, after)
            if node.finalbody:
                return self.seq(node.finalbody, after)
            return after

        if isinstance(node, (ast.With, ast.AsyncWith)):
            cur.items.append(node)
            return self.seq(node.body, cur)

        if isinstance(node, (ast.Return, ast.Raise)):
            cur.items.append(node)
            self._may_raise_to_handlers(cur)
            self.edge(cur, self.blocks[self.exit])
            return None

        if isinstance(node, ast.Break):
            if self.loops:
                self.edge(cur, self.loops[-1][1])
            return None

        if isinstance(node, ast.Continue):
            if self.loops:
                self.edge(cur, self.loops[-1][0])
            return None

        # Simple statement (or nested def/class treated as a binding).
        cur.items.append(node)
        if isinstance(node, (ast.Expr, ast.Assign, ast.AugAssign,
                             ast.AnnAssign, ast.Assert, ast.Delete)):
            self._may_raise_to_handlers(cur)
        return cur


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """CFG of one statement list (a function body or a module body)."""
    builder = _Builder()
    entry = builder.new_block()
    exit_block = builder.new_block()
    builder.exit = exit_block.idx
    end = builder.seq(body, entry)
    if end is not None:
        builder.edge(end, exit_block)
    return CFG(blocks=builder.blocks, entry=entry.idx, exit=exit_block.idx)


__all__ = ["Block", "CFG", "build_cfg"]
