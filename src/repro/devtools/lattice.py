"""Join-semilattices of abstract facts for the dataflow engine.

Every value the engine tracks is summarized by one :class:`Fact` — a
product of four independent little lattices:

* **unit** — the physical time unit of a number (``"seconds"``,
  ``"hours"``, ``"days"``, ...), ``DIMENSIONLESS`` for plain counts,
  ``None`` (bottom) when nothing is known yet and :data:`TOP` when two
  paths disagree.  Conversion constants from
  :mod:`repro.core.timeutil` (``HOUR = 3600.0`` seconds) carry their
  *target* unit in the separate ``conv`` component: a conversion
  constant is a value measured in seconds whose division semantics
  produce the target unit (``seconds / DAY -> days``).
* **width** — the numpy dtype width of an array expression
  (``"int32"``, ``"float64"``, ...).  The analysis only needs to tell
  *narrow* dtypes (which overflow or lose second resolution over a
  four-year trace) from wide ones.
* **unordered** — True when the value's iteration order depends on set
  hashing or filesystem listing order; anything folded out of such an
  iteration can differ between serial and sharded runs.
* **column** — a human-readable origin description when the value is a
  view of a ``ColumnStore``/``FOTDataset`` column (the immutability
  taint used by the interprocedural RPL002 check).
* **scale** — :data:`DATASET_SCALE` when the value's length is the
  ticket count (a dataset view, a column, a loader result): the taint
  the perf engine (:mod:`repro.devtools.perf_rules`) uses so RPL3xx
  rules only fire where *n* is actually large.  Group-by dicts, scalar
  reductions and per-row elements drop the taint — a loop over the
  handful of IDCs is not a loop over 290k tickets.

Joins are pointwise; each component has finite height (``None`` →
concrete → :data:`TOP`), so the worklist fixpoint in
:mod:`repro.devtools.dataflow` terminates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

#: Conflicting information — the top element of the unit/width/column
#: component lattices.
TOP = "<mixed>"

#: Unit name for plain numbers (counts, ratios, codes).
DIMENSIONLESS = "dimensionless"

#: Scale-component value for anything whose length tracks the ticket
#: count (dataset views, columns, loader results).
DATASET_SCALE = "dataset"

#: Concrete time units the engine reasons about, smallest first.
TIME_UNITS = (
    "seconds",
    "minutes",
    "hours",
    "days",
    "months",
    "years",
)

#: numpy dtype names considered too narrow for second-resolution
#: timestamps spanning a multi-year trace (int32 sums overflow; float32
#: cannot even represent 1.2e8 seconds to the second).
NARROW_WIDTHS = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32",
     "float16", "float32", "half", "single"}
)

WIDE_WIDTHS = frozenset(
    {"int64", "uint64", "float64", "int", "float", "double", "longlong"}
)


def is_time_unit(unit: Optional[str]) -> bool:
    """True for a *concrete* time unit (not bottom/top/dimensionless)."""
    return unit in TIME_UNITS


def join_component(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Join of one string component: bottom (None) is the identity,
    equal values stay, conflicts go to :data:`TOP`."""
    if a is None:
        return b
    if b is None or a == b:
        return a
    return TOP


@dataclasses.dataclass(frozen=True)
class Fact:
    """Abstract summary of one runtime value (see module docstring)."""

    unit: Optional[str] = None
    conv: Optional[str] = None
    width: Optional[str] = None
    unordered: bool = False
    column: Optional[str] = None
    scale: Optional[str] = None

    def join(self, other: "Fact") -> "Fact":
        if self == other:
            return self
        return Fact(
            unit=join_component(self.unit, other.unit),
            conv=join_component(self.conv, other.conv),
            width=join_component(self.width, other.width),
            unordered=self.unordered or other.unordered,
            column=join_component(self.column, other.column),
            scale=join_component(self.scale, other.scale),
        )

    # convenience predicates -------------------------------------------
    @property
    def is_time(self) -> bool:
        return is_time_unit(self.unit)

    @property
    def is_conversion(self) -> bool:
        return self.conv is not None and self.conv != TOP

    @property
    def is_narrow(self) -> bool:
        return self.width in NARROW_WIDTHS

    @property
    def is_dataset_scale(self) -> bool:
        return self.scale == DATASET_SCALE

    def with_unit(self, unit: Optional[str]) -> "Fact":
        return dataclasses.replace(self, unit=unit, conv=None)

    def ordered(self) -> "Fact":
        return dataclasses.replace(self, unordered=False)


#: The bottom element — nothing known.
BOTTOM = Fact()


def seconds() -> Fact:
    return Fact(unit="seconds")


def unit_fact(unit: str) -> Fact:
    return Fact(unit=unit)


def conversion(target: str) -> Fact:
    """A :mod:`repro.core.timeutil` conversion constant: a value in
    seconds whose division produces ``target`` units."""
    return Fact(unit="seconds", conv=target)


def dimensionless() -> Fact:
    return Fact(unit=DIMENSIONLESS)


def unordered_fact() -> Fact:
    return Fact(unordered=True)


def dataset_scale(unit: Optional[str] = None,
                  column: Optional[str] = None) -> Fact:
    """A value whose length is the ticket count (rows or a column)."""
    return Fact(unit=unit, column=column, scale=DATASET_SCALE)


# ---------------------------------------------------------------------------
# environments
# ---------------------------------------------------------------------------
Env = Dict[str, Fact]


def join_envs(a: Optional[Env], b: Env) -> Env:
    """Pointwise join; a name bound on only one side keeps its fact
    (missing = bottom, the join identity)."""
    if a is None:
        return dict(b)
    out = dict(a)
    for name, fact in b.items():
        have = out.get(name)
        out[name] = fact if have is None else have.join(fact)
    return out


def envs_equal(a: Optional[Env], b: Optional[Env]) -> bool:
    return a == b


__all__ = [
    "TOP",
    "DATASET_SCALE",
    "DIMENSIONLESS",
    "TIME_UNITS",
    "NARROW_WIDTHS",
    "WIDE_WIDTHS",
    "BOTTOM",
    "Fact",
    "Env",
    "is_time_unit",
    "join_component",
    "join_envs",
    "envs_equal",
    "seconds",
    "unit_fact",
    "conversion",
    "dimensionless",
    "dataset_scale",
    "unordered_fact",
]
