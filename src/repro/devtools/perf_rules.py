"""The perf engine — static scale-hazard rules (RPL301–RPL305).

The fourth, cumulative reprolint engine.  It reuses the dataflow
infrastructure (CFGs + the :class:`~repro.devtools.lattice.Fact`
product lattice) and keys every rule on the **dataset-scale taint**:
the ``scale`` lattice component seeded from ``ColumnStore`` /
``FOTDataset`` accessors, loader returns and dataset-typed parameters
(see :mod:`repro.devtools.dataflow`).  A loop is only a hazard when
*n* is the ticket count; a loop over the handful of IDCs returned by a
``by_*`` group-by is not.

Rules
-----
RPL301
    Python-level ``for`` statement directly over dataset rows or
    columns.  Column math belongs in numpy; genuinely element-wise
    work belongs in a comprehension feeding ``np.fromiter`` — which is
    exactly the shape ``--fix`` rewrites RPL302 into, so comprehensions
    are deliberately *not* flagged.  Generator functions (``yield``)
    are exempt: streaming serializers must iterate.
RPL302
    Array growth inside a dataset-scale loop: ``np.append`` /
    ``np.concatenate`` re-allocating the target each iteration
    (quadratic copying), or a bare-list ``append`` accumulator that is
    later materialized.  The single-append accumulator form carries a
    machine-applicable fix to a list comprehension.
RPL303
    Redundant materialization: ``np.asarray`` over a value already
    known to be an ndarray (fix: drop the wrapper), and ``.tolist()``
    on a dataset-scale value (boxes every element).
RPL304
    Quadratic patterns: membership tests against list/array operands
    inside loops, nested dataset-scale loops, and dataset-scale
    sort/group-by work performed per iteration of a dataset-scale loop.
RPL305
    Loop-invariant recomputation of expensive calls (group-bys,
    sorts, fingerprints, distribution batch math) — every name the
    call reads is bound outside the loop, so it can be hoisted.

Suppression of deliberate sequential scans uses the engine-wide
justified inline mechanism (``# reprolint: disable=RPL301 -- reason``),
*not* the baseline: the baseline is for debt, suppressions are for
documented intent.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.devtools.dataflow import (
    DataflowProject,
    ModuleContext,
    _Analyzer,
    _RuleFlags,
)
from repro.devtools.lattice import Env, Fact
from repro.devtools.rules import (
    Edit,
    Finding,
    Fix,
    MUTATOR_METHODS,
    module_name,
    module_parts,
)

#: Packages whose modules sit on the hot path of a full-trace run.
HOT_PACKAGES = frozenset(
    {"core", "engine", "analysis", "serve", "simulation"}
)

#: numpy callables that re-allocate their whole input per call — growth
#: via these inside a loop is quadratic copying.
NP_GROWTH_CALLS = frozenset({"append", "concatenate", "hstack", "vstack"})

#: Plain-name callables considered expensive enough that recomputing
#: them per loop iteration is a finding when loop-invariant.
EXPENSIVE_FUNCS = frozenset({"sorted", "fingerprint"})

#: numpy / scipy-style callables that do batch math over whole arrays.
EXPENSIVE_NP_FUNCS = frozenset(
    {"argsort", "sort", "unique", "percentile", "quantile", "ppf", "cdf",
     "sf", "gammainc", "gammaincc", "erf"}
)

#: Method names that group, sort or fingerprint an entire dataset/array.
EXPENSIVE_METHODS = frozenset(
    {"by_idc", "by_category", "by_component", "by_product_line",
     "by_source", "sorted_by_time", "argsort", "fingerprint", "ppf",
     "cdf", "sf"}
)

#: Iteration wrappers that are transparent for scale purposes:
#: ``for i, t in enumerate(ds.tickets)`` is still a row loop.
_ITER_WRAPPERS = frozenset({"enumerate", "zip", "reversed"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)


def _own_nodes(root: ast.AST):
    """Walk ``root`` without descending into nested function/class
    bodies (they get their own analysis scope)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _own_statements(body: Sequence[ast.stmt]):
    """All statements in ``body`` transitively, excluding nested
    function/class bodies."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner:
                yield from _own_statements(inner)
        for handler in getattr(stmt, "handlers", ()) or ():
            yield from _own_statements(handler.body)


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _bound_names(loop: ast.AST) -> Set[str]:
    """Names (re)bound anywhere inside the loop, including its target —
    an expensive call reading only *other* names is loop-invariant."""
    bound: Set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        bound |= _names_in(loop.target)
    for node in _own_nodes(loop):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound |= _names_in(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            bound |= _names_in(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)) and node is not loop:
            bound |= _names_in(node.target)
        elif isinstance(node, ast.NamedExpr):
            bound |= _names_in(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            bound |= _names_in(node.optional_vars)
        elif isinstance(node, ast.Call):
            # ``acc.append(x)`` and friends mutate their receiver;
            # plain reads (``dataset.by_idc()``) do not.
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in MUTATOR_METHODS \
                    and isinstance(func.value, ast.Name):
                bound.add(func.value.id)
    return bound


class _PerfAnalyzer(_Analyzer):
    """Dataflow fixpoint that emits nothing itself but records the
    stable abstract environment in force at every statement, so the
    syntactic perf checks can ask "how big is this value?"."""

    def __init__(self, path: str, ctx: ModuleContext,
                 project: DataflowProject,
                 fn: Optional[ast.AST] = None,
                 body: Optional[Sequence[ast.stmt]] = None):
        super().__init__(path, ctx, project, _RuleFlags(), fn=fn, body=body)
        self.stmt_envs: Dict[int, Env] = {}

    def _transfer_item(self, item: ast.AST, env: Env) -> None:
        if self._emitting:
            self.stmt_envs[id(item)] = dict(env)
        super()._transfer_item(item, env)


class _FunctionPerf:
    """RPL301–305 checks for one analyzed scope."""

    def __init__(self, path: str, analyzer: _PerfAnalyzer,
                 body: Sequence[ast.stmt], source: str,
                 fn: Optional[ast.AST] = None):
        self.path = path
        self.analyzer = analyzer
        self.body = body
        self.source = source
        self.fn = fn
        self.findings: List[Finding] = []
        self.is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for stmt in _own_statements(body) for n in _own_nodes(stmt)
        )
        #: names initialized as empty-list accumulators in this scope.
        self.list_inits: Dict[str, ast.Assign] = {}
        for stmt in _own_statements(body):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.List) \
                    and not stmt.value.elts:
                self.list_inits[stmt.targets[0].id] = stmt

    # -- plumbing -------------------------------------------------------
    def env_at(self, stmt: ast.AST) -> Env:
        return self.analyzer.stmt_envs.get(id(stmt), {})

    def fact(self, expr: ast.AST, env: Env) -> Fact:
        return self.analyzer.eval(expr, dict(env))

    def iter_fact(self, expr: ast.AST, env: Env) -> Fact:
        """Scale of a loop's iterable, looking through enumerate/zip."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in _ITER_WRAPPERS:
            fact = Fact()
            for arg in expr.args:
                fact = fact.join(self.fact(arg, env))
            return fact
        return self.fact(expr, env)

    def segment(self, node: ast.AST) -> Optional[str]:
        return ast.get_source_segment(self.source, node)

    def _is_np(self, func: ast.AST) -> Optional[str]:
        """The numpy function name when ``func`` is ``np.<attr>``."""
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in self.analyzer.ctx.numpy_aliases:
            return func.attr
        return None

    def flag(self, rule: str, node: ast.AST, message: str,
             fix: Optional[Fix] = None) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0), message,
                    engine="perf", fix=fix)
        )

    # -- driver ---------------------------------------------------------
    def run(self) -> List[Finding]:
        statements = list(_own_statements(self.body))
        for stmt in statements:
            if isinstance(stmt, ast.For):
                self._check_for_loop(stmt)
            elif isinstance(stmt, ast.While):
                self._check_invariant_calls(stmt, stmt.body)
            self._check_materialization(stmt)
        self._check_list_accumulators(self.body)
        # Nested statement walks can visit one node from two enclosing
        # scopes; keep the first of each identical finding.
        unique: Dict[tuple, Finding] = {}
        for finding in self.findings:
            unique.setdefault(
                (finding.rule, finding.line, finding.col, finding.message),
                finding,
            )
        return list(unique.values())

    # -- RPL301 ---------------------------------------------------------
    def _check_for_loop(self, loop: ast.For) -> None:
        env = self.env_at(loop)
        loop_fact = self.iter_fact(loop.iter, env)
        loop_is_ds = loop_fact.is_dataset_scale
        if loop_is_ds and not self.is_generator:
            self.flag(
                "RPL301", loop,
                "Python-level loop over dataset rows/columns — each of "
                "~n tickets round-trips the interpreter; use a "
                "vectorized column op (boolean masks, np reductions) or "
                "a comprehension feeding np.fromiter",
            )
        self._check_growth(loop, loop_is_ds)
        self._check_quadratic(loop, loop_is_ds)
        self._check_invariant_calls(loop, loop.body)

    # -- RPL302 (np growth form) ----------------------------------------
    def _check_growth(self, loop: ast.For, loop_is_ds: bool) -> None:
        for stmt in _own_statements(loop.body):
            if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            np_name = self._is_np(value.func)
            if np_name not in NP_GROWTH_CALLS:
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            target_names = set()
            for target in targets:
                target_names |= _names_in(target)
            arg_names: Set[str] = set()
            for arg in value.args:
                arg_names |= _names_in(arg)
            env = self.env_at(stmt)
            arg_ds = any(self.fact(arg, env).is_dataset_scale
                         for arg in value.args)
            if target_names & arg_names and (loop_is_ds or arg_ds):
                self.flag(
                    "RPL302", stmt,
                    f"np.{np_name} re-allocates and copies the whole "
                    "array every iteration (quadratic growth) — "
                    "preallocate with np.empty, or collect into a list "
                    "and materialize once after the loop",
                )

    # -- RPL302 (list-append accumulator form) --------------------------
    def _check_list_accumulators(self, body: Sequence[ast.stmt]) -> None:
        for stmt in _own_statements(body):
            if not isinstance(stmt, ast.For):
                continue
            env = self.env_at(stmt)
            if not self.iter_fact(stmt.iter, env).is_dataset_scale:
                continue
            appends = [
                inner for inner in _own_statements(stmt.body)
                if isinstance(inner, ast.Expr)
                and isinstance(inner.value, ast.Call)
                and isinstance(inner.value.func, ast.Attribute)
                and inner.value.func.attr == "append"
                and isinstance(inner.value.func.value, ast.Name)
                and inner.value.func.value.id in self.list_inits
            ]
            for append_stmt in appends:
                acc = append_stmt.value.func.value.id
                if not self._materialized_later(acc, stmt):
                    continue
                fix = self._accumulator_fix(stmt, append_stmt, acc)
                self.flag(
                    "RPL302", append_stmt,
                    f"'{acc}' grows element-by-element over a "
                    "dataset-scale loop and is materialized later — "
                    "build it in one shot with a comprehension (then "
                    "np.fromiter/np.array) instead",
                    fix=fix,
                )

    def _materialized_later(self, acc: str, loop: ast.For) -> bool:
        """True when ``acc`` is fed to np.array/asarray/fromiter after
        the loop — the list was only ever a staging buffer."""
        parent_body = self._body_containing(loop)
        if parent_body is None:
            return False
        after = parent_body[parent_body.index(loop) + 1:]
        for stmt in _own_statements(after):
            for node in _own_nodes(stmt):
                if isinstance(node, ast.Call):
                    np_name = self._is_np(node.func)
                    if np_name in {"array", "asarray", "fromiter"} \
                            and any(acc in _names_in(arg)
                                    for arg in node.args):
                        return True
        return False

    def _accumulator_fix(self, loop: ast.For, append_stmt: ast.Expr,
                         acc: str) -> Optional[Fix]:
        """Rewrite ``acc = []; for t in it: acc.append(e)`` into
        ``acc = [e for t in it]`` when provably equivalent."""
        init = self.list_inits[acc]
        # The init must immediately precede the loop in the same body.
        parent_body = self._body_containing(loop)
        if parent_body is None or init not in parent_body:
            return None
        if parent_body.index(init) + 1 != parent_body.index(loop):
            return None
        # The loop body must be exactly the single append, no else.
        if loop.orelse or loop.body != [append_stmt]:
            return None
        call = append_stmt.value
        if len(call.args) != 1 or call.keywords:
            return None
        element = call.args[0]
        if acc in _names_in(element):
            return None
        # The loop target must not be read after the loop.
        target_names = _names_in(loop.target)
        for later in _own_statements(parent_body[parent_body.index(loop) + 1:]):
            if _names_in(later) & target_names:
                return None
        element_src = self.segment(element)
        target_src = self.segment(loop.target)
        iter_src = self.segment(loop.iter)
        end_line = getattr(loop, "end_lineno", None)
        end_col = getattr(loop, "end_col_offset", None)
        if None in (element_src, target_src, iter_src, end_line, end_col):
            return None
        replacement = f"{acc} = [{element_src} for {target_src} in {iter_src}]"
        return Fix(
            description=f"build '{acc}' with a list comprehension "
                        "instead of growing it per iteration",
            edits=(Edit(init.lineno, init.col_offset,
                        end_line, end_col, replacement),),
        )

    def _body_containing(self, stmt: ast.stmt) -> Optional[List[ast.stmt]]:
        for candidate in self._all_bodies(self.body):
            if stmt in candidate:
                return candidate
        return None

    def _all_bodies(self, body: Sequence[ast.stmt]):
        body = list(body)
        yield body
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if inner:
                    yield from self._all_bodies(inner)
            for handler in getattr(stmt, "handlers", ()) or ():
                yield from self._all_bodies(handler.body)

    # -- RPL303 ---------------------------------------------------------
    def _check_materialization(self, stmt: ast.stmt) -> None:
        env = self.env_at(stmt)
        for node in _own_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            np_name = self._is_np(node.func)
            if np_name == "asarray" and len(node.args) == 1 \
                    and not node.keywords \
                    and isinstance(node.args[0], (ast.Name, ast.Attribute)):
                # Only a plain variable/attribute can be "already an
                # array" — np.asarray over a list display or
                # comprehension is the materialization itself.
                arg = node.args[0]
                fact = self.fact(arg, env)
                if fact.width is not None or fact.column is not None:
                    fix = None
                    arg_src = self.segment(arg)
                    end_line = getattr(node, "end_lineno", None)
                    end_col = getattr(node, "end_col_offset", None)
                    if arg_src and end_line is not None \
                            and end_col is not None:
                        fix = Fix(
                            description="drop the redundant np.asarray "
                                        "wrapper",
                            edits=(Edit(node.lineno, node.col_offset,
                                        end_line, end_col, arg_src),),
                        )
                    self.flag(
                        "RPL303", node,
                        "np.asarray over a value that is already an "
                        "ndarray is a no-op wrapper on the hot path — "
                        "drop it (columns are served as arrays)",
                        fix=fix,
                    )
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "tolist" \
                    and not node.args and not node.keywords:
                receiver = self.fact(node.func.value, env)
                if receiver.is_dataset_scale:
                    self.flag(
                        "RPL303", node,
                        ".tolist() boxes every element of a "
                        "dataset-scale array into Python objects — "
                        "keep it as an ndarray, or slice first",
                    )

    # -- RPL304 ---------------------------------------------------------
    def _check_quadratic(self, loop: ast.For, loop_is_ds: bool) -> None:
        bound = _bound_names(loop)
        appended_lists = {
            name for name in self.list_inits
            if any(isinstance(n, ast.Call)
                   and isinstance(n.func, ast.Attribute)
                   and n.func.attr == "append"
                   and isinstance(n.func.value, ast.Name)
                   and n.func.value.id == name
                   for stmt in _own_statements(loop.body)
                   for n in _own_nodes(stmt))
        }
        for stmt in _own_statements(loop.body):
            env = self.env_at(stmt)
            for node in _own_nodes(stmt):
                if isinstance(node, ast.Compare) and any(
                        isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops):
                    self._check_membership(node, env, appended_lists,
                                           loop_is_ds)
                elif isinstance(node, _COMPREHENSIONS) and loop_is_ds:
                    for gen in node.generators:
                        if self.fact(gen.iter, env).is_dataset_scale:
                            self.flag(
                                "RPL304", node,
                                "comprehension over a dataset-scale "
                                "iterable nested in a dataset-scale "
                                "loop — O(n²); restructure with a "
                                "group-by or vectorized join",
                            )
                            break
                elif isinstance(node, ast.Call) and loop_is_ds:
                    self._check_sort_in_loop(node, env, bound)
            if isinstance(stmt, ast.For) and loop_is_ds:
                env = self.env_at(stmt)
                if self.iter_fact(stmt.iter, env).is_dataset_scale:
                    self.flag(
                        "RPL304", stmt,
                        "nested loop over dataset-scale iterables — "
                        "O(n²) over the trace; group or sort once, "
                        "then merge linearly",
                    )

    def _check_membership(self, node: ast.Compare, env: Env,
                          appended_lists: Set[str],
                          loop_is_ds: bool) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            fact = self.fact(comparator, env)
            linear_scan = fact.is_dataset_scale and loop_is_ds
            accum_scan = (isinstance(comparator, ast.Name)
                          and comparator.id in appended_lists)
            if linear_scan or accum_scan:
                what = (
                    f"list accumulator '{comparator.id}'"
                    if accum_scan and isinstance(comparator, ast.Name)
                    else "a dataset-scale operand"
                )
                self.flag(
                    "RPL304", node,
                    f"membership test against {what} inside a loop is "
                    "a linear scan per iteration (O(n²)) — use a "
                    "set/dict, or np.isin on whole columns",
                )

    def _check_sort_in_loop(self, node: ast.Call, env: Env,
                            bound: Set[str]) -> None:
        name = None
        arg = None
        if isinstance(node.func, ast.Name) and node.func.id == "sorted" \
                and node.args:
            name, arg = "sorted", node.args[0]
        else:
            np_name = self._is_np(node.func)
            if np_name in {"sort", "argsort", "unique"} and node.args:
                name, arg = f"np.{np_name}", node.args[0]
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in EXPENSIVE_METHODS:
                name, arg = node.func.attr + "()", node.func.value
        if name is None or arg is None:
            return
        if not self.fact(arg, env).is_dataset_scale:
            return
        if _names_in(node) & bound:
            # Depends on the loop variable: genuinely per-iteration
            # work, quadratic-or-worse inside a dataset-scale loop.
            self.flag(
                "RPL304", node,
                f"{name} over a dataset-scale value inside a "
                "dataset-scale loop — n·n log n; sort/group once "
                "outside the loop and reuse the result",
            )

    # -- RPL305 ---------------------------------------------------------
    def _check_invariant_calls(self, loop: ast.AST,
                               body: Sequence[ast.stmt]) -> None:
        bound = _bound_names(loop)
        for stmt in _own_statements(body):
            env = self.env_at(stmt)
            for node in _own_nodes(stmt):
                if not isinstance(node, ast.Call):
                    continue
                label = self._expensive_label(node, env)
                if label is None:
                    continue
                names = _names_in(node)
                if not names or names & bound:
                    continue
                self.flag(
                    "RPL305", node,
                    f"{label} is recomputed every iteration but reads "
                    "nothing the loop changes — hoist it above the "
                    "loop",
                )

    def _expensive_label(self, node: ast.Call,
                         env: Env) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in EXPENSIVE_FUNCS:
            if func.id == "sorted" and node.args \
                    and not self.fact(node.args[0], env).is_dataset_scale:
                return None
            return f"{func.id}(...)"
        np_name = self._is_np(func)
        if np_name in EXPENSIVE_NP_FUNCS:
            return f"np.{np_name}(...)"
        if isinstance(func, ast.Attribute) and func.attr in EXPENSIVE_METHODS:
            receiver = self.fact(func.value, env)
            if func.attr.startswith("by_") or func.attr == "sorted_by_time":
                if not receiver.is_dataset_scale:
                    return None
            return f".{func.attr}(...)"
        return None


# ---------------------------------------------------------------------------
# per-file entry point
# ---------------------------------------------------------------------------
def analyze_module(path: Path, tree: ast.Module,
                   project: DataflowProject) -> List[Finding]:
    """All perf findings for one file (hot packages only)."""
    parts = module_parts(path)
    if len(parts) < 2 or parts[0] != "repro" or parts[1] not in HOT_PACKAGES:
        return []
    module = module_name(path)
    ctx = project.contexts.get(module) or ModuleContext(module, tree)
    rel = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        source = ""

    findings: List[Finding] = []

    module_scope = _PerfAnalyzer(rel, ctx, project, body=tree.body)
    module_scope.run()
    findings.extend(
        _FunctionPerf(rel, module_scope, tree.body, source).run()
    )

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyzer = _PerfAnalyzer(rel, ctx, project, fn=node)
            analyzer.run()
            findings.extend(
                _FunctionPerf(rel, analyzer, node.body, source,
                              fn=node).run()
            )
    findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    return findings


__all__ = [
    "HOT_PACKAGES",
    "NP_GROWTH_CALLS",
    "EXPENSIVE_FUNCS",
    "EXPENSIVE_METHODS",
    "analyze_module",
]
