"""RPL201–RPL213: the effects-engine rule checkers.

Six rules over the :class:`~repro.devtools.effects.EffectsProject`
summaries, scoped to the ``repro`` package (fixtures exercise them via
synthetic ``src/repro/...`` trees, same as the dataflow rules):

* **RPL201** — blocking calls inside ``async def``; direct (classifier
  tables) and interprocedural (blocking summaries), with the executor
  allowlist carving out ``run_in_executor`` / ``to_thread`` arguments.
* **RPL202** — shared mutable state (``self.*`` chains, declared
  globals) read before an ``await`` and written after it: a per-location
  {clean, read, read-then-await} lattice run to fixpoint over the
  function CFG, so the hazard is caught through loop back edges too.
  ``with``/``async with`` bodies whose context mentions a lock are
  exempt regions.
* **RPL203** — ``create_task``/``ensure_future`` results that nothing
  retains (bare expression, or a local never read again): the loop only
  holds weak references, so the task can be garbage-collected mid-run
  and its exceptions are silently lost.
* **RPL211** — process-pool submissions (``ProcessPoolExecutor`` /
  ``multiprocessing`` ``Pool``) whose work functions are lambdas,
  capture-bearing closures, read mutable module globals not assigned by
  the pool initializer, or draw unseeded RNG — each a hole in the
  bit-identity contract of ``engine.parallel.run_shards``.
* **RPL212** — resource lifetime: ``open``/``mmap``/``tempfile``
  resources need a ``with``, a ``.close()``, a wrapper
  (``contextlib.closing``, ``os.fdopen``), or to be returned (which
  marks the function ``returns_resource`` so *callers* that discard the
  result are flagged instead); buffer views built over a with-managed
  resource must not escape the block.
* **RPL213** — durable writes in ``core``/``serve``/``engine``/
  ``robustness`` must follow the repo's write-then-rename /
  blob-before-manifest idiom: an in-place ``open(.., "w")`` or
  ``write_text`` with no rename marker in the function is a torn-file
  window.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.cfg import build_cfg
from repro.devtools.effects import (
    EffectsProject,
    blocking_call_reason,
    executor_exempt_nodes,
    is_executor_handoff,
    _dotted,
    _qual_prefix,
)
from repro.devtools.rules import Finding, module_name, module_parts

#: Packages whose durable files must be written atomically (RPL213).
ATOMIC_WRITE_PACKAGES = frozenset({"core", "serve", "engine", "robustness"})

#: Context-manager expressions matching this are treated as lock
#: regions for RPL202 (reads/writes inside are protected).
_LOCK_NAME_RE = re.compile(r"lock|mutex|semaphore|condition", re.IGNORECASE)

#: Work-function parameter names that satisfy the RPL211 seed contract.
_SEED_PARAM_RE = re.compile(r"seed|rng|entropy", re.IGNORECASE)

#: Callees that take ownership of a resource passed as an argument.
_RESOURCE_WRAPPERS = frozenset(
    {"closing", "enter_context", "push", "callback", "register", "fdopen",
     "close", "detach"}
)

#: ``(module, name)`` calls that return an OS resource the caller owns.
_RESOURCE_CALLS = frozenset(
    {("gzip", "open"), ("bz2", "open"), ("lzma", "open"), ("mmap", "mmap"),
     ("tempfile", "NamedTemporaryFile"), ("tempfile", "TemporaryDirectory"),
     ("tempfile", "mkstemp"), ("tempfile", "mkdtemp"), ("io", "open")}
)

_POOL_SUBMIT_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)


def _parents(fn: ast.AST) -> Dict[int, ast.AST]:
    out: Dict[int, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            out[id(child)] = node
    return out


def _own_walk(fn: ast.AST) -> Iterable[ast.AST]:
    """Subtree walk excluding nested function/class bodies (nested defs
    are checked on their own); lambdas stay in — they run in this frame
    unless an executor handoff exempts them."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _flag(findings: List[Finding], rule: str, path: str, node: ast.AST,
          message: str) -> None:
    findings.append(
        Finding(rule, path, getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0), message, engine="effects")
    )


# ---------------------------------------------------------------------------
# RPL201 — blocking calls on the event loop
# ---------------------------------------------------------------------------
def check_async_blocking(
    fn: ast.AsyncFunctionDef, module: str, class_key: Optional[str],
    project: EffectsProject, path: str, findings: List[Finding],
) -> None:
    ctx = project.contexts[module]
    exempt = executor_exempt_nodes(fn)
    local_types = project._local_types(module, fn)
    for node in _own_walk(fn):
        if not isinstance(node, ast.Call) or id(node) in exempt:
            continue
        if is_executor_handoff(node):
            continue
        reason = blocking_call_reason(ctx, node)
        if reason is not None:
            _flag(
                findings, "RPL201", path, node,
                f"blocking call on the event loop: {reason}; move it "
                "behind loop.run_in_executor()/asyncio.to_thread() or use "
                "an async equivalent",
            )
            continue
        for key in project.resolve_call(module, node.func, class_key,
                                        local_types):
            callee = project.functions.get(key)
            if callee is not None and callee.blocking and not callee.is_async:
                _flag(
                    findings, "RPL201", path, node,
                    "call blocks the event loop through "
                    f"{project.describe_blocking(key)}; wrap the call in "
                    "loop.run_in_executor()/asyncio.to_thread()",
                )
                break


# ---------------------------------------------------------------------------
# RPL202 — shared state mutated across an await
# ---------------------------------------------------------------------------
_CLEAN, _READ, _READ_THEN_AWAIT = 0, 1, 2


def _shared_location(target: ast.expr,
                     global_names: Set[str]) -> Optional[str]:
    if isinstance(target, ast.Attribute):
        dotted = _dotted(target)
        if dotted is not None and dotted.startswith("self."):
            return dotted
        return None
    if isinstance(target, ast.Name) and target.id in global_names:
        return target.id
    return None


def _interpreted_exprs(item: ast.AST) -> List[ast.AST]:
    """The expressions a CFG block item actually evaluates (structured
    statement headers carry their whole subtree; only the header
    expression belongs to the block)."""
    if isinstance(item, (ast.If, ast.While)):
        return [item.test]
    if isinstance(item, (ast.For, ast.AsyncFor)):
        return [item.iter]
    if isinstance(item, (ast.With, ast.AsyncWith)):
        return [w.context_expr for w in item.items]
    if isinstance(item, ast.ExceptHandler):
        return [item.type] if item.type is not None else []
    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [item]


def _lock_region_nodes(fn: ast.AST) -> Set[int]:
    """ids of every node inside a lock-guarded ``with`` body."""
    out: Set[int] = set()
    for node in _own_walk(fn):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        guarded = False
        for item in node.items:
            for sub in ast.walk(item.context_expr):
                name = None
                if isinstance(sub, ast.Name):
                    name = sub.id
                elif isinstance(sub, ast.Attribute):
                    name = sub.attr
                if name is not None and _LOCK_NAME_RE.search(name):
                    guarded = True
        if guarded:
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    out.add(id(sub))
    return out


class _SharedStateAnalyzer:
    """Fixpoint of the read/read-then-await lattice over one coroutine."""

    def __init__(self, fn: ast.AsyncFunctionDef, qualname: str, path: str):
        self.fn = fn
        self.qualname = qualname
        self.path = path
        self.global_names = {
            name for node in _own_walk(fn) if isinstance(node, ast.Global)
            for name in node.names
        }
        self.tracked: Set[str] = set()
        for node in _own_walk(fn):
            for target in self._write_targets(node):
                loc = _shared_location(target, self.global_names)
                if loc is not None:
                    self.tracked.add(loc)
        self.lock_nodes = _lock_region_nodes(fn)
        self.flagged: Set[Tuple[str, int]] = set()

    @staticmethod
    def _write_targets(node: ast.AST) -> List[ast.expr]:
        if isinstance(node, ast.Assign):
            out: List[ast.expr] = []
            for target in node.targets:
                if isinstance(target, ast.Tuple):
                    out.extend(target.elts)
                else:
                    out.append(target)
            return out
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        return []

    def run(self, findings: List[Finding]) -> None:
        if not self.tracked:
            return
        cfg = build_cfg(self.fn.body)
        envs: List[Dict[str, int]] = [{} for _ in cfg.blocks]
        # Every block is seeded so straight-line facts flow even before
        # any env changes; the worklist then re-runs only what joins
        # re-dirty.
        worklist = list(range(len(cfg.blocks)))
        iterations = 0
        limit = 40 * max(1, len(cfg.blocks))
        while worklist and iterations < limit:
            iterations += 1
            idx = worklist.pop()
            out = self._transfer(cfg.blocks[idx].items, dict(envs[idx]), None)
            for succ in cfg.blocks[idx].succs:
                joined = dict(envs[succ])
                changed = False
                for loc, state in out.items():
                    if state > joined.get(loc, _CLEAN):
                        joined[loc] = state
                        changed = True
                if changed:
                    envs[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)
        for block in cfg.blocks:
            self._transfer(block.items, dict(envs[block.idx]), findings)

    def _transfer(self, items: Sequence[ast.AST], env: Dict[str, int],
                  findings: Optional[List[Finding]]) -> Dict[str, int]:
        for item in items:
            if id(item) in self.lock_nodes:
                continue
            exprs = _interpreted_exprs(item)
            reads: Set[str] = set()
            writes: List[Tuple[str, ast.AST]] = []
            has_await = isinstance(item, (ast.AsyncFor, ast.AsyncWith))
            for expr in exprs:
                for node in ast.walk(expr):
                    if id(node) in self.lock_nodes:
                        continue
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        continue
                    if isinstance(node, ast.Await):
                        has_await = True
                    loc = None
                    if isinstance(node, (ast.Attribute, ast.Name)):
                        loc = _shared_location(node, self.global_names)
                    if loc is None or loc not in self.tracked:
                        continue
                    if isinstance(node.ctx, ast.Load):
                        reads.add(loc)
                    elif isinstance(node.ctx, ast.Store):
                        writes.append((loc, node))
                        if isinstance(item, ast.AugAssign):
                            reads.add(loc)
            for loc in reads:
                env[loc] = max(env.get(loc, _CLEAN), _READ)
            if has_await:
                for loc, state in env.items():
                    if state == _READ:
                        env[loc] = _READ_THEN_AWAIT
            for loc, node in writes:
                if env.get(loc, _CLEAN) == _READ_THEN_AWAIT:
                    mark = (loc, getattr(node, "lineno", 1))
                    if findings is not None and mark not in self.flagged:
                        self.flagged.add(mark)
                        _flag(
                            findings, "RPL202", self.path, node,
                            f"'{loc}' is read before an await and written "
                            f"after it in {self.qualname}(); an interleaved "
                            "task can change it mid-flight — hold a lock "
                            "across the await, collapse to a single "
                            "read-modify-write, or justify the single-writer "
                            "invariant with a suppression",
                        )
                env[loc] = _CLEAN
        return env


# ---------------------------------------------------------------------------
# RPL203 — fire-and-forget tasks
# ---------------------------------------------------------------------------
def _is_task_spawn(ctx, call: ast.Call) -> bool:
    resolved = _qual_prefix(ctx, call.func)
    if resolved is not None and resolved[0] == "asyncio" \
            and resolved[1] in ("create_task", "ensure_future"):
        return True
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr in ("create_task", "ensure_future"))


def check_fire_and_forget(
    fn: ast.AST, module: str, project: EffectsProject, path: str,
    findings: List[Finding],
) -> None:
    ctx = project.contexts[module]
    parents = _parents(fn)
    name_loads: Dict[str, int] = {}
    for node in _own_walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name_loads[node.id] = name_loads.get(node.id, 0) + 1
    for node in _own_walk(fn):
        if not (isinstance(node, ast.Call) and _is_task_spawn(ctx, node)):
            continue
        parent = parents.get(id(node))
        if isinstance(parent, ast.Expr):
            _flag(
                findings, "RPL203", path, node,
                "fire-and-forget task: the loop holds only a weak "
                "reference, so the task can be garbage-collected mid-run "
                "and its exception silently lost — retain the result "
                "(e.g. on self or in a set) or chain .add_done_callback()",
            )
        elif isinstance(parent, ast.Assign) and len(parent.targets) == 1 \
                and isinstance(parent.targets[0], ast.Name):
            if name_loads.get(parent.targets[0].id, 0) == 0:
                _flag(
                    findings, "RPL203", path, node,
                    f"task assigned to '{parent.targets[0].id}' which is "
                    "never read again — the reference dies with the scope; "
                    "store it somewhere that outlives this frame or add a "
                    "done-callback",
                )


# ---------------------------------------------------------------------------
# RPL211 — process-pool captures
# ---------------------------------------------------------------------------
def _mutable_module_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable literals/constructors."""
    mutable: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        is_mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp))
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id in ("list", "dict", "set", "bytearray",
                                      "deque", "defaultdict", "Counter"):
            is_mutable = True
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)
    return mutable


def _globals_assigned_by(fn: ast.AST) -> Set[str]:
    return {
        name for node in ast.walk(fn) if isinstance(node, ast.Global)
        for name in node.names
    }


def _free_names(fn: ast.AST) -> Set[str]:
    """Names a nested function loads but does not bind locally."""
    bound = {a.arg for a in list(fn.args.posonlyargs) + list(fn.args.args)
             + list(fn.args.kwonlyargs)}
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    loads: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node.ctx, ast.Load):
                loads.add(node.id)
    import builtins

    return {name for name in loads - bound if not hasattr(builtins, name)}


def _work_fn_rng_reason(ctx, fn: ast.AST) -> Optional[str]:
    """Unseeded RNG inside a pool work function (no seed/rng param)."""
    from repro.devtools.rules import NP_RANDOM_ALLOWED

    params = [a.arg for a in list(fn.args.posonlyargs) + list(fn.args.args)
              + list(fn.args.kwonlyargs)]
    if any(_SEED_PARAM_RE.search(p) for p in params):
        return None
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        resolved = _qual_prefix(ctx, node.func)
        if resolved is None:
            continue
        module, name = resolved
        if module == "random":
            return f"random.{name}() draws from process-global RNG state"
        if module in ("numpy.random", "np.random") \
                and name not in NP_RANDOM_ALLOWED:
            return f"numpy.random.{name}() draws unseeded entropy"
        if name == "default_rng" and not node.args and not node.keywords:
            return "default_rng() without a SeedSequence-derived seed"
    return None


def check_pool_captures(
    fn: ast.AST, module: str, tree: ast.Module, project: EffectsProject,
    path: str, findings: List[Finding],
) -> None:
    ctx = project.contexts[module]
    pool_names: Set[str] = set()
    initializer_names: Set[str] = set()
    for node in _own_walk(fn):
        ctor: Optional[ast.Call] = None
        target_name: Optional[str] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            ctor, target_name = node.value, node.targets[0].id
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call) \
                        and isinstance(item.optional_vars, ast.Name):
                    ctor = item.context_expr
                    target_name = item.optional_vars.id
        if ctor is None or target_name is None:
            continue
        func = ctor.func
        is_pool = (isinstance(func, ast.Name)
                   and func.id == "ProcessPoolExecutor") \
            or (isinstance(func, ast.Attribute)
                and func.attr in ("Pool", "ProcessPoolExecutor"))
        if not is_pool:
            continue
        pool_names.add(target_name)
        for kw in ctor.keywords:
            if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                initializer_names.add(kw.value.id)
    if not pool_names:
        return

    local_defs = {
        node.name: node for node in _own_walk(fn)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    module_defs = {
        node.name: node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    allowed_globals: Set[str] = set()
    for name in initializer_names:
        init_fn = local_defs.get(name) or module_defs.get(name)
        if init_fn is not None:
            allowed_globals |= _globals_assigned_by(init_fn)
    mutable_globals = _mutable_module_globals(tree)

    for node in _own_walk(fn):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_names):
            continue
        if not node.args:
            continue
        work = node.args[0]
        if isinstance(work, ast.Lambda):
            _flag(
                findings, "RPL211", path, work,
                "lambda submitted to a process pool: unpicklable under "
                "spawn and its captures are invisible to the bit-identity "
                "contract — use a module-level function",
            )
        elif isinstance(work, ast.Name):
            work_fn = local_defs.get(work.id)
            if work_fn is not None:
                captured = sorted(
                    _free_names(work_fn) - set(module_defs) - allowed_globals
                )
                if captured:
                    _flag(
                        findings, "RPL211", path, work,
                        f"nested work function '{work.id}' captures "
                        f"{captured} from the enclosing frame; captures do "
                        "not exist in spawned workers and mutate invisibly "
                        "under fork — pass state via initargs or arguments",
                    )
                work_fn_node: Optional[ast.AST] = work_fn
            else:
                work_fn_node = module_defs.get(work.id)
            if work_fn_node is not None:
                rng_reason = _work_fn_rng_reason(ctx, work_fn_node)
                if rng_reason is not None:
                    _flag(
                        findings, "RPL211", path, work,
                        f"pool work function '{work.id}' is RNG-bearing "
                        f"without a seed parameter: {rng_reason}; thread a "
                        "SeedSequence-derived seed through the task instead",
                    )
                reads = {
                    n.id for n in ast.walk(work_fn_node)
                    if isinstance(n, ast.Name)
                    and isinstance(n.ctx, ast.Load)
                }
                bad = sorted(
                    (reads & mutable_globals) - allowed_globals
                    - _globals_assigned_by(work_fn_node)
                )
                if bad:
                    _flag(
                        findings, "RPL211", path, work,
                        f"pool work function '{work.id}' reads mutable "
                        f"module global(s) {bad} not assigned by the pool "
                        "initializer; worker copies diverge silently — "
                        "prime them in the initializer or pass them as "
                        "arguments",
                    )
        for extra in node.args[1:]:
            if isinstance(extra, ast.Name) and extra.id in mutable_globals:
                _flag(
                    findings, "RPL211", path, extra,
                    f"mutable module global '{extra.id}' passed into a "
                    "process pool; each worker gets a divergent copy — "
                    "pass an immutable snapshot instead",
                )


# ---------------------------------------------------------------------------
# RPL212 — resource lifetime & buffer escape
# ---------------------------------------------------------------------------
def _resource_call_reason(ctx, call: ast.Call,
                          project: EffectsProject, module: str,
                          class_key: Optional[str]) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open" \
            and func.id not in ctx.from_imports:
        return "open()"
    resolved = _qual_prefix(ctx, func)
    if resolved is not None and resolved in _RESOURCE_CALLS:
        return f"{resolved[0]}.{resolved[1]}()"
    if isinstance(func, ast.Attribute) and func.attr == "open" \
            and resolved is None:
        # ``.open()`` on an untyped receiver is a file open *unless* it
        # resolves to a project function (e.g. LiveDataset.open).
        if not project.resolve_call(module, func, class_key):
            receiver = _dotted(func.value) or "<expr>"
            return f"{receiver}.open()"
    return None


def _name_has_close(fn: ast.AST, name: str) -> bool:
    for node in _own_walk(fn):
        if isinstance(node, ast.Attribute) \
                and node.attr in ("close", "closed", "__exit__") \
                and isinstance(node.value, ast.Name) \
                and node.value.id == name:
            return True
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
        if isinstance(node, ast.Call):
            wrapper = None
            if isinstance(node.func, ast.Attribute):
                wrapper = node.func.attr
            elif isinstance(node.func, ast.Name):
                wrapper = node.func.id
            if wrapper in _RESOURCE_WRAPPERS and any(
                isinstance(a, ast.Name) and a.id == name for a in node.args
            ):
                return True
    return False


def _escapes_via(value: ast.expr, name: str) -> bool:
    """Does the handle ``name`` itself escape through ``value``?
    ``return fh`` / ``return (a, fh)`` / ``return closing(fh)`` do;
    ``return fh.read()`` only returns derived data — the handle stays
    this function's problem."""
    receivers = {
        id(node.value) for node in ast.walk(value)
        if isinstance(node, ast.Attribute)
    }
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        and id(sub) not in receivers
        for sub in ast.walk(value)
    )


def _name_is_returned(fn: ast.AST, name: str) -> bool:
    for node in _own_walk(fn):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                and node.value is not None \
                and _escapes_via(node.value, name):
            return True
    return False


def seed_resource_returns(project: EffectsProject) -> None:
    """Mark every summary whose function hands back an open resource
    (directly returned, or bound to a name that is returned without a
    local close).  Runs at project-build time so callers see callee
    summaries regardless of file order."""
    for effects in project.functions.values():
        ctx = project.contexts[effects.module]
        fn = effects.node
        parents = _parents(fn)
        for node in _own_walk(fn):
            if not isinstance(node, ast.Call):
                continue
            reason = _resource_call_reason(ctx, node, project,
                                           effects.module,
                                           effects.class_key)
            if reason is None:
                continue
            parent = parents.get(id(node))
            if isinstance(parent, (ast.Return, ast.Yield)):
                effects.returns_resource = True
            elif isinstance(parent, ast.Assign) \
                    and len(parent.targets) == 1 \
                    and isinstance(parent.targets[0], ast.Name) \
                    and _name_is_returned(fn, parent.targets[0].id) \
                    and not _name_has_close(fn, parent.targets[0].id):
                effects.returns_resource = True


def check_resource_lifetime(
    fn: ast.AST, module: str, class_key: Optional[str],
    project: EffectsProject, path: str, findings: List[Finding],
    summary_key: Optional[str] = None,
) -> None:
    ctx = project.contexts[module]
    parents = _parents(fn)
    local_types = project._local_types(module, fn)
    managed_names: Set[str] = set()
    for node in _own_walk(fn):
        if not isinstance(node, ast.Call):
            continue
        reason = _resource_call_reason(ctx, node, project, module, class_key)
        if reason is None:
            continue
        parent = parents.get(id(node))
        if isinstance(parent, ast.withitem):
            if isinstance(parent.optional_vars, ast.Name):
                managed_names.add(parent.optional_vars.id)
            continue
        resolved = _qual_prefix(ctx, node.func)
        if resolved is not None and resolved[1] in ("mkstemp", "mkdtemp"):
            # fd/path tuples: managed when the fd reaches os.fdopen /
            # os.close (the repo's atomic-write idiom).
            if isinstance(parent, ast.Assign) \
                    and isinstance(parent.targets[0], ast.Tuple) \
                    and parent.targets[0].elts \
                    and isinstance(parent.targets[0].elts[0], ast.Name):
                fd_name = parent.targets[0].elts[0].id
                if _name_has_close(fn, fd_name):
                    continue
            _flag(
                findings, "RPL212", path, node,
                f"{reason} creates an fd nothing closes — pass it to "
                "os.fdopen() under a context manager (see core.io)",
            )
            continue
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                if _name_has_close(fn, target.id):
                    continue
                if _name_is_returned(fn, target.id):
                    if summary_key is not None:
                        project.functions[summary_key].returns_resource = True
                    continue
                _flag(
                    findings, "RPL212", path, node,
                    f"{reason} result bound to '{target.id}' is never "
                    "closed, context-managed, or returned — the handle "
                    "leaks until GC finalizes it at an arbitrary point",
                )
                continue
            if isinstance(target, ast.Attribute):
                # Ownership moved onto an object; require a finalizer or
                # close elsewhere — beyond one-function scope, allow it.
                continue
        if isinstance(parent, ast.Call):
            wrapper = None
            if isinstance(parent.func, ast.Attribute):
                wrapper = parent.func.attr
            elif isinstance(parent.func, ast.Name):
                wrapper = parent.func.id
            if wrapper in _RESOURCE_WRAPPERS:
                continue
            _flag(
                findings, "RPL212", path, node,
                f"{reason} passed straight into {wrapper or 'a call'}(); "
                "no reference survives to close it — open under a `with` "
                "and pass the handle",
            )
            continue
        if isinstance(parent, ast.Return):
            if summary_key is not None:
                project.functions[summary_key].returns_resource = True
            continue
        if isinstance(parent, ast.Expr):
            _flag(
                findings, "RPL212", path, node,
                f"{reason} result discarded — the resource is opened and "
                "immediately leaked",
            )

    # Callers that discard a resource-returning function's result.
    for node in _own_walk(fn):
        if not isinstance(node, ast.Call):
            continue
        parent = parents.get(id(node))
        if not isinstance(parent, ast.Expr):
            continue
        for key in project.resolve_call(module, node.func, class_key,
                                        local_types):
            callee = project.functions.get(key)
            if callee is not None and callee.returns_resource:
                _flag(
                    findings, "RPL212", path, node,
                    f"result of {callee.qualname}() is discarded but "
                    "carries an open resource the caller must close",
                )
                break

    # Buffer escape: views built over a with-managed resource must not
    # outlive the block.
    for node in _own_walk(fn):
        if not isinstance(node, ast.Call):
            continue
        is_view = (isinstance(node.func, ast.Name)
                   and node.func.id == "memoryview") \
            or (isinstance(node.func, ast.Attribute)
                and node.func.attr == "frombuffer")
        if not is_view:
            continue
        over_managed = any(
            isinstance(sub, ast.Name) and sub.id in managed_names
            for arg in node.args for sub in ast.walk(arg)
        )
        if not over_managed:
            continue
        parent = parents.get(id(node))
        escapes = isinstance(parent, ast.Return) \
            or (isinstance(parent, ast.Assign)
                and any(isinstance(t, ast.Attribute)
                        for t in parent.targets)) \
            or (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr == "adopt_buffers")
        if not escapes and isinstance(parent, ast.Assign) \
                and isinstance(parent.targets[0], ast.Name):
            escapes = _name_is_returned(fn, parent.targets[0].id)
        if escapes:
            _flag(
                findings, "RPL212", path, node,
                "buffer view over a with-managed resource escapes the "
                "block; the backing store closes at exit and the view "
                "dangles — copy the data or keep the store open for the "
                "view's lifetime (np.memmap keeps its own reference and "
                "is safe)",
            )


# ---------------------------------------------------------------------------
# RPL213 — atomic write idiom
# ---------------------------------------------------------------------------
def _write_mode_of(call: ast.Call) -> Optional[str]:
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _has_rename_marker(ctx, fn: ast.AST) -> bool:
    for node in _own_walk(fn):
        if not isinstance(node, ast.Call):
            continue
        resolved = _qual_prefix(ctx, node.func)
        if resolved is not None and resolved[0] in ("os", "tempfile") \
                and resolved[1] in ("replace", "rename", "mkstemp",
                                    "mkdtemp", "NamedTemporaryFile"):
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("replace", "rename") \
                and len(node.args) == 1:
            return True
    return False


def _mentions_temp(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and ("tmp" in name.lower()
                                 or "temp" in name.lower()):
            return True
    return False


def check_atomic_writes(
    fn: ast.AST, module: str, project: EffectsProject, path: str,
    findings: List[Finding],
) -> None:
    ctx = project.contexts[module]
    if _has_rename_marker(ctx, fn):
        return
    for node in _own_walk(fn):
        if not isinstance(node, ast.Call):
            continue
        target: Optional[ast.AST] = None
        mode: Optional[str] = None
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _write_mode_of(node)
            target = node.args[0] if node.args else None
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr == "open":
                mode = _write_mode_of(node)
                target = node.func.value
            elif node.func.attr in ("write_text", "write_bytes"):
                mode = "w"
                target = node.func.value
        if mode is None or not any(c in mode for c in "wx") or "a" in mode:
            continue
        if target is not None and _mentions_temp(target):
            continue
        _flag(
            findings, "RPL213", path, node,
            "in-place write: a crash mid-write leaves a torn file other "
            "readers can see — write to a temp file in the same directory "
            "and os.replace() it over the target (core.io._atomic_write), "
            "staging blobs before any manifest references them",
        )


# ---------------------------------------------------------------------------
# module driver
# ---------------------------------------------------------------------------
def _iter_functions(
    body: Sequence[ast.stmt], module: str, class_key: Optional[str],
    prefix: str, out: List[Tuple[ast.AST, Optional[str], str]],
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            out.append((node, class_key, qualname))
            _iter_functions(node.body, module, class_key,
                            f"{qualname}.<locals>.", out)
        elif isinstance(node, ast.ClassDef):
            nested_key = f"{module}.{node.name}" if not prefix else None
            _iter_functions(node.body, module, nested_key,
                            f"{prefix}{node.name}.", out)


def check_module(path: Path, tree: ast.Module,
                 project: EffectsProject) -> List[Finding]:
    parts = module_parts(path)
    if not parts or parts[0] != "repro":
        return []
    module = module_name(path)
    package = module.split(".")[1] if "." in module else ""
    rel = path.as_posix()
    findings: List[Finding] = []
    functions: List[Tuple[ast.AST, Optional[str], str]] = []
    _iter_functions(tree.body, module, None, "", functions)
    for fn, class_key, qualname in functions:
        summary_key = f"{module}.{qualname}" \
            if f"{module}.{qualname}" in project.functions else None
        if isinstance(fn, ast.AsyncFunctionDef):
            project.analyzed_async.add((module, qualname, fn.lineno))
            check_async_blocking(fn, module, class_key, project, rel,
                                 findings)
            _SharedStateAnalyzer(fn, qualname, rel).run(findings)
        check_fire_and_forget(fn, module, project, rel, findings)
        check_pool_captures(fn, module, tree, project, rel, findings)
        check_resource_lifetime(fn, module, class_key, project, rel,
                                findings, summary_key)
        if package in ATOMIC_WRITE_PACKAGES:
            check_atomic_writes(fn, module, project, rel, findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    return findings


__all__ = [
    "ATOMIC_WRITE_PACKAGES",
    "check_async_blocking",
    "check_atomic_writes",
    "check_fire_and_forget",
    "check_module",
    "check_pool_captures",
    "check_resource_lifetime",
]
