"""Runtime sanitizer — ground truth for the static RPL rules.

``reprolint`` (RPL002/RPL003) *statically* claims that store columns
are immutable and cached analyses are pure.  This module checks the
same invariants *dynamically*:

* every :class:`~repro.core.columns.ColumnStore` column (all of
  ``COLUMN_NAMES``, forced into existence) must report
  ``writeable=False``;
* the dataset's content fingerprint — recomputed from raw bytes via
  :func:`~repro.core.columns.compute_fingerprint`, bypassing the memo —
  must be identical before and after every guarded analysis call, and
  must match the memoized :meth:`ColumnStore.fingerprint` (a mismatch
  means someone mutated column content behind a stale memo, which would
  silently poison every :class:`~repro.engine.cache.AnalysisCache` key
  derived from it).

Usage::

    sanitizer = Sanitizer(dataset)
    result = sanitizer.guard(tbf.analyze_tbf, dataset)
    sanitizer.verify()          # raises SanitizerViolation on drift

or end to end (the acceptance gate — a ~50k-ticket trace through the
registry plus ``full_report`` with zero assertions fired)::

    python -m repro.devtools.sanitize --scale 0.175 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.columns import COLUMN_NAMES, ColumnStore, compute_fingerprint
from repro.core.dataset import FOTDataset


class SanitizerViolation(AssertionError):
    """An immutability or fingerprint-drift invariant was broken."""


@dataclass
class SanitizerReport:
    """What a sanitizer run observed."""

    frozen_checks: int = 0
    fingerprint_checks: int = 0
    guarded_calls: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.violations)} violation(s)"
        return (
            f"sanitizer: {status} — {self.guarded_calls} guarded call(s), "
            f"{self.frozen_checks} frozen-array check(s), "
            f"{self.fingerprint_checks} fingerprint check(s)"
        )


class Sanitizer:
    """Watches one dataset view for mutation across analysis calls.

    ``strict=True`` (default) raises :class:`SanitizerViolation` at the
    first broken invariant; ``strict=False`` records violations in
    :attr:`report` for batch inspection (used by the linter's own test
    suite to observe deliberate mutations without unwinding).
    """

    def __init__(self, dataset: FOTDataset, *, strict: bool = True) -> None:
        self.dataset = dataset
        self.store: ColumnStore = dataset.store
        self.strict = strict
        self.report = SanitizerReport()
        # Fresh hash, never the memo: the memo could itself be stale.
        self._expected = compute_fingerprint(self.store)
        self._expected_view = dataset.fingerprint()

    # ------------------------------------------------------------------
    def _violate(self, message: str) -> None:
        self.report.violations.append(message)
        if self.strict:
            raise SanitizerViolation(message)

    def assert_frozen(self, label: str = "") -> None:
        """Force every store column into existence and assert each one
        is non-writeable."""
        suffix = f" ({label})" if label else ""
        self.report.frozen_checks += 1
        for name in COLUMN_NAMES:
            column = self.store.column(name)
            if column.flags.writeable:
                self._violate(f"store column {name!r} is writeable{suffix}")
        indices = self.dataset._indices
        if indices is not None and indices.flags.writeable:
            self._violate(f"view index array is writeable{suffix}")

    def assert_unchanged(self, label: str = "") -> None:
        """Recompute the content hash from raw bytes and compare it to
        the capture-time value and to the memoized fingerprint."""
        suffix = f" ({label})" if label else ""
        self.report.fingerprint_checks += 1
        fresh = compute_fingerprint(self.store)
        if fresh != self._expected:
            self._violate(
                f"store content hash drifted{suffix}: "
                f"{self._expected[:12]} -> {fresh[:12]}"
            )
        memoized = self.store.fingerprint()
        if memoized != fresh:
            self._violate(
                f"memoized store fingerprint is stale{suffix}: "
                f"memo {memoized[:12]} != fresh {fresh[:12]}"
            )
        if self.dataset.fingerprint() != self._expected_view:
            self._violate(f"view fingerprint drifted{suffix}")

    def checkpoint(self, label: str = "") -> None:
        self.assert_frozen(label)
        self.assert_unchanged(label)

    # ------------------------------------------------------------------
    def guard(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` between two checkpoints."""
        name = getattr(fn, "__qualname__", repr(fn))
        self.checkpoint(f"before {name}")
        value = fn(*args, **kwargs)
        self.report.guarded_calls += 1
        self.checkpoint(f"after {name}")
        return value

    def verify(self) -> SanitizerReport:
        """Final checkpoint; raises on any recorded violation even in
        non-strict mode."""
        self.checkpoint("final")
        if self.report.violations:
            raise SanitizerViolation(
                "; ".join(self.report.violations[:5])
                + (f" (+{len(self.report.violations) - 5} more)"
                   if len(self.report.violations) > 5 else "")
            )
        return self.report


# ---------------------------------------------------------------------------
# end-to-end run
# ---------------------------------------------------------------------------
def run_guarded_report(dataset: FOTDataset, *,
                       strict: bool = True) -> SanitizerReport:
    """Run every registered analysis plus the full paper report over
    ``dataset`` under sanitizer guard and return the report."""
    from repro.analysis.full_report import full_report
    from repro.api import ANALYSES

    sanitizer = Sanitizer(dataset, strict=strict)
    sanitizer.assert_frozen("initial")
    for fn, params in ANALYSES.values():
        sanitizer.guard(fn, dataset, **params)
    sanitizer.guard(full_report, dataset)
    sanitizer.verify()
    return sanitizer.report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sanitize",
        description="Run all analyses + full_report under runtime "
                    "immutability and fingerprint guards",
    )
    parser.add_argument(
        "--path", default=None,
        help="ticket dump to load (.jsonl/.csv); default: simulate a trace",
    )
    parser.add_argument("--scale", type=float, default=0.175,
                        help="simulated fleet scale (0.175 ≈ 50k tickets)")
    parser.add_argument("--seed", type=int, default=20170626)
    parser.add_argument("--jobs", default="auto",
                        help="worker processes for trace generation "
                        "(N, 'auto' or 'serial')")
    args = parser.parse_args(argv)

    import repro.api as api
    from repro.engine import coerce_jobs

    if args.path is not None:
        dataset = api.load(args.path, lenient=True)
        print(f"loaded {len(dataset)} tickets from {args.path}")
    else:
        policy = api.ExecutionPolicy(jobs=coerce_jobs(args.jobs))
        trace = api.simulate(scale=args.scale, seed=args.seed, policy=policy)
        dataset = trace.dataset
        print(
            f"simulated {len(dataset)} tickets "
            f"(scale={args.scale}, seed={args.seed}, jobs={args.jobs})"
        )
    try:
        report = run_guarded_report(dataset)
    except SanitizerViolation as exc:
        print(f"sanitizer: VIOLATION — {exc}")
        return 1
    print(report.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())


__all__ = [
    "Sanitizer",
    "SanitizerReport",
    "SanitizerViolation",
    "run_guarded_report",
    "main",
]
