"""``reprolint`` — the repo-specific AST invariant checker.

Run it over the default tree::

    python -m repro.devtools.lint src tests benchmarks
    repro lint                      # CLI alias, same defaults

Exit status is 0 when every finding is either inline-suppressed or
recorded in the baseline file, 1 otherwise (2 for usage errors).

**Suppressions** are inline comments with *required* justification
text::

    arr[0] = 1  # reprolint: disable=RPL002 -- fixture exercising the raise

A suppression without the ``-- reason`` tail does not suppress anything
and is itself reported (RPL000), as is a suppression that matches no
finding on its line — so stale suppressions cannot rot in place.

**Baseline**: ``--write-baseline`` records the current findings into a
JSON file (default ``reprolint-baseline.json``) keyed by content
fingerprints (engine + rule + path + source line text), so pre-existing
accepted findings survive unrelated line drift without blocking CI.
The engine participates in the fingerprint so an AST-engine baseline
entry can never mask a dataflow/effects finding at the same location.
New code starts from an empty baseline.

**Engines** are cumulative: ``ast`` ⊂ ``dataflow`` ⊂ ``effects`` ⊂
``perf`` — ``--engine perf`` runs the syntactic rules, the
abstract-interpretation pass, the concurrency/resource-safety pass,
*and* the scale-hazard pass (RPL301–305 over the hot packages), so one
SARIF upload covers the whole catalog.

**Fixes**: rules may attach span-based rewrites to findings;
``--fix`` applies them (looping lint→fix until stable, so a second
``--fix`` is always a no-op) and SARIF output carries them as
``fixes`` for IDE quick-fix surfaces.  ``--update-baseline`` rewrites
the baseline keeping only fingerprints that still match a current
finding — entries for deleted files or fixed findings are pruned and
counted, and no new debt is ever added silently.

``--changed-since <ref>`` restricts *reported* findings to files that
differ from a git ref (analysis still sees the whole tree, so
interprocedural summaries stay accurate) — the fast PR signal next to
the full CI job.

Reporters: human ``file:line:col: RPLxxx message`` (default) and
``--format json`` emitting ``{"version", "findings", "summary"}``.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.rules import RULES, Finding, Project, check_file

ENGINES = ("ast", "dataflow", "effects", "perf")

BASELINE_VERSION = 2
JSON_VERSION = 1
DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "reprolint-baseline.json"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
    r"(?P<tail>.*)$"
)
_JUSTIFY_RE = re.compile(r"^\s*--\s*\S")


@dataclass
class Suppression:
    line: int
    codes: Tuple[str, ...]
    file_level: bool
    justified: bool
    used: bool = False


def _parse_suppressions(source: str, path: str) -> Tuple[List[Suppression],
                                                         List[Finding]]:
    """Extract suppression comments via tokenize so comment-lookalikes
    inside string literals (e.g. linter test fixtures) are ignored."""
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except tokenize.TokenizeError:  # pragma: no cover - file already parsed
        return [], []
    for token in comments:
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            if "reprolint:" in token.string:
                findings.append(
                    Finding("RPL000", path, token.start[0], token.start[1],
                            f"malformed reprolint comment {token.string.strip()!r}")
                )
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
        )
        unknown = [code for code in codes if code not in RULES]
        if unknown:
            findings.append(
                Finding("RPL000", path, token.start[0], token.start[1],
                        f"suppression names unknown rule(s) {unknown}")
            )
        justified = bool(_JUSTIFY_RE.match(match.group("tail")))
        if not justified:
            findings.append(
                Finding(
                    "RPL000", path, token.start[0], token.start[1],
                    "suppression is missing its justification — write "
                    "'# reprolint: disable=RPLxxx -- <why this is safe>'",
                )
            )
        suppressions.append(
            Suppression(
                line=token.start[0],
                codes=codes,
                file_level=match.group(1) == "disable-file",
                justified=justified,
            )
        )
    return suppressions, findings


def _apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression], path: str,
    checked_rules: Optional["set[str]"] = None,
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split raw findings into (active, suppressed) and report unused or
    unjustified suppressions as RPL000 meta-findings.

    ``checked_rules`` is the set of rules the current engine actually
    evaluates; a suppression naming only rules outside it (e.g. an
    RPL101 suppression under ``--engine=ast``) is left alone rather
    than reported as unused.
    """
    by_line: Dict[int, List[Suppression]] = {}
    file_level: List[Suppression] = []
    for suppression in suppressions:
        if suppression.file_level:
            file_level.append(suppression)
        else:
            by_line.setdefault(suppression.line, []).append(suppression)

    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        hit = None
        for suppression in by_line.get(finding.line, []):
            if finding.rule in suppression.codes:
                hit = suppression
                break
        if hit is None:
            for suppression in file_level:
                if finding.rule in suppression.codes:
                    hit = suppression
                    break
        if hit is not None and hit.justified:
            hit.used = True
            suppressed.append(finding)
        else:
            if hit is not None:
                hit.used = True  # unjustified: finding stays, no "unused" noise
            active.append(finding)

    meta: List[Finding] = []
    for suppression in suppressions:
        if checked_rules is not None and not any(
            code in checked_rules for code in suppression.codes
        ):
            continue
        if not suppression.used:
            meta.append(
                Finding(
                    "RPL000", path, suppression.line, 0,
                    f"unused suppression for {', '.join(suppression.codes)} — "
                    "no such finding on this line; delete it",
                )
            )
    return active, suppressed, meta


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
def fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    """Content fingerprint; the engine is part of the hash so a finding
    baselined under one engine never masks another engine's finding at
    the same location."""
    raw = "|".join(
        (finding.engine, finding.rule, finding.path, line_text.strip(),
         str(occurrence))
    )
    return hashlib.sha1(raw.encode()).hexdigest()


def _fingerprints(findings: Sequence[Finding],
                  sources: Dict[str, List[str]]) -> List[str]:
    """Stable content fingerprint per finding; duplicate (engine, rule,
    text) triples in one file are disambiguated by occurrence index."""
    seen: Dict[Tuple[str, str, str, str], int] = {}
    out = []
    for finding in findings:
        lines = sources.get(finding.path, [])
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        key = (finding.engine, finding.rule, finding.path, text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(fingerprint(finding, text, occurrence))
    return out


def load_baseline(path: Path) -> "set[str]":
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"reprolint: unreadable baseline {path}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        hint = ""
        if payload.get("version") == 1:
            hint = (
                " (version 1 predates engine-aware fingerprints; "
                "regenerate it with --write-baseline)"
            )
        raise SystemExit(
            f"reprolint: baseline {path} has unsupported version "
            f"{payload.get('version')!r}{hint}"
        )
    return {entry["fingerprint"] for entry in payload.get("findings", [])}


def load_baseline_entries(path: Path) -> List[Dict[str, object]]:
    """Full baseline entries (fingerprint + provenance), for pruning."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"reprolint: unreadable baseline {path}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise SystemExit(
            f"reprolint: baseline {path} has unsupported version "
            f"{payload.get('version')!r}"
        )
    return list(payload.get("findings", []))


def write_baseline(path: Path, findings: Sequence[Finding],
                   prints: Sequence[str]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": print_,
                "engine": finding.engine,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
            }
            for finding, print_ in sorted(
                zip(findings, prints), key=lambda pair: pair[0].render()
            )
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------
@dataclass
class LintResult:
    new: List[Finding]
    baselined: List[Finding]
    suppressed: List[Finding]
    new_fingerprints: List[str]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def collect_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise SystemExit(f"reprolint: not a python file or directory: {path}")
    return files


def checked_rules_for(engine: str) -> "Set[str]":
    """Rules the engine actually evaluates (engines are cumulative:
    ast ⊂ dataflow ⊂ effects).  Suppressions naming only rules outside
    the set are left alone rather than reported unused."""
    checked = {
        rule for rule in RULES
        if not rule.startswith(("RPL1", "RPL2", "RPL3"))
    }
    if engine in ("dataflow", "effects", "perf"):
        checked |= {rule for rule in RULES if rule.startswith("RPL1")}
    if engine in ("effects", "perf"):
        checked |= {rule for rule in RULES if rule.startswith("RPL2")}
    if engine == "perf":
        checked |= {rule for rule in RULES if rule.startswith("RPL3")}
    return checked


def run_lint(paths: Sequence[str],
             baseline: Optional[Path] = None,
             engine: str = "ast",
             restrict_to: Optional["Set[str]"] = None) -> LintResult:
    """Lint ``paths`` and classify findings against ``baseline``.

    ``engine="ast"`` runs the syntactic RPL000–005 rules; ``"dataflow"``
    additionally runs the abstract-interpretation pass
    (:mod:`repro.devtools.dataflow`): RPL101–104 plus interprocedural
    RPL001/002 call-site findings; ``"effects"`` additionally runs the
    concurrency & resource-safety pass
    (:mod:`repro.devtools.effects`): RPL201–213; ``"perf"``
    additionally runs the scale-hazard pass
    (:mod:`repro.devtools.perf_rules`): RPL301–305 over the hot
    packages.  Suppression and baseline handling are identical for all
    engines.

    ``restrict_to`` (resolved posix paths) limits *reported* findings
    to those files — interprocedural summaries are still built from
    every linted file, so cross-file effects stay visible.
    """
    if engine not in ENGINES:
        raise SystemExit(f"reprolint: unknown engine {engine!r}")
    files = collect_files(paths)
    trees: Dict[Path, ast.Module] = {}
    sources: Dict[str, List[str]] = {}
    raw_sources: Dict[Path, str] = {}
    for path in files:
        text = path.read_text(encoding="utf-8")
        try:
            trees[path] = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise SystemExit(f"reprolint: cannot parse {path}: {exc}") from exc
        raw_sources[path] = text
        sources[path.as_posix()] = text.splitlines()

    project = Project(trees)
    dataflow_project = None
    effects_project = None
    if engine in ("dataflow", "effects", "perf"):
        from repro.devtools.dataflow import DataflowProject

        dataflow_project = DataflowProject(trees)
    if engine in ("effects", "perf"):
        from repro.devtools.effects import EffectsProject

        effects_project = EffectsProject(trees)
    checked = checked_rules_for(engine)
    all_findings: List[Finding] = []
    suppressed_all: List[Finding] = []
    for path in files:
        if restrict_to is not None \
                and path.resolve().as_posix() not in restrict_to:
            continue
        rel = path.as_posix()
        raw_findings = check_file(path, trees[path], project)
        if dataflow_project is not None:
            from repro.devtools.dataflow import analyze_module

            raw_findings = raw_findings + analyze_module(
                path, trees[path], dataflow_project
            )
        if effects_project is not None:
            from repro.devtools.effects import (
                analyze_module as analyze_effects,
            )

            raw_findings = raw_findings + analyze_effects(
                path, trees[path], effects_project
            )
        if engine == "perf":
            from repro.devtools.perf_rules import (
                analyze_module as analyze_perf,
            )

            raw_findings = raw_findings + analyze_perf(
                path, trees[path], dataflow_project
            )
        raw_findings = sorted(
            raw_findings,
            key=lambda f: (f.line, f.col, f.rule, f.message),
        )
        suppressions, meta = _parse_suppressions(raw_sources[path], rel)
        active, suppressed, unused = _apply_suppressions(
            raw_findings, suppressions, rel, checked_rules=checked
        )
        all_findings.extend(active)
        all_findings.extend(meta)
        all_findings.extend(unused)
        suppressed_all.extend(suppressed)

    prints = _fingerprints(all_findings, sources)
    known = load_baseline(baseline) if baseline else set()
    new: List[Finding] = []
    new_prints: List[str] = []
    baselined: List[Finding] = []
    for finding, print_ in zip(all_findings, prints):
        if print_ in known:
            baselined.append(finding)
        else:
            new.append(finding)
            new_prints.append(print_)
    return LintResult(
        new=new,
        baselined=baselined,
        suppressed=suppressed_all,
        new_fingerprints=new_prints,
    )


def _report_json(result: LintResult) -> str:
    return json.dumps(
        {
            "version": JSON_VERSION,
            "findings": [
                {
                    "engine": finding.engine,
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "message": finding.message,
                    "fingerprint": print_,
                }
                for finding, print_ in zip(result.new, result.new_fingerprints)
            ],
            "summary": {
                "new": len(result.new),
                "baselined": len(result.baselined),
                "suppressed": len(result.suppressed),
            },
        },
        indent=2,
    )


def _report_sarif(result: LintResult) -> str:
    from repro.devtools.sarif import render_sarif

    fingerprints = dict(zip(result.new, result.new_fingerprints))
    return render_sarif(result.new, fingerprints).rstrip("\n")


def _report_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.new]
    lines.append(
        f"reprolint: {len(result.new)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the repro codebase "
                    "(determinism, immutability, cache purity, schema "
                    "integrity, API hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline keeping only fingerprints that "
             "still match a current finding (prunes entries for "
             "deleted files and fixed findings, reports the counts, "
             "never adds new debt) and exit 0",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply machine-attached fixes (looping lint→fix until "
             "stable), then report what remains; a second --fix run "
             "is a no-op",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default="ast",
        help="'ast' runs the syntactic rules; 'dataflow' adds the "
             "abstract-interpretation analyses (RPL101-104 and "
             "interprocedural RPL001/002); 'effects' additionally adds "
             "the concurrency & resource-safety analyses (RPL201-213); "
             "'perf' additionally adds the scale-hazard analyses "
             "(RPL301-305 over the hot packages)",
    )
    parser.add_argument(
        "--changed-since", default=None, metavar="REF",
        help="only report findings in files that differ from git REF "
             "(tracked changes plus untracked files); analysis still "
             "covers every linted file so interprocedural summaries "
             "stay whole-tree",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="fmt", help="report format",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog",
    )
    return parser


def changed_files(ref: str) -> "Set[str]":
    """Resolved posix paths of files changed vs ``ref`` — tracked
    modifications plus untracked (not-ignored) files, so a new module
    is linted on the PR that introduces it.

    Degrades gracefully (message + usage exit status 2) when the ref
    does not resolve — not a git repo, a repo with no commits yet, or
    a typo'd ref — instead of surfacing a raw git traceback.
    """
    import subprocess

    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True,
            )
        except OSError as exc:  # git binary missing
            print(f"reprolint: --changed-since {ref!r}: cannot run "
                  f"git: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            reason = detail[0] if detail else f"git exited {proc.returncode}"
            print(
                f"reprolint: --changed-since {ref!r}: {reason}\n"
                "reprolint: the ref must resolve in a git repository "
                "with at least one commit; try 'git log --oneline -1' "
                "to check",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return proc.stdout

    top = Path(_git("rev-parse", "--show-toplevel").strip())
    names = set(_git("diff", "--name-only", "-z", ref, "--").split("\0"))
    names |= set(
        _git("ls-files", "--others", "--exclude-standard", "-z").split("\0")
    )
    return {
        (top / name).resolve().as_posix() for name in names if name
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0

    baseline: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline = Path(args.baseline)
        elif Path(DEFAULT_BASELINE).exists() or args.write_baseline:
            baseline = Path(DEFAULT_BASELINE)

    restrict: Optional["Set[str]"] = None
    if args.changed_since is not None:
        restrict = changed_files(args.changed_since)

    if args.write_baseline:
        result = run_lint(args.paths, baseline=None, engine=args.engine,
                          restrict_to=restrict)
        target = baseline or Path(DEFAULT_BASELINE)
        write_baseline(target, result.new, result.new_fingerprints)
        print(
            f"reprolint: wrote {len(result.new)} finding(s) to {target}"
        )
        return 0

    if args.update_baseline:
        target = baseline or Path(DEFAULT_BASELINE)
        entries = load_baseline_entries(target)
        result = run_lint(args.paths, baseline=None, engine=args.engine,
                          restrict_to=restrict)
        old_prints = {entry["fingerprint"] for entry in entries}
        kept = [
            (finding, print_)
            for finding, print_ in zip(result.new, result.new_fingerprints)
            if print_ in old_prints
        ]
        kept_prints = {print_ for _, print_ in kept}
        gone_files = sum(
            1 for entry in entries
            if entry["fingerprint"] not in kept_prints
            and not Path(str(entry.get("path", ""))).exists()
        )
        stale = len(entries) - len(kept) - gone_files
        write_baseline(target, [f for f, _ in kept],
                       [p for _, p in kept])
        print(
            f"reprolint: baseline {target} updated — kept {len(kept)} "
            f"entr{'y' if len(kept) == 1 else 'ies'}, pruned "
            f"{gone_files} for missing files, {stale} no longer "
            "matching any finding"
        )
        return 0

    if args.fix:
        from repro.devtools.fixer import fix_paths

        fixed = fix_paths(args.paths, baseline=baseline,
                          engine=args.engine, restrict_to=restrict)
        note = (
            f"reprolint: applied {fixed.applied} fix(es) in "
            f"{len(fixed.files)} file(s) over {fixed.passes} pass(es)"
        )
        if fixed.cycle:
            note += " — WARNING: fixable findings remain (fix cycle?)"
        print(note)

    result = run_lint(args.paths, baseline=baseline, engine=args.engine,
                      restrict_to=restrict)
    if args.fmt == "json":
        report = _report_json(result)
    elif args.fmt == "sarif":
        report = _report_sarif(result)
    else:
        report = _report_text(result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"reprolint: wrote {args.fmt} report to {args.output} "
              f"({len(result.new)} new finding(s))")
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())


__all__ = [
    "LintResult",
    "changed_files",
    "checked_rules_for",
    "run_lint",
    "load_baseline",
    "load_baseline_entries",
    "write_baseline",
    "collect_files",
    "main",
]
