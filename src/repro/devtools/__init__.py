"""Developer tooling — the static invariant linter and its runtime
complement.

* :mod:`repro.devtools.rules` — the RPL rule catalog and AST checkers.
* :mod:`repro.devtools.lint` — ``reprolint`` driver
  (``python -m repro.devtools.lint`` / ``repro lint``): suppressions,
  baseline, reporters, ``--engine`` selection.
* :mod:`repro.devtools.dataflow` — abstract-interpretation engine
  (``--engine=dataflow``): per-function CFGs (:mod:`~repro.devtools.cfg`)
  analyzed to fixpoint over a product fact lattice
  (:mod:`~repro.devtools.lattice`) for the RPL101–104 unit/dtype/order
  rules and interprocedural RPL001/RPL002 via call-graph summaries.
* :mod:`repro.devtools.sarif` — SARIF 2.1.0 reporter for code-scanning
  upload (``--format sarif``).
* :mod:`repro.devtools.sanitize` — runtime sanitizer that asserts
  store arrays are frozen and hash-guards dataset fingerprints across
  analysis calls, validating the static rules against ground truth.

Nothing here is imported by the library itself; the package is
deliberately dependency-light so the linter can run in CI before the
scientific stack is exercised.
"""

