"""Developer tooling — the static invariant linter and its runtime
complement.

* :mod:`repro.devtools.rules` — the RPL rule catalog and AST checkers.
* :mod:`repro.devtools.lint` — ``reprolint`` driver
  (``python -m repro.devtools.lint`` / ``repro lint``): suppressions,
  baseline, reporters.
* :mod:`repro.devtools.sanitize` — runtime sanitizer that asserts
  store arrays are frozen and hash-guards dataset fingerprints across
  analysis calls, validating the static rules against ground truth.

Nothing here is imported by the library itself; the package is
deliberately dependency-light so the linter can run in CI before the
scientific stack is exercised.
"""

