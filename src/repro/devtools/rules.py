"""Rule implementations for *reprolint* (RPL001–RPL005).

Each rule encodes one repo-specific invariant that generic linters
cannot express because it depends on knowledge of this codebase — the
canonical FOT schema, the :class:`~repro.core.dataset.FOTDataset` column
surface, and the analysis-cache registries:

* **RPL001 determinism** — no unseeded randomness or wall-clock reads in
  the data-producing packages.  Seeded ``numpy.random.default_rng`` /
  ``SeedSequence`` flows are the only sanctioned entropy source.
* **RPL002 immutability** — arrays derived from ``ColumnStore`` /
  ``FOTDataset`` columns are frozen; mutating them (in-place methods,
  subscript stores, augmented assignment) is a bug even when numpy would
  raise at runtime, because the raise happens on a data-dependent path.
  Inside ``repro/core`` every locally created array that escapes the
  function (returned or stored on an object) must be frozen with
  ``setflags(write=False)``.
* **RPL003 cache purity** — functions registered with the
  :class:`~repro.engine.cache.AnalysisCache` (the ``repro.api.ANALYSES``
  registry and the ``full_report`` section builders) must be pure:
  no file I/O, no module-global mutation, no argument mutation.
* **RPL004 schema integrity** — FOT field names referenced as string
  literals (loader record keys, corruptor field lists) must exist in
  the canonical :class:`~repro.core.ticket.FOT` schema.
* **RPL005 API hygiene** — every ``__all__`` entry must resolve to a
  real binding (including PEP 562 lazy-export tables), and the facade
  re-exports in ``repro/__init__.py`` / ``repro.api`` must agree with
  the source modules' ``__all__``.

The checks are deliberately heuristic (single-pass, order-sensitive,
no CFG); the runtime sanitizer in :mod:`repro.devtools.sanitize` is the
ground-truth complement that validates the same invariants dynamically.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: rule id -> one-line description (also rendered by ``--list-rules``).
RULES: Dict[str, str] = {
    "RPL000": "meta: malformed or unused reprolint suppression",
    "RPL001": "determinism: no unseeded randomness or wall-clock reads in data code",
    "RPL002": "immutability: never mutate arrays derived from ColumnStore/FOTDataset",
    "RPL003": "cache purity: cached analysis functions must be side-effect free",
    "RPL004": "schema integrity: FOT field literals must exist in the canonical schema",
    "RPL005": "API hygiene: __all__ must match real bindings and facade re-exports",
    # Semantic rules implemented by the dataflow engine
    # (repro.devtools.dataflow, --engine=dataflow).
    "RPL101": "time units: no cross-unit arithmetic/comparison; convert via core.timeutil",
    "RPL102": "time units: no magic second-count literals folded into arithmetic",
    "RPL103": "dtype width: no narrowing casts/accumulation over time-unit values",
    "RPL104": "shard determinism: sort set/dict/fs-listing iteration before ordered folds",
    # Concurrency & resource-safety rules implemented by the effects
    # engine (repro.devtools.effects, --engine=effects).
    "RPL201": "async blocking: no synchronous blocking calls on the event loop",
    "RPL202": "async sharing: no shared mutable state read-then-written across an await",
    "RPL203": "async tasks: create_task results must be retained or given a done-callback",
    "RPL211": "pool captures: process-pool work must not capture mutable/unpicklable/unseeded-RNG state",
    "RPL212": "resource lifetime: files/mmaps need a context manager, close, or finalizer; buffers must not outlive their backing store",
    "RPL213": "atomic writes: durable files are written via write-then-rename, never in place",
    # Scale-hazard rules implemented by the perf engine
    # (repro.devtools.perf_rules, --engine=perf).
    "RPL301": "perf: no Python-level iteration over dataset rows/columns where a vectorized op exists",
    "RPL302": "perf: no array growth inside loops (np.append/concatenate accumulation, append-then-np.array)",
    "RPL303": "perf: no redundant materialization (np.asarray of an array, .tolist() on hot paths)",
    "RPL304": "perf: no quadratic patterns (list membership in loops, nested dataset-scale loops, per-iteration sorts)",
    "RPL305": "perf: no loop-invariant recomputation of expensive calls (fingerprints, group-bys, ppf/gamma math)",
}


@dataclasses.dataclass(frozen=True)
class Edit:
    """One span replacement in a source file.

    Spans use 1-based lines and 0-based columns (AST coordinates); the
    replacement text substitutes the half-open region
    ``[(start_line, start_col), (end_line, end_col))``.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str

    @property
    def start(self) -> Tuple[int, int]:
        return (self.start_line, self.start_col)

    @property
    def end(self) -> Tuple[int, int]:
        return (self.end_line, self.end_col)


@dataclasses.dataclass(frozen=True)
class Fix:
    """A machine-applicable fix: a description plus one or more edits
    in the finding's own file.  Applied by ``fouryears lint --fix``
    (:mod:`repro.devtools.fixer`) and surfaced as SARIF ``fixes``."""

    description: str
    edits: Tuple[Edit, ...]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One linter finding, anchored to a file position.

    ``engine`` names the analysis family that produced the finding
    (``"ast"``, ``"dataflow"``, ``"effects"`` or ``"perf"``); it
    participates in the baseline fingerprint so a finding accepted
    under one engine can never mask a different engine's finding at the
    same location.  ``fix`` optionally carries a machine-applicable
    rewrite (it does not participate in fingerprints).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    engine: str = "ast"
    fix: Optional[Fix] = None

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# canonical knowledge imported from the library itself (no drift possible)
# ---------------------------------------------------------------------------
def _schema_fields() -> "frozenset[str]":
    from repro.core.ticket import FOT

    return frozenset(f.name for f in dataclasses.fields(FOT))


def _column_properties() -> "frozenset[str]":
    """Names of ``FOTDataset`` properties that expose store columns —
    the taint sources for RPL002."""
    from repro.core.dataset import FOTDataset

    names = set()
    for name, member in vars(FOTDataset).items():
        if isinstance(member, property) and member.fget is not None:
            try:
                source = inspect.getsource(member.fget)
            except (OSError, TypeError):  # pragma: no cover - source always on disk
                continue
            if "_col(" in source or "_derived(" in source:
                names.add(name)
    return frozenset(names)


SCHEMA_FIELDS = _schema_fields()
COLUMN_PROPERTIES = _column_properties()

#: Packages under ``repro`` whose code must be deterministic (RPL001).
DETERMINISTIC_PACKAGES = frozenset(
    {"simulation", "analysis", "stats", "engine", "core", "fms", "fleet", "robustness"}
)

#: The only sanctioned names on ``numpy.random`` (seeded-generator flows).
NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: ndarray methods that mutate in place (RPL002).
MUTATOR_METHODS = frozenset(
    {"sort", "fill", "resize", "put", "partition", "itemset", "byteswap"}
)

#: numpy constructors whose results must be frozen before escaping core/.
NP_CONSTRUCTORS = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "asarray",
        "array",
        "fromiter",
        "concatenate",
        "linspace",
        "empty_like",
        "zeros_like",
        "ones_like",
        "full_like",
    }
)

#: Variable names treated as raw FOT record dicts in the record modules
#: (RPL004).  Scoped to a name list so unrelated dicts (manifests,
#: counters) never false-positive.
RECORD_NAMES = frozenset(
    {"record", "records", "row", "rows", "rec", "raw", "dup", "dropped", "bad",
     "mislabeled", "repaired"}
)

#: Modules whose record-dict subscripts/get() keys are schema-checked.
RECORD_MODULES = frozenset({"repro.core.io", "repro.robustness.chaos"})

#: Keys legal on a record dict beyond the FOT schema.
RECORD_EXTRA_KEYS = frozenset({"detail"})

#: Methods that mutate their receiver (RPL003 argument/global mutation).
IMPURE_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "clear", "pop", "popitem",
        "update", "setdefault", "sort", "reverse", "add", "discard",
        "fill", "resize", "put", "itemset", "setflags",
    }
)

#: File-touching callables banned inside cached analyses (RPL003).
IO_PATH_METHODS = frozenset(
    {
        "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
        "mkdir", "rmdir", "touch", "rename", "replace", "symlink_to",
    }
)
IO_OS_FUNCTIONS = frozenset(
    {"remove", "unlink", "rename", "replace", "makedirs", "mkdir", "rmdir",
     "system", "popen"}
)


# ---------------------------------------------------------------------------
# path / module helpers
# ---------------------------------------------------------------------------
def module_parts(path: Path) -> Tuple[str, ...]:
    """Path components from the package anchor (``repro`` / ``tests`` /
    ``benchmarks``) down to the file."""
    parts = path.parts
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            return parts[parts.index(anchor):]
    return (path.name,)


def module_name(path: Path) -> str:
    """Dotted module name of a source file (``repro.core.io``)."""
    parts = list(module_parts(path))
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


def _is_str(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _str_elements(node: ast.AST) -> Optional[List[Tuple[str, int, int]]]:
    """String elements of a list/tuple/set literal (or a ``frozenset``/
    ``set``/``tuple`` call wrapping one); None when not such a literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in {"frozenset", "set", "tuple", "list"} \
            and len(node.args) == 1:
        node = node.args[0]
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        out = []
        for element in node.elts:
            if not _is_str(element):
                return None
            assert isinstance(element, ast.Constant)
            out.append((element.value, element.lineno, element.col_offset))
        return out
    return None


# ---------------------------------------------------------------------------
# project-wide context (cross-file registries for RPL003 / RPL005)
# ---------------------------------------------------------------------------
class Project:
    """Parsed view of every file in one lint run."""

    def __init__(self, files: Dict[Path, ast.Module]):
        self.files = files
        self.by_module: Dict[str, ast.Module] = {
            module_name(path): tree for path, tree in files.items()
        }
        #: module name -> function names that must be cache-pure.
        self.registered_pure: Dict[str, Set[str]] = {}
        self._collect_registries()

    # -- registry collection -------------------------------------------
    def _collect_registries(self) -> None:
        api = self.by_module.get("repro.api")
        if api is not None:
            self._collect_analyses_registry(api)
        full_report = self.by_module.get("repro.analysis.full_report")
        if full_report is not None:
            self._collect_function_references(
                "repro.analysis.full_report", full_report
            )

    def _register(self, module: str, func: str) -> None:
        self.registered_pure.setdefault(module, set()).add(func)

    def _collect_analyses_registry(self, tree: ast.Module) -> None:
        """Functions referenced in ``repro.api.ANALYSES`` are cached via
        ``AnalysisCache.call`` and must be pure."""
        alias_to_module: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    alias_to_module[bound] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    alias_to_module.setdefault(bound, alias.name)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == "ANALYSES"):
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            for value in node.value.values:
                ref = value.elts[0] if (
                    isinstance(value, ast.Tuple) and value.elts
                ) else value
                if isinstance(ref, ast.Attribute) and isinstance(ref.value, ast.Name):
                    target_module = alias_to_module.get(ref.value.id)
                    if target_module:
                        self._register(target_module, ref.attr)
                elif isinstance(ref, ast.Name):
                    self._register("repro.api", ref.id)

    def _collect_function_references(self, module: str, tree: ast.Module) -> None:
        """Module-level functions referenced *as values* (not called) are
        handed to the cache by ``full_report`` and must be pure."""
        local_functions = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        called = {
            id(node.func) for node in ast.walk(tree) if isinstance(node, ast.Call)
        }
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in local_functions
                and id(node) not in called
            ):
                self._register(module, node.id)

    # -- lookups --------------------------------------------------------
    def module_all(self, module: str) -> Optional[List[str]]:
        """The ``__all__`` literal of a module, or None."""
        tree = self.by_module.get(module)
        if tree is None:
            return None
        names = _module_all_names(tree)
        return names[0] if names else None


def _module_all_names(tree: ast.Module) -> Optional[Tuple[List[str], int]]:
    """``(__all__ entries, line)`` from top-level assignments (including
    ``__all__ += [...]`` extensions)."""
    collected: List[str] = []
    line = 0
    seen = False
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "__all__":
            value = node.value
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name) \
                and node.target.id == "__all__":
            value = node.value
        if value is None:
            continue
        elements = _str_elements(value)
        if elements is None:
            return None  # dynamic __all__ — out of scope
        seen = True
        line = line or node.lineno
        collected.extend(name for name, _, _ in elements)
    return (collected, line) if seen else None


def _module_bound_names(tree: ast.Module) -> Set[str]:
    """Names statically bound at module top level, including keys of
    lazy-export dict literals when the module defines ``__getattr__``
    (PEP 562)."""
    bound: Set[str] = set()
    has_getattr = False
    lazy_keys: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if _is_str(key):
                        assert isinstance(key, ast.Constant)
                        lazy_keys.add(key.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
    if has_getattr:
        bound |= lazy_keys
    return bound


# ---------------------------------------------------------------------------
# RPL001 — determinism
# ---------------------------------------------------------------------------
class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self.random_mods: Set[str] = set()
        self.nprandom_mods: Set[str] = set()
        self.np_mods: Set[str] = set()
        self.time_mods: Set[str] = set()
        self.os_mods: Set[str] = set()
        self.uuid_mods: Set[str] = set()
        self.secrets_mods: Set[str] = set()
        self.datetime_mods: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.banned_names: Dict[str, str] = {}

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding("RPL001", self.path, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0), message)
        )

    # imports ----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            mod = alias.name
            if mod == "random":
                self.random_mods.add(bound)
            elif mod in {"numpy", "np"}:
                self.np_mods.add(bound)
            elif mod == "numpy.random":
                if alias.asname:
                    self.nprandom_mods.add(bound)
                else:
                    self.np_mods.add("numpy")
            elif mod == "time":
                self.time_mods.add(bound)
            elif mod == "os":
                self.os_mods.add(bound)
            elif mod == "uuid":
                self.uuid_mods.add(bound)
            elif mod == "secrets":
                self.secrets_mods.add(bound)
                self._flag(node, "import of 'secrets' in deterministic code")
            elif mod == "datetime":
                self.datetime_mods.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "random":
                self._flag(
                    node,
                    f"'from random import {alias.name}' — stdlib random is "
                    "unseeded; use a numpy Generator threaded from SeedSequence",
                )
            elif module == "secrets":
                self._flag(node, "import from 'secrets' in deterministic code")
            elif module == "numpy" and alias.name == "random":
                self.nprandom_mods.add(bound)
            elif module == "numpy.random" and alias.name not in NP_RANDOM_ALLOWED:
                self._flag(
                    node,
                    f"legacy numpy.random.{alias.name} import — only seeded "
                    "Generator/SeedSequence flows are allowed",
                )
            elif module == "time" and alias.name in {"time", "time_ns"}:
                self.banned_names[bound] = f"time.{alias.name}"
            elif module == "os" and alias.name == "urandom":
                self.banned_names[bound] = "os.urandom"
            elif module == "uuid" and alias.name in {"uuid1", "uuid4"}:
                self.banned_names[bound] = f"uuid.{alias.name}"
            elif module == "datetime" and alias.name in {"datetime", "date"}:
                self.datetime_classes.add(bound)
        self.generic_visit(node)

    # usage ------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            name = base.id
            if name in self.random_mods:
                self._flag(
                    node,
                    f"random.{node.attr} — stdlib random is unseeded; use a "
                    "numpy Generator threaded from SeedSequence",
                )
            elif name in self.nprandom_mods and node.attr not in NP_RANDOM_ALLOWED:
                self._flag(
                    node,
                    f"legacy numpy.random.{node.attr} — only "
                    "default_rng/Generator/SeedSequence flows are allowed",
                )
            elif name in self.time_mods and node.attr in {"time", "time_ns"}:
                self._flag(node, f"time.{node.attr}() wall-clock read in "
                                 "deterministic code")
            elif name in self.os_mods and node.attr == "urandom":
                self._flag(node, "os.urandom — nondeterministic entropy source")
            elif name in self.uuid_mods and node.attr in {"uuid1", "uuid4"}:
                self._flag(node, f"uuid.{node.attr} — nondeterministic id source")
            elif name in self.secrets_mods:
                self._flag(node, f"secrets.{node.attr} — nondeterministic "
                                 "entropy source")
            elif name in self.datetime_classes and node.attr in {
                "now", "utcnow", "today",
            }:
                self._flag(node, f"datetime.{node.attr}() wall-clock read in "
                                 "deterministic code")
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            root = base.value.id
            if root in self.np_mods and base.attr == "random" \
                    and node.attr not in NP_RANDOM_ALLOWED:
                self._flag(
                    node,
                    f"legacy numpy.random.{node.attr} — only "
                    "default_rng/Generator/SeedSequence flows are allowed",
                )
            elif root in self.datetime_mods and base.attr in {"datetime", "date"} \
                    and node.attr in {"now", "utcnow", "today"}:
                self._flag(node, f"datetime.{base.attr}.{node.attr}() wall-clock "
                                 "read in deterministic code")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.banned_names:
            self._flag(node, f"{self.banned_names[node.id]} — nondeterministic "
                             "in data code")
        self.generic_visit(node)


def check_determinism(path: str, parts: Tuple[str, ...],
                      tree: ast.Module) -> List[Finding]:
    if len(parts) < 2 or parts[0] != "repro" or parts[1] not in DETERMINISTIC_PACKAGES:
        return []
    visitor = _DeterminismVisitor(path)
    visitor.visit(tree)
    return visitor.findings


# ---------------------------------------------------------------------------
# RPL002 — immutability
# ---------------------------------------------------------------------------
class _Creation:
    __slots__ = ("line", "col", "name", "frozen", "escaped", "escape_line")

    def __init__(self, name: str, line: int, col: int):
        self.name = name
        self.line = line
        self.col = col
        self.frozen = False
        self.escaped = False
        self.escape_line = 0


class _ImmutabilityScope:
    """Linear, order-sensitive walk of one function (or module) body."""

    def __init__(self, path: str, check_creation: bool):
        self.path = path
        self.check_creation = check_creation
        self.findings: List[Finding] = []
        self.tainted: Dict[str, str] = {}  # name -> origin description
        self.created: Dict[str, _Creation] = {}

    # -- expression classification -------------------------------------
    def _taint_origin(self, node: ast.AST) -> Optional[str]:
        """Origin description when ``node`` evaluates to a store/dataset
        column (or a view of one), else None."""
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Attribute) and node.attr in COLUMN_PROPERTIES:
            return f"column property '.{node.attr}'"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "column":
                return "store.column(...)"
            return None
        if isinstance(node, ast.Subscript):
            origin = self._taint_origin(node.value)
            return f"view of {origin}" if origin else None
        return None

    def _np_ctor(self, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
                and func.value.id in {"np", "numpy"} \
                and func.attr in NP_CONSTRUCTORS:
            return func.attr
        return None

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding("RPL002", self.path, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0), message)
        )

    # -- statement walk -------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._statement(statement)
        if self.check_creation:
            reported = set()
            for creation in self.created.values():
                if creation.escaped and not creation.frozen \
                        and id(creation) not in reported:
                    reported.add(id(creation))
                    self._flag_creation(creation)

    def _flag_creation(self, creation: _Creation) -> None:
        self.findings.append(
            Finding(
                "RPL002", self.path, creation.line, creation.col,
                f"array '{creation.name}' created in core/ escapes (line "
                f"{creation.escape_line}) without setflags(write=False)",
            )
        )

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own scope from the caller
        if isinstance(node, ast.Assign):
            self._handle_assign(node.targets, node.value)
            self._scan_calls(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._handle_assign([node.target], node.value)
            self._scan_calls(node.value)
        elif isinstance(node, ast.AugAssign):
            self._handle_augassign(node)
            self._scan_calls(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._mark_escapes(node.value, node.lineno)
                self._scan_calls(node.value)
        elif isinstance(node, ast.Expr):
            self._scan_calls(node.value)
        elif isinstance(node, (ast.If, ast.For, ast.While, ast.With,
                               ast.AsyncFor, ast.AsyncWith)):
            for attr in ("test", "iter"):
                value = getattr(node, attr, None)
                if value is not None:
                    self._scan_calls(value)
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._clear_bindings(node.target)
            for child in node.body:
                self._statement(child)
            for child in getattr(node, "orelse", []):
                self._statement(child)
        elif isinstance(node, ast.Try):
            for child in node.body:
                self._statement(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._statement(child)
            for child in node.orelse + node.finalbody:
                self._statement(child)
        else:
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._scan_calls(value)

    def _clear_bindings(self, target: ast.AST) -> None:
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name):
                self.tainted.pop(name_node.id, None)
                self.created.pop(name_node.id, None)

    def _handle_assign(self, targets: Iterable[ast.AST], value: ast.expr) -> None:
        origin = self._taint_origin(value)
        ctor = self._np_ctor(value)
        alias = self.created.get(value.id) if isinstance(value, ast.Name) else None
        for target in targets:
            if isinstance(target, ast.Name):
                self.tainted.pop(target.id, None)
                self.created.pop(target.id, None)
                if origin:
                    self.tainted[target.id] = origin
                if ctor and self.check_creation:
                    self.created[target.id] = _Creation(
                        target.id, value.lineno, value.col_offset
                    )
                elif alias is not None:
                    self.created[target.id] = alias
            elif isinstance(target, ast.Subscript):
                base_origin = self._taint_origin(target.value)
                if base_origin:
                    self._flag(
                        target,
                        f"subscript assignment into {base_origin} — column "
                        "views are immutable; build a new array instead",
                    )
                if isinstance(value, ast.Name) and value.id in self.created:
                    self.created[value.id].escaped = True
                    self.created[value.id].escape_line = target.lineno
            elif isinstance(target, ast.Attribute):
                if isinstance(value, ast.Name) and value.id in self.created:
                    self.created[value.id].escaped = True
                    self.created[value.id].escape_line = target.lineno
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._clear_bindings(target)

    def _handle_augassign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name) and target.id in self.tainted:
            self._flag(
                node,
                f"augmented assignment mutates {self.tainted[target.id]} — "
                "column views are immutable; assign a new array instead",
            )
        elif isinstance(target, ast.Subscript):
            origin = self._taint_origin(target.value)
            if origin:
                self._flag(
                    node,
                    f"augmented subscript assignment into {origin} — column "
                    "views are immutable",
                )

    def _mark_escapes(self, value: ast.expr, line: int) -> None:
        names = []
        if isinstance(value, ast.Name):
            names = [value]
        elif isinstance(value, ast.Tuple):
            names = [e for e in value.elts if isinstance(e, ast.Name)]
        for name_node in names:
            creation = self.created.get(name_node.id)
            if creation is not None:
                creation.escaped = True
                creation.escape_line = line

    def _scan_calls(self, node: ast.expr) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in MUTATOR_METHODS:
                origin = self._taint_origin(func.value)
                if origin:
                    self._flag(
                        call,
                        f".{func.attr}() mutates {origin} — column views are "
                        f"immutable; use the copying variant (np.{func.attr}"
                        "(...)) instead",
                    )
            elif func.attr == "setflags" and isinstance(func.value, ast.Name):
                write_true = any(
                    kw.arg == "write" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in call.keywords
                )
                if write_true:
                    origin = self._taint_origin(func.value)
                    target = origin or f"array '{func.value.id}'"
                    self._flag(call, f"setflags(write=True) thaws {target}")
                elif func.value.id in self.created:
                    self.created[func.value.id].frozen = True


def check_immutability(path: str, parts: Tuple[str, ...],
                       tree: ast.Module) -> List[Finding]:
    if not parts or parts[0] not in {"repro", "tests", "benchmarks"}:
        return []
    check_creation = len(parts) >= 2 and parts[0] == "repro" and parts[1] == "core"
    findings: List[Finding] = []
    module_scope = _ImmutabilityScope(path, check_creation=False)
    module_scope.run([n for n in tree.body
                      if not isinstance(n, (ast.FunctionDef, ast.ClassDef))])
    findings.extend(module_scope.findings)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = _ImmutabilityScope(path, check_creation=check_creation)
            scope.run(node.body)
            findings.extend(scope.findings)
    return findings


# ---------------------------------------------------------------------------
# RPL003 — cache purity
# ---------------------------------------------------------------------------
def _purity_findings(path: str, fn: ast.FunctionDef,
                     module_globals: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
    if fn.args.vararg:
        params.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        params.add(fn.args.kwarg.arg)

    def flag(node: ast.AST, message: str) -> None:
        findings.append(
            Finding("RPL003", path, getattr(node, "lineno", fn.lineno),
                    getattr(node, "col_offset", 0),
                    f"cached analysis '{fn.name}' {message}")
        )

    def root_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    local_binds: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            flag(node, f"declares {type(node).__name__.lower()} "
                       f"{', '.join(node.names)} — cached analyses may not "
                       "rebind outer state")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "open":
                    flag(node, "opens a file — cached analyses must not do I/O")
                elif func.id == "print":
                    flag(node, "prints — cached analyses must return data, "
                               "not write streams")
            elif isinstance(func, ast.Attribute):
                base = func.value
                if func.attr in IO_PATH_METHODS:
                    flag(node, f"calls .{func.attr}() — cached analyses must "
                               "not touch the filesystem")
                elif isinstance(base, ast.Name) and base.id == "os" \
                        and func.attr in IO_OS_FUNCTIONS:
                    flag(node, f"calls os.{func.attr}() — cached analyses "
                               "must not touch the filesystem")
                elif isinstance(base, ast.Name) and base.id in {"shutil"}:
                    flag(node, f"calls shutil.{func.attr}() — cached analyses "
                               "must not touch the filesystem")
                elif isinstance(base, ast.Name) and base.id in {"json", "pickle"} \
                        and func.attr in {"dump", "load"}:
                    flag(node, f"calls {base.id}.{func.attr}() on a stream — "
                               "cached analyses must not do I/O")
                elif func.attr in IMPURE_METHODS:
                    root = root_name(func.value)
                    if root in params and root not in local_binds:
                        flag(node, f"mutates argument '{root}' via "
                                   f".{func.attr}() — arguments are caller "
                                   "state")
                    elif root in module_globals:
                        flag(node, f"mutates module global '{root}' via "
                                   f".{func.attr}() — results must depend on "
                                   "inputs only")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    root = root_name(target.value)
                    if root in params and root not in local_binds:
                        flag(node, f"assigns into argument '{root}' — "
                                   "arguments are caller state")
                    elif root in module_globals:
                        flag(node, f"assigns into module global '{root}' — "
                                   "results must depend on inputs only")
                elif isinstance(target, ast.Name):
                    local_binds.add(target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target,
                                                            ast.Subscript):
            root = root_name(node.target.value)
            if root in params and root not in local_binds:
                flag(node, f"augments into argument '{root}' — arguments are "
                           "caller state")
            elif root in module_globals:
                flag(node, f"augments module global '{root}' — results must "
                           "depend on inputs only")
    return findings


def check_cache_purity(path: str, parts: Tuple[str, ...], tree: ast.Module,
                       project: Project) -> List[Finding]:
    registered = project.registered_pure.get(module_name(Path(path)))
    if not registered:
        return []
    module_globals = {
        target.id
        for node in tree.body
        if isinstance(node, ast.Assign)
        for target in node.targets
        if isinstance(target, ast.Name) and not target.id.startswith("__")
    }
    findings: List[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name in registered:
            findings.extend(_purity_findings(path, node, module_globals))
    return findings


# ---------------------------------------------------------------------------
# RPL004 — schema integrity
# ---------------------------------------------------------------------------
def _check_field_literal(path: str, value: str, line: int, col: int,
                         context: str) -> Optional[Finding]:
    if value in SCHEMA_FIELDS or value in RECORD_EXTRA_KEYS:
        return None
    return Finding(
        "RPL004", path, line, col,
        f"{context} references field {value!r} which is not in the canonical "
        f"FOT schema — stringly-typed drift",
    )


def check_schema_integrity(path: str, parts: Tuple[str, ...],
                           tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    module = module_name(Path(path))
    in_record_module = module in RECORD_MODULES

    # FIELDS-style module constants anywhere under repro/.
    if parts and parts[0] == "repro":
        for node in tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and "FIELDS" in target.id.upper()):
                continue
            elements = _str_elements(node.value)
            if elements is None:
                continue
            for value, line, col in elements:
                finding = _check_field_literal(
                    path, value, line, col, f"constant {target.id}"
                )
                if finding:
                    findings.append(finding)

    if not in_record_module:
        return findings

    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
                and node.value.id in RECORD_NAMES and _is_str(node.slice):
            assert isinstance(node.slice, ast.Constant)
            finding = _check_field_literal(
                path, node.slice.value, node.lineno, node.col_offset,
                f"record subscript {node.value.id}[...]",
            )
            if finding:
                findings.append(finding)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "get" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in RECORD_NAMES \
                    and node.args and _is_str(node.args[0]):
                key = node.args[0]
                assert isinstance(key, ast.Constant)
                finding = _check_field_literal(
                    path, key.value, node.lineno, node.col_offset,
                    f"{func.value.id}.get(...)",
                )
                if finding:
                    findings.append(finding)
            elif isinstance(func, ast.Name) and func.id == "_require" \
                    and len(node.args) >= 2 and _is_str(node.args[1]):
                key = node.args[1]
                assert isinstance(key, ast.Constant)
                finding = _check_field_literal(
                    path, key.value, node.lineno, node.col_offset, "_require(...)"
                )
                if finding:
                    findings.append(finding)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            if not any(isinstance(t, ast.Name) and t.id in RECORD_NAMES
                       for t in targets):
                continue
            for key in value.keys:
                if _is_str(key):
                    assert isinstance(key, ast.Constant)
                    finding = _check_field_literal(
                        path, key.value, key.lineno, key.col_offset,
                        "record dict literal",
                    )
                    if finding:
                        findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# RPL005 — API hygiene
# ---------------------------------------------------------------------------
#: Facade modules whose re-export imports must agree with source __all__.
FACADE_MODULES = frozenset({"repro", "repro.api"})


def check_api_hygiene(path: str, parts: Tuple[str, ...], tree: ast.Module,
                      project: Project) -> List[Finding]:
    if not parts or parts[0] != "repro":
        return []
    findings: List[Finding] = []
    module = module_name(Path(path))

    all_names = _module_all_names(tree)
    if all_names is not None:
        names, line = all_names
        bound = _module_bound_names(tree)
        for name in names:
            if name not in bound:
                findings.append(
                    Finding(
                        "RPL005", path, line, 0,
                        f"__all__ exports {name!r} but the module never binds "
                        "it (stale re-export?)",
                    )
                )

    if module in FACADE_MODULES:
        for node in tree.body:
            if not (isinstance(node, ast.ImportFrom) and node.module
                    and node.module.startswith("repro")):
                continue
            if node.module == module:
                continue
            exported = project.module_all(node.module)
            if exported is None:
                continue
            source_tree = project.by_module.get(node.module)
            source_bound = (
                _module_bound_names(source_tree) if source_tree else set()
            )
            for alias in node.names:
                # Submodule imports (``from repro.analysis import overview``)
                # re-export modules, not names; skip when it resolves to one.
                if f"{node.module}.{alias.name}" in project.by_module:
                    continue
                if alias.name not in exported and alias.name in source_bound:
                    findings.append(
                        Finding(
                            "RPL005", path, node.lineno, node.col_offset,
                            f"facade re-exports {alias.name!r} from "
                            f"{node.module} but it is missing from that "
                            "module's __all__",
                        )
                    )
                elif alias.name not in exported and alias.name not in source_bound:
                    findings.append(
                        Finding(
                            "RPL005", path, node.lineno, node.col_offset,
                            f"facade imports {alias.name!r} but {node.module} "
                            "neither binds nor exports it",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# entry point used by repro.devtools.lint
# ---------------------------------------------------------------------------
def check_file(path: Path, tree: ast.Module, project: Project) -> List[Finding]:
    """Run every rule that applies to ``path``."""
    parts = module_parts(path)
    rel = path.as_posix()
    findings: List[Finding] = []
    findings.extend(check_determinism(rel, parts, tree))
    findings.extend(check_immutability(rel, parts, tree))
    findings.extend(check_cache_purity(rel, parts, tree, project))
    findings.extend(check_schema_integrity(rel, parts, tree))
    findings.extend(check_api_hygiene(rel, parts, tree, project))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


__all__ = [
    "RULES",
    "Edit",
    "Finding",
    "Fix",
    "Project",
    "SCHEMA_FIELDS",
    "COLUMN_PROPERTIES",
    "DETERMINISTIC_PACKAGES",
    "check_file",
    "module_name",
    "module_parts",
]
